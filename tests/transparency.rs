//! Integration: the transparency contribution.
//!
//! The same host code must produce bit-identical results on a native
//! board, through the Remote OpenCL Library with shared memory, and
//! through it with pure gRPC — and the virtual-time cost ordering must be
//! native < shm < gRPC.

use std::sync::Arc;

use blastfunction::prelude::*;
use blastfunction::workloads::{mm, sobel};
use parking_lot::Mutex;

fn catalog() -> BitstreamCatalog {
    let mut catalog = BitstreamCatalog::new();
    catalog.register(sobel::bitstream());
    catalog.register(mm::bitstream());
    catalog
}

fn fresh_board() -> Arc<Mutex<Board>> {
    Arc::new(Mutex::new(Board::new(
        BoardSpec::de5a_net(),
        *node_b().pcie(),
    )))
}

fn native_device(clock: VirtualClock) -> Device {
    Device::new(Arc::new(NativeBackend::new(
        node_b(),
        fresh_board(),
        catalog(),
        clock,
        "native",
    )))
}

fn remote_device(costs: PathCosts, clock: VirtualClock) -> Device {
    let manager = DeviceManager::new(
        DeviceManagerConfig::standalone("fpga-b"),
        node_b(),
        fresh_board(),
        catalog(),
    );
    let mut router = Router::new();
    router.add_manager(manager);
    router.connect(0, "it-fn", costs, clock).expect("connect")
}

/// Identical host code across backends: Sobel on a test frame.
fn sobel_host(device: &Device, width: u32, height: u32, pixels: &[u32]) -> Vec<u32> {
    let ctx = device.create_context().expect("ctx");
    let program = ctx.build_program(sobel::SOBEL_BITSTREAM).expect("program");
    let kernel = program.create_kernel(sobel::SOBEL_KERNEL).expect("kernel");
    let bytes = sobel::frame_bytes(width, height);
    let input = ctx.create_buffer(bytes).expect("in");
    let output = ctx.create_buffer(bytes).expect("out");
    let queue = ctx.create_queue().expect("queue");
    queue
        .write(&input, sobel::pack_pixels(pixels))
        .expect("write");
    kernel.set_arg_buffer(0, &input).expect("arg0");
    kernel.set_arg_buffer(1, &output).expect("arg1");
    kernel.set_arg(2, ArgValue::U32(width)).expect("arg2");
    kernel.set_arg(3, ArgValue::U32(height)).expect("arg3");
    queue
        .launch(&kernel, NdRange::d2(width.into(), height.into()))
        .expect("launch");
    queue.finish().expect("finish");
    sobel::unpack_pixels(&queue.read_vec(&output).expect("read"))
}

/// Identical host code across backends: MM with async pipelining.
fn mm_host(device: &Device, n: u32, a: &[f32], b: &[f32]) -> Vec<f32> {
    let ctx = device.create_context().expect("ctx");
    let program = ctx.build_program(mm::MM_BITSTREAM).expect("program");
    let kernel = program.create_kernel(mm::MM_KERNEL).expect("kernel");
    let bytes = mm::matrix_bytes(n);
    let a_buf = ctx.create_buffer(bytes).expect("a");
    let b_buf = ctx.create_buffer(bytes).expect("b");
    let c_buf = ctx.create_buffer(bytes).expect("c");
    let queue = ctx.create_queue().expect("queue");
    // Non-blocking writes + kernel, one sync at the end (the async flow of
    // paper Fig. 2).
    let w1 = queue.write_async(&a_buf, 0, mm::pack_f32(a)).expect("wa");
    let w2 = queue.write_async(&b_buf, 0, mm::pack_f32(b)).expect("wb");
    kernel.set_arg_buffer(0, &a_buf).expect("arg0");
    kernel.set_arg_buffer(1, &b_buf).expect("arg1");
    kernel.set_arg_buffer(2, &c_buf).expect("arg2");
    kernel.set_arg(3, ArgValue::U32(n)).expect("arg3");
    let k = queue
        .launch(&kernel, NdRange::d2(n.into(), n.into()))
        .expect("launch");
    queue.finish().expect("finish");
    for ev in [&w1, &w2, &k] {
        assert_eq!(
            ev.status(),
            EventStatus::Complete,
            "all events complete after finish"
        );
    }
    mm::unpack_f32(&queue.read_vec(&c_buf).expect("read"))
}

#[test]
fn sobel_is_bit_identical_across_backends() {
    let (w, h) = (48u32, 36u32);
    let pixels: Vec<u32> = (0..w * h)
        .map(|i| 0xff00_0000 | i.wrapping_mul(2654435761))
        .collect();
    let expected = sobel::reference(&pixels, w, h);

    let native = sobel_host(&native_device(VirtualClock::new()), w, h, &pixels);
    assert_eq!(native, expected, "native matches the host reference");

    for costs in [PathCosts::local_shm(), PathCosts::local_grpc()] {
        let remote = sobel_host(&remote_device(costs, VirtualClock::new()), w, h, &pixels);
        assert_eq!(remote, expected, "remote ({costs:?}) matches");
    }
}

#[test]
fn mm_is_bit_identical_across_backends() {
    let n = 20u32;
    let a: Vec<f32> = (0..n * n).map(|i| (i % 13) as f32 / 3.0).collect();
    let b: Vec<f32> = (0..n * n).map(|i| ((i * 7) % 11) as f32 - 5.0).collect();
    let expected = mm::reference(&a, &b, n);

    let native = mm_host(&native_device(VirtualClock::new()), n, &a, &b);
    assert_eq!(native, expected);
    for costs in [PathCosts::local_shm(), PathCosts::local_grpc()] {
        let remote = mm_host(&remote_device(costs, VirtualClock::new()), n, &a, &b);
        assert_eq!(remote, expected, "remote ({costs:?})");
    }
}

#[test]
fn virtual_cost_ordering_native_shm_grpc() {
    let (w, h) = (256u32, 256u32);
    let pixels = vec![0xff55_5555u32; (w * h) as usize];

    let run = |device: &Device, clock: &VirtualClock| {
        // Exclude one-time setup (board programming) from the request time.
        let ctx = device.create_context().expect("ctx");
        let program = ctx.build_program(sobel::SOBEL_BITSTREAM).expect("program");
        let kernel = program.create_kernel(sobel::SOBEL_KERNEL).expect("kernel");
        let bytes = sobel::frame_bytes(w, h);
        let input = ctx.create_buffer(bytes).expect("in");
        let output = ctx.create_buffer(bytes).expect("out");
        let queue = ctx.create_queue().expect("queue");
        let t0 = clock.now();
        queue
            .write(&input, sobel::pack_pixels(&pixels))
            .expect("write");
        kernel.set_arg_buffer(0, &input).expect("a0");
        kernel.set_arg_buffer(1, &output).expect("a1");
        kernel.set_arg(2, ArgValue::U32(w)).expect("a2");
        kernel.set_arg(3, ArgValue::U32(h)).expect("a3");
        queue
            .launch(&kernel, NdRange::d2(w.into(), h.into()))
            .expect("launch");
        queue.finish().expect("finish");
        let _ = queue.read_vec(&output).expect("read");
        clock.now() - t0
    };

    let native_clock = VirtualClock::new();
    let native_t = run(&native_device(native_clock.clone()), &native_clock);
    let shm_clock = VirtualClock::new();
    let shm_t = run(
        &remote_device(PathCosts::local_shm(), shm_clock.clone()),
        &shm_clock,
    );
    let grpc_clock = VirtualClock::new();
    let grpc_t = run(
        &remote_device(PathCosts::local_grpc(), grpc_clock.clone()),
        &grpc_clock,
    );

    assert!(native_t < shm_t, "native {native_t} must beat shm {shm_t}");
    assert!(shm_t < grpc_t, "shm {shm_t} must beat grpc {grpc_t}");
    // The shm penalty is bounded: control signalling + one copy each way.
    let overhead = shm_t - native_t;
    assert!(
        overhead < VirtualDuration::from_millis_f64(4.0),
        "shm overhead should stay in the low-ms regime, got {overhead}"
    );
}

#[test]
fn device_to_device_copy_matches_across_backends() {
    let make_data: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
    for device in [
        native_device(VirtualClock::new()),
        remote_device(PathCosts::local_shm(), VirtualClock::new()),
        remote_device(PathCosts::local_grpc(), VirtualClock::new()),
    ] {
        let ctx = device.create_context().expect("ctx");
        let src = ctx.create_buffer(1024).expect("src");
        let dst = ctx.create_buffer(2048).expect("dst");
        let queue = ctx.create_queue().expect("queue");
        queue.write(&src, make_data.clone()).expect("write");
        // Copy into the middle of dst (clEnqueueCopyBuffer with offsets).
        let ev = queue.copy_region(&src, &dst, 0, 512, 1024).expect("copy");
        queue.finish().expect("finish");
        ev.wait().expect("copy completed");
        let out = queue.read_vec(&dst).expect("read");
        assert_eq!(&out[512..1536], make_data.as_slice(), "copied region");
        assert!(out[..512].iter().all(|b| *b == 0), "prefix untouched");
        assert!(out[1536..].iter().all(|b| *b == 0), "suffix untouched");
        // Out-of-bounds copies fail without corrupting the session.
        let bad = queue.copy_region(&src, &dst, 0, 2000, 1024);
        match bad {
            Ok(ev) => {
                queue.flush().expect("flush");
                assert!(ev.wait().is_err(), "oob copy must fail");
            }
            Err(e) => assert!(matches!(e, ClError::OutOfBounds(_)), "got {e:?}"),
        }
        assert_eq!(
            queue.read_vec(&dst).expect("read again")[512..1536],
            make_data[..]
        );
    }
}

#[test]
fn event_profiles_expose_device_timestamps_remotely() {
    let device = remote_device(PathCosts::local_shm(), VirtualClock::new());
    let ctx = device.create_context().expect("ctx");
    let _program = ctx.build_program(sobel::SOBEL_BITSTREAM).expect("program");
    let buf = ctx.create_buffer(1 << 16).expect("buf");
    let queue = ctx.create_queue().expect("queue");
    let ev = queue
        .write_async(&buf, 0, vec![7u8; 1 << 16])
        .expect("enqueue");
    queue.finish().expect("finish");
    let profile = ev.profile();
    assert!(profile.queued.is_some());
    assert!(
        profile.ended >= profile.started,
        "device timestamps ordered"
    );
    let observed = ev.observed_at().expect("observed time set");
    assert!(
        observed > profile.ended.expect("ended set"),
        "the host observes completion after the device finishes (return hop)"
    );
}
