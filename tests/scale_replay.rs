//! Integration: deterministic replay of the production-day scale harness.
//!
//! The harness's whole value as a regression tool rests on replay: the same
//! seed must reproduce the same run byte-for-byte — with the full fault
//! battery armed — or a "this seed found a bug" report is useless. These
//! tests pin that property end-to-end through the public `bf_sim` API: the
//! recorded event trace, its FNV-1a digest, and every summary counter must
//! be identical across two fresh runs, and the fault schedule must be drawn
//! from its own RNG stream so arming faults cannot perturb the arrival
//! trace they are injected into.

use blastfunction::model::VirtualDuration;
use blastfunction::sim::{run_scale, FaultPlan, ScaleConfig, ShedStorm, WatchDelay};

/// A scaled-down day that still exercises every fault class: node losses
/// with migration, slow-consumer disconnects, a shed storm, and a stalled
/// watcher window.
fn replay_config(seed: u64) -> ScaleConfig {
    ScaleConfig::smoke(seed)
        // 10 nodes at ~400 rq/s of serial service each: the 3× shed storm
        // on top of the diurnal peak pushes per-node arrivals past that,
        // so admission control demonstrably sheds during the window.
        .with_nodes(10)
        .with_functions(200)
        .with_sessions(200)
        .with_day(VirtualDuration::from_secs(5))
        .with_base_rps(400.0)
        .with_faults(FaultPlan {
            node_losses: 5,
            slow_consumers: 12,
            shed_storm: Some(ShedStorm {
                start_frac: 0.45,
                len_frac: 0.10,
                factor: 3.0,
            }),
            watch_delay: Some(WatchDelay {
                start_frac: 0.70,
                len_frac: 0.05,
            }),
        })
        .with_trace()
}

#[test]
fn same_seed_replays_the_full_trace_byte_for_byte_with_faults_on() {
    let first = run_scale(&replay_config(0xB1A57));
    let second = run_scale(&replay_config(0xB1A57));

    // The run must actually have exercised the fault battery, or the
    // replay claim is vacuous.
    assert!(first.node_losses > 0, "no node losses injected");
    assert!(first.rerouted > 0, "no instances migrated");
    assert!(
        first.force_disconnects > 0 || first.shed > 0,
        "neither slow consumers nor the shed storm left a mark"
    );

    // Byte-identical replay: the recorded traces are equal line-for-line,
    // the digests agree with each other, and the digest is a faithful
    // commitment to the trace (equal digests + equal traces).
    assert!(!first.trace.is_empty(), "record_trace must capture events");
    assert_eq!(first.trace, second.trace, "event traces diverged");
    assert_eq!(first.trace_digest, second.trace_digest, "digests diverged");

    // Every summary statistic replays too — the struct comparison covers
    // all counters and latency quantiles at once.
    assert_eq!(first, second, "summary statistics diverged");
}

#[test]
fn different_seeds_produce_different_traces() {
    let a = run_scale(&replay_config(1));
    let b = run_scale(&replay_config(2));
    assert_ne!(a.trace_digest, b.trace_digest, "seed must steer the run");
}

#[test]
fn arming_faults_does_not_perturb_the_arrival_trace() {
    // The fault schedule draws from its own RNG stream: a plan with every
    // fault class armed except the storm (which changes the offered rate
    // by design) must see exactly the arrivals of a fault-free run.
    let quiet = run_scale(&replay_config(33).with_faults(FaultPlan::none()));
    let faulty = run_scale(&replay_config(33).with_faults(FaultPlan {
        shed_storm: None,
        ..FaultPlan::production()
    }));
    assert_eq!(
        quiet.arrivals, faulty.arrivals,
        "fault draws leaked into the traffic stream"
    );
}
