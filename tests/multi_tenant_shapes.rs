//! Integration: the headline multi-tenant claims of Tables II–IV, checked
//! across every paper configuration in one sweep.
//!
//! "BlastFunction reaches higher utilization and throughput w.r.t. a
//! native execution thanks to device sharing, with minimal differences in
//! latency given by the concurrent accesses." — abstract.

use blastfunction::model::{DataPathKind, VirtualDuration};
use blastfunction::prelude::*;
use blastfunction::sim::ScenarioResult;

fn run(use_case: UseCase, level: LoadLevel, deployment: Deployment) -> ScenarioResult {
    run_scenario(
        &ScenarioConfig::new(use_case, level, deployment)
            .with_duration(VirtualDuration::from_secs(20)),
    )
}

fn bf(use_case: UseCase, level: LoadLevel) -> ScenarioResult {
    run(
        use_case,
        level,
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        },
    )
}

fn native(use_case: UseCase, level: LoadLevel) -> ScenarioResult {
    run(use_case, level, Deployment::Native)
}

/// Every configuration the paper evaluates (Table I).
fn paper_configurations() -> Vec<(UseCase, LoadLevel)> {
    vec![
        (UseCase::Sobel, LoadLevel::Low),
        (UseCase::Sobel, LoadLevel::Medium),
        (UseCase::Sobel, LoadLevel::High),
        (UseCase::Mm, LoadLevel::Low),
        (UseCase::Mm, LoadLevel::Medium),
        (UseCase::Mm, LoadLevel::High),
        (UseCase::AlexNet, LoadLevel::Medium),
        (UseCase::AlexNet, LoadLevel::High),
    ]
}

#[test]
fn sharing_always_serves_more_and_utilizes_more() {
    for (use_case, level) in paper_configurations() {
        let bf = bf(use_case, level);
        let native = native(use_case, level);
        assert!(
            bf.aggregate.processed_rps > native.aggregate.processed_rps,
            "{use_case} {level}: bf {:.1} rq/s <= native {:.1} rq/s",
            bf.aggregate.processed_rps,
            native.aggregate.processed_rps
        );
        assert!(
            bf.aggregate.utilization_pct > native.aggregate.utilization_pct,
            "{use_case} {level}: bf {:.1}% <= native {:.1}%",
            bf.aggregate.utilization_pct,
            native.aggregate.utilization_pct
        );
    }
}

#[test]
fn latency_differences_stay_minimal_for_single_kernel_workloads() {
    // Sobel and MM issue one task per request: sharing must cost only
    // control signalling + queueing, not multiples.
    for use_case in [UseCase::Sobel, UseCase::Mm] {
        for level in [LoadLevel::Low, LoadLevel::Medium] {
            let bf = bf(use_case, level);
            let native = native(use_case, level);
            let ratio = bf.aggregate.mean_latency_ms / native.aggregate.mean_latency_ms;
            assert!(
                (0.5..1.8).contains(&ratio),
                "{use_case} {level}: latency ratio {ratio:.2} (bf {:.1} ms, native {:.1} ms)",
                bf.aggregate.mean_latency_ms,
                native.aggregate.mean_latency_ms
            );
        }
    }
}

#[test]
fn utilization_never_exceeds_the_300_percent_ceiling() {
    for (use_case, level) in paper_configurations() {
        for result in [bf(use_case, level), native(use_case, level)] {
            assert!(
                result.aggregate.utilization_pct <= 300.0 + 1e-6,
                "{use_case} {level} {}: {:.1}%",
                result.deployment,
                result.aggregate.utilization_pct
            );
            for (device, util) in &result.device_utilization {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(util),
                    "{device} utilization {util}"
                );
            }
        }
    }
}

#[test]
fn low_load_misses_are_small_and_grow_with_load() {
    // Paper (Sobel): native misses 2.25% → 5.23% → 22.22%; BlastFunction
    // 5.01% → 4.67% → 19.85%. Reproduce: low misses small, high misses
    // large, monotone growth from low to high.
    for deployment_is_bf in [true, false] {
        let get = |level| {
            let r = if deployment_is_bf {
                bf(UseCase::Sobel, level)
            } else {
                native(UseCase::Sobel, level)
            };
            r.aggregate.target_miss_pct()
        };
        let low = get(LoadLevel::Low);
        let high = get(LoadLevel::High);
        assert!(low < 8.0, "low-load miss should be small, got {low:.1}%");
        assert!(
            high > low,
            "misses must grow with load ({low:.1}% -> {high:.1}%)"
        );
        assert!(
            high > 10.0,
            "high load must overload something, got {high:.1}%"
        );
    }
}

#[test]
fn alexnet_latency_penalty_comes_from_per_layer_syncs() {
    // Ablation: with the per-layer synchronizations (PipeCNN's host code),
    // the remote path pays ~30 control RTTs; batched into one task the
    // penalty collapses — proving the mechanism the paper names ("the host
    // code calls multiple times the kernels for each computation").
    let net = blastfunction::workloads::CnnNetwork::alexnet();
    let layered = bf(UseCase::AlexNet, LoadLevel::Medium);
    let batched = run_scenario(
        &ScenarioConfig::new(
            UseCase::AlexNet,
            LoadLevel::Medium,
            Deployment::BlastFunction {
                data_path: DataPathKind::SharedMemory,
            },
        )
        .with_duration(VirtualDuration::from_secs(20))
        .with_profile(net.request_profile_batched()),
    );
    let native = native(UseCase::AlexNet, LoadLevel::Medium);

    let layered_delta = layered.aggregate.mean_latency_ms - native.aggregate.mean_latency_ms;
    let batched_delta = batched.aggregate.mean_latency_ms - native.aggregate.mean_latency_ms;
    assert!(
        layered_delta > 15.0,
        "per-layer syncs must cost tens of ms, got {layered_delta:.1}"
    );
    assert!(
        batched_delta < layered_delta / 3.0,
        "batching must collapse the gap: layered {layered_delta:.1} ms vs batched {batched_delta:.1} ms"
    );
}

#[test]
fn node_a_is_the_first_to_saturate() {
    // Paper: "Node A saturated in both cases as it is not able to keep-up
    // with the target throughput."
    let native = native(UseCase::Sobel, LoadLevel::High);
    let worst = native
        .functions
        .iter()
        .max_by(|a, b| {
            a.target_miss_pct()
                .partial_cmp(&b.target_miss_pct())
                .expect("finite misses")
        })
        .expect("non-empty");
    assert_eq!(
        worst.node, "A",
        "the slow master saturates first: {worst:?}"
    );
}
