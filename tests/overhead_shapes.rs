//! Integration: the Fig. 4 overhead shapes.
//!
//! The absolute values come from the calibrated models; what this test
//! pins down are the *relationships* the paper reports:
//!
//! * Fig. 4(a): gRPC ≈ 4× native at large transfer sizes; shm's overhead
//!   at 2 GB is one memcpy (~155 ms); small sizes are dominated by ~2 ms
//!   of control signalling.
//! * Fig. 4(b): Sobel is I/O-bound → shm overhead is a visible fraction
//!   (paper: 24.04% relative at 1080p).
//! * Fig. 4(c): MM is compute-bound → shm overhead is negligible
//!   (paper: 0.27% relative at 4096).

use std::sync::Arc;

use blastfunction::prelude::*;
use blastfunction::workloads::{mm, sobel};
use parking_lot::Mutex;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum System {
    Native,
    BlastFunction,
    BlastFunctionShm,
}

fn device_for(system: System) -> (Device, VirtualClock) {
    let mut catalog = BitstreamCatalog::new();
    catalog.register(sobel::bitstream());
    catalog.register(mm::bitstream());
    let board = Arc::new(Mutex::new(Board::new(
        BoardSpec::de5a_net(),
        *node_b().pcie(),
    )));
    let clock = VirtualClock::new();
    match system {
        System::Native => (
            Device::new(Arc::new(NativeBackend::new(
                node_b(),
                board,
                catalog,
                clock.clone(),
                "fig4",
            ))),
            clock,
        ),
        System::BlastFunction | System::BlastFunctionShm => {
            let manager = DeviceManager::new(
                DeviceManagerConfig::standalone("fpga-b"),
                node_b(),
                board,
                catalog,
            );
            let mut router = Router::new();
            router.add_manager(manager);
            let costs = if system == System::BlastFunctionShm {
                PathCosts::local_shm()
            } else {
                PathCosts::local_grpc()
            };
            (
                router
                    .connect(0, "fig4-fn", costs, clock.clone())
                    .expect("connect"),
                clock,
            )
        }
    }
}

/// Fig. 4(a)'s operation: synchronous write then synchronous read of
/// `total/2` bytes each, timing-only payloads so multi-GB sizes are cheap.
fn write_read_rtt(system: System, total_bytes: u64) -> VirtualDuration {
    let (device, clock) = device_for(system);
    let half = total_bytes / 2;
    let ctx = device.create_context().expect("ctx");
    let buf = ctx.create_buffer(half.max(1)).expect("buf");
    let queue = ctx.create_queue().expect("queue");
    let t0 = clock.now();
    queue.write(&buf, Payload::Synthetic(half)).expect("write");
    let _ = queue.read_payload(&buf).expect("read");
    clock.now() - t0
}

#[test]
fn fig4a_grpc_is_about_4x_native_at_large_sizes() {
    let total = 2u64 << 30;
    let native = write_read_rtt(System::Native, total);
    let grpc = write_read_rtt(System::BlastFunction, total);
    let ratio = grpc.as_secs_f64() / native.as_secs_f64();
    assert!(
        (3.0..6.0).contains(&ratio),
        "gRPC/native at 2 GB should be ~4x, got {ratio:.2} ({grpc} vs {native})"
    );
}

#[test]
fn fig4a_shm_overhead_at_2gb_is_one_memcpy() {
    let total = 2u64 << 30;
    let native = write_read_rtt(System::Native, total);
    let shm = write_read_rtt(System::BlastFunctionShm, total);
    let overhead = shm - native;
    // Paper: "a maximum overhead of 155 ms when transferring 2 GBs".
    let ms = overhead.as_millis_f64();
    assert!(
        (100.0..250.0).contains(&ms),
        "shm overhead at 2 GB: {ms:.1} ms"
    );
}

#[test]
fn fig4a_small_sizes_cost_about_2ms_of_control() {
    let native = write_read_rtt(System::Native, 1 << 10);
    let shm = write_read_rtt(System::BlastFunctionShm, 1 << 10);
    let overhead = (shm - native).as_millis_f64();
    assert!(
        (1.0..3.5).contains(&overhead),
        "control overhead {overhead:.2} ms"
    );
}

#[test]
fn fig4a_rtt_is_monotone_in_size() {
    for system in [
        System::Native,
        System::BlastFunction,
        System::BlastFunctionShm,
    ] {
        let mut prev = VirtualDuration::ZERO;
        for total in [1u64 << 10, 1 << 20, 1 << 26, 1 << 31] {
            let rtt = write_read_rtt(system, total);
            assert!(rtt >= prev, "{system:?}: RTT not monotone at {total}");
            prev = rtt;
        }
    }
}

/// Sobel request RTT (write + kernel + read, one sync) at a given size.
fn sobel_rtt(system: System, w: u32, h: u32) -> VirtualDuration {
    let (device, clock) = device_for(system);
    let ctx = device.create_context().expect("ctx");
    let program = ctx.build_program(sobel::SOBEL_BITSTREAM).expect("program");
    let kernel = program.create_kernel(sobel::SOBEL_KERNEL).expect("kernel");
    let bytes = sobel::frame_bytes(w, h);
    let input = ctx.create_buffer(bytes).expect("in");
    let output = ctx.create_buffer(bytes).expect("out");
    let queue = ctx.create_queue().expect("queue");
    kernel.set_arg_buffer(0, &input).expect("a0");
    kernel.set_arg_buffer(1, &output).expect("a1");
    kernel.set_arg(2, ArgValue::U32(w)).expect("a2");
    kernel.set_arg(3, ArgValue::U32(h)).expect("a3");
    let t0 = clock.now();
    queue
        .write_async(&input, 0, Payload::Synthetic(bytes))
        .expect("write");
    queue
        .launch(&kernel, NdRange::d2(w.into(), h.into()))
        .expect("launch");
    let _ = queue.read_payload(&output).expect("read");
    clock.now() - t0
}

#[test]
fn fig4b_native_endpoints_match_the_paper() {
    let small = sobel_rtt(System::Native, 10, 10).as_millis_f64();
    let large = sobel_rtt(System::Native, 1920, 1080).as_millis_f64();
    // Paper: 0.27 ms and 14.53 ms.
    assert!((small - 0.27).abs() < 0.1, "10x10 native RTT {small:.3} ms");
    assert!(
        (large - 14.53).abs() < 1.0,
        "1080p native RTT {large:.2} ms"
    );
}

#[test]
fn fig4b_shm_overhead_is_a_constant_few_ms() {
    let mut overheads = Vec::new();
    for (w, h) in [(100, 100), (640, 480), (1280, 720), (1920, 1080)] {
        let native = sobel_rtt(System::Native, w, h);
        let shm = sobel_rtt(System::BlastFunctionShm, w, h);
        overheads.push((shm - native).as_millis_f64());
    }
    for o in &overheads {
        assert!(
            (0.5..4.5).contains(o),
            "shm overhead {o:.2} ms outside the ~2 ms band"
        );
    }
    let spread = overheads.iter().cloned().fold(f64::MIN, f64::max)
        - overheads.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread < 2.5,
        "overhead should be near-constant, spread {spread:.2} ms"
    );
}

/// MM request RTT at dimension n (timing-only).
fn mm_rtt(system: System, n: u32) -> VirtualDuration {
    let (device, clock) = device_for(system);
    let ctx = device.create_context().expect("ctx");
    let program = ctx.build_program(mm::MM_BITSTREAM).expect("program");
    let kernel = program.create_kernel(mm::MM_KERNEL).expect("kernel");
    let bytes = mm::matrix_bytes(n);
    let a = ctx.create_buffer(bytes).expect("a");
    let b = ctx.create_buffer(bytes).expect("b");
    let c = ctx.create_buffer(bytes).expect("c");
    let queue = ctx.create_queue().expect("queue");
    kernel.set_arg_buffer(0, &a).expect("a0");
    kernel.set_arg_buffer(1, &b).expect("a1");
    kernel.set_arg_buffer(2, &c).expect("a2");
    kernel.set_arg(3, ArgValue::U32(n)).expect("a3");
    let t0 = clock.now();
    queue
        .write_async(&a, 0, Payload::Synthetic(bytes))
        .expect("wa");
    queue
        .write_async(&b, 0, Payload::Synthetic(bytes))
        .expect("wb");
    queue
        .launch(&kernel, NdRange::d2(n.into(), n.into()))
        .expect("launch");
    let _ = queue.read_payload(&c).expect("read");
    clock.now() - t0
}

#[test]
fn fig4c_native_endpoints_match_the_paper() {
    let small = mm_rtt(System::Native, 16).as_millis_f64();
    let large = mm_rtt(System::Native, 4096).as_secs_f64();
    // Paper: 0.45 ms and 3.571 s.
    assert!(
        (small - 0.45).abs() < 0.15,
        "16x16 native RTT {small:.3} ms"
    );
    assert!((large - 3.571).abs() < 0.1, "4096 native RTT {large:.3} s");
}

#[test]
fn relative_overhead_compute_bound_vs_io_bound() {
    // Paper: MM@4096 shm overhead 0.27% (17 ms on 3.588 s); Sobel@1080p
    // 24.04%. The compute-bound kernel must hide the remoting cost.
    let mm_native = mm_rtt(System::Native, 4096);
    let mm_shm = mm_rtt(System::BlastFunctionShm, 4096);
    let mm_rel = (mm_shm - mm_native).as_secs_f64() / mm_native.as_secs_f64() * 100.0;
    assert!(mm_rel < 3.0, "MM relative shm overhead {mm_rel:.2}%");

    let so_native = sobel_rtt(System::Native, 1920, 1080);
    let so_shm = sobel_rtt(System::BlastFunctionShm, 1920, 1080);
    let so_rel = (so_shm - so_native).as_secs_f64() / so_native.as_secs_f64() * 100.0;
    assert!(
        (8.0..40.0).contains(&so_rel),
        "Sobel relative shm overhead {so_rel:.2}%"
    );
    assert!(
        so_rel > 5.0 * mm_rel,
        "I/O-bound must suffer far more than compute-bound"
    );
}
