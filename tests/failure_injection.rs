//! Integration: failure paths — resource exhaustion, bad handles,
//! cross-tenant access, dead managers, shm exhaustion fallback.

use std::sync::Arc;

use blastfunction::prelude::*;
use blastfunction::workloads::sobel;
use parking_lot::Mutex;

fn catalog() -> BitstreamCatalog {
    let mut catalog = BitstreamCatalog::new();
    catalog.register(sobel::bitstream());
    catalog
}

fn small_board(mem_bytes: u64) -> Arc<Mutex<Board>> {
    let spec = BoardSpec {
        memory_bytes: mem_bytes,
        ..BoardSpec::de5a_net()
    };
    Arc::new(Mutex::new(Board::new(spec, *node_b().pcie())))
}

fn manager_with(board: Arc<Mutex<Board>>, shm_capacity: u64) -> DeviceManager {
    DeviceManager::new(
        DeviceManagerConfig::standalone("fpga-b").with_shm_capacity(shm_capacity),
        node_b(),
        board,
        catalog(),
    )
}

fn connect(manager: &DeviceManager, costs: PathCosts) -> Device {
    let mut router = Router::new();
    router.add_manager(manager.clone());
    router
        .connect(0, "victim", costs, VirtualClock::new())
        .expect("connect")
}

#[test]
fn device_memory_exhaustion_maps_to_out_of_resources() {
    let manager = manager_with(small_board(1 << 20), 1 << 20);
    let device = connect(&manager, PathCosts::local_grpc());
    let ctx = device.create_context().expect("ctx");
    let _big = ctx.create_buffer(1 << 19).expect("first allocation fits");
    let err = ctx
        .create_buffer(1 << 20)
        .expect_err("second must exhaust DDR");
    assert!(matches!(err, ClError::OutOfResources(_)), "got {err:?}");
    // Releasing makes space again.
    drop(_big);
    // Releases are fire-and-forget; the manager processes them in order,
    // so a subsequent allocation request observes the freed space.
    let again = ctx.create_buffer(1 << 19);
    assert!(again.is_ok(), "allocation after release failed: {again:?}");
}

#[test]
fn out_of_bounds_transfers_fail_without_corrupting_the_session() {
    let manager = manager_with(small_board(1 << 24), 1 << 24);
    let device = connect(&manager, PathCosts::local_grpc());
    let ctx = device.create_context().expect("ctx");
    let buf = ctx.create_buffer(64).expect("buffer");
    let queue = ctx.create_queue().expect("queue");
    let ev = queue
        .write_async(&buf, 32, vec![0u8; 64])
        .expect("accepted into the task");
    queue.flush().expect("flush");
    let err = ev.wait().expect_err("out of bounds");
    assert!(matches!(err, ClError::OutOfBounds(_)), "got {err:?}");
    // The session keeps working afterwards.
    queue
        .write(&buf, vec![1u8; 64])
        .expect("valid write still works");
    assert_eq!(queue.read_vec(&buf).expect("read"), vec![1u8; 64]);
}

#[test]
fn unknown_kernel_and_bitstream_fail_cleanly() {
    let manager = manager_with(small_board(1 << 24), 1 << 24);
    let device = connect(&manager, PathCosts::local_grpc());
    let ctx = device.create_context().expect("ctx");
    assert!(matches!(
        ctx.build_program("no-such-image"),
        Err(ClError::BuildProgramFailure(_))
    ));
    let program = ctx.build_program(sobel::SOBEL_BITSTREAM).expect("program");
    assert!(matches!(
        program.create_kernel("no-such-kernel"),
        Err(ClError::BuildProgramFailure(_))
    ));
}

#[test]
fn missing_kernel_args_fail_the_launch_event() {
    let manager = manager_with(small_board(1 << 24), 1 << 24);
    let device = connect(&manager, PathCosts::local_grpc());
    let ctx = device.create_context().expect("ctx");
    let program = ctx.build_program(sobel::SOBEL_BITSTREAM).expect("program");
    let kernel = program.create_kernel(sobel::SOBEL_KERNEL).expect("kernel");
    let queue = ctx.create_queue().expect("queue");
    // Arg 3 set, args 0-2 missing.
    kernel.set_arg(3, ArgValue::U32(8)).expect("set arg");
    let ev = queue
        .launch(&kernel, NdRange::d1(64))
        .expect("enqueue accepted");
    queue.flush().expect("flush");
    let err = ev.wait().expect_err("launch must fail");
    assert!(
        matches!(err, ClError::InvalidKernelLaunch(_)),
        "got {err:?}"
    );
}

#[test]
fn shm_exhaustion_degrades_to_inline_without_data_loss() {
    // A 4 KiB shm segment cannot stage a 64 KiB frame: the library must
    // fall back to the inline (gRPC) data path transparently.
    let manager = manager_with(small_board(1 << 24), 4 << 10);
    let device = connect(&manager, PathCosts::local_shm());
    let ctx = device.create_context().expect("ctx");
    let buf = ctx.create_buffer(64 << 10).expect("buffer");
    let queue = ctx.create_queue().expect("queue");
    let payload = vec![0xA5u8; 64 << 10];
    queue
        .write(&buf, payload.clone())
        .expect("write survives shm exhaustion");
    assert_eq!(queue.read_vec(&buf).expect("read"), payload);
}

#[test]
fn dead_manager_surfaces_as_transport_failure() {
    let manager = manager_with(small_board(1 << 24), 1 << 24);
    let endpoint = manager.connect("doomed", PathCosts::local_grpc());
    // Simulate the manager process dying: drop every handle to it. The
    // session thread exits when the client channel closes server-side…
    // here we instead drop the client's endpoint channel indirectly by
    // killing the backend's connection: easiest deterministic variant is
    // connecting and then dropping the manager's board/session by sending
    // Disconnect first.
    let backend = RemoteBackend::connect(endpoint, VirtualClock::new()).expect("connect");
    let ctx = backend.create_context().expect("ctx");
    // Tear the session down from the manager side.
    let conn = backend.connection().clone();
    conn.cast(
        blastfunction::rpc::Request::Disconnect,
        VirtualClock::new().now(),
    )
    .expect("disconnect sent");
    // After the session thread exits, further calls fail as transport
    // errors rather than hanging.
    let mut saw_failure = false;
    for _ in 0..50 {
        match backend.create_buffer(ctx, 16) {
            Err(ClError::TransportFailure(_)) => {
                saw_failure = true;
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    assert!(saw_failure, "calls against a dead session must fail");
}

/// A gateway batch handler backed by the real remote stack: each
/// invocation performs a write/read round trip against the device. After
/// `kill_after` successful requests the device manager's session is torn
/// down mid-batch (the manager "dies"), so the remaining invocations must
/// fail — typed, per invocation, without losing or duplicating any ticket.
struct MidBatchLoss {
    queue: blastfunction::ocl::Queue,
    buffer: blastfunction::ocl::Buffer,
    conn: blastfunction::remote::Connection,
    kill_after: usize,
}

impl MidBatchLoss {
    fn round_trip(&self) -> Result<(), ClError> {
        self.queue.write(&self.buffer, vec![7u8; 64])?;
        self.queue.read_vec(&self.buffer)?;
        Ok(())
    }
}

impl BatchHandler for MidBatchLoss {
    fn handle_batch(
        &self,
        start: VirtualTime,
        batch: &[Invocation],
    ) -> Vec<Result<Completion, HandlerError>> {
        let mut out = Vec::with_capacity(batch.len());
        for (i, _invocation) in batch.iter().enumerate() {
            if i == self.kill_after {
                // The device manager dies between request i-1 and i: the
                // session tears down and every later request must surface
                // a transport failure rather than hang or vanish.
                self.conn
                    .cast(blastfunction::rpc::Request::Disconnect, VirtualTime::ZERO)
                    .ok();
            }
            if i < self.kill_after {
                match self.round_trip() {
                    Ok(()) => out.push(Ok(Completion::at(start))),
                    Err(e) => out.push(Err(HandlerError::new(e.to_string()))),
                }
            } else {
                // Session death is asynchronous (the manager-side thread
                // exits when it processes the disconnect); retry until the
                // failure becomes visible so the outcome is deterministic.
                let mut result = self.round_trip();
                for _ in 0..200 {
                    if result.is_err() {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    result = self.round_trip();
                }
                match result {
                    Ok(()) => out.push(Ok(Completion::at(start))),
                    Err(e) => out.push(Err(HandlerError::new(e.to_string()))),
                }
            }
        }
        out
    }
}

#[test]
fn device_manager_loss_mid_batch_fails_typed_without_losing_invocations() {
    let manager = manager_with(small_board(1 << 24), 1 << 24);
    let endpoint = manager.connect("mid-batch", PathCosts::local_grpc());
    let backend = RemoteBackend::connect(endpoint, VirtualClock::new()).expect("connect");
    let conn = backend.connection().clone();
    let device = Device::new(std::sync::Arc::new(backend));
    let ctx = device.create_context().expect("ctx");
    let buffer = ctx.create_buffer(64).expect("buffer");
    let queue = ctx.create_queue().expect("queue");

    let kill_after = 3;
    let total = 6;
    let gateway = Gateway::new();
    gateway.deploy(
        "victim",
        Batcher::new().with_max_batch_size(total),
        std::sync::Arc::new(MidBatchLoss {
            queue,
            buffer,
            conn,
            kill_after,
        }),
    );

    let mut submitted = Vec::new();
    for _ in 0..total {
        submitted.push(
            gateway
                .submit("victim", Invocation::at(VirtualTime::ZERO))
                .expect("queue capacity 64"),
        );
    }
    let outcomes = gateway
        .flush("victim", VirtualTime::ZERO)
        .expect("function deployed");

    // One outcome per submission, every ticket echoed exactly once.
    assert_eq!(outcomes.len(), total, "an invocation was lost or invented");
    let mut echoed: Vec<_> = outcomes.iter().map(|o| o.ticket).collect();
    echoed.sort();
    assert_eq!(echoed, submitted, "tickets lost or duplicated");

    // Requests before the loss complete; requests after it fail with the
    // transport error, surfaced per invocation instead of poisoning the
    // batch or hanging the gateway.
    for (i, outcome) in outcomes.iter().enumerate() {
        if i < kill_after {
            assert!(outcome.result.is_ok(), "request {i} should precede death");
        } else {
            let err = outcome
                .result
                .as_ref()
                .expect_err("request after manager death must fail");
            assert!(
                err.reason().contains("transport"),
                "request {i}: expected a transport failure, got {err:?}"
            );
        }
    }
    let stats = gateway.stats("victim").expect("deployed");
    assert_eq!(stats.processed, kill_after as u64);
    assert_eq!(stats.failed, (total - kill_after) as u64);
}

#[test]
fn cross_tenant_buffers_are_unreachable() {
    let manager = manager_with(small_board(1 << 24), 1 << 24);
    let alice = connect(&manager, PathCosts::local_grpc());
    let alice_ctx = alice.create_context().expect("ctx");
    let secret = alice_ctx.create_buffer(64).expect("buffer");
    let alice_queue = alice_ctx.create_queue().expect("queue");
    alice_queue.write(&secret, vec![42u8; 64]).expect("write");

    // Mallory connects separately and probes handle values 1..64 — none
    // may reach Alice's buffer (handles are session-scoped).
    let mallory = connect(&manager, PathCosts::local_grpc());
    let m_ctx = mallory.create_context().expect("ctx");
    let m_queue = m_ctx.create_queue().expect("queue");
    let mine = m_ctx.create_buffer(64).expect("own buffer");
    m_queue.write(&mine, vec![0u8; 64]).expect("write");
    for guess in 1..=64u64 {
        let ev = mallory.backend().enqueue_read(
            m_queue.id(),
            blastfunction::ocl::MemId(guess),
            0,
            64,
            false,
        );
        if let Ok(ev) = ev {
            m_queue.flush().expect("flush");
            if ev.wait().is_ok() {
                let payload = ev.take_payload().expect("payload");
                if let blastfunction::fpga::Payload::Data(bytes) = payload {
                    assert_ne!(
                        bytes,
                        vec![42u8; 64],
                        "leaked Alice's buffer via handle {guess}"
                    );
                }
            }
        }
    }
}

#[test]
fn shard_scoped_device_failure_rehomes_tenants_without_disturbing_other_shards() {
    use blastfunction::registry::StaticDevice;

    // A four-shard federation over six boards, every board pre-configured
    // with the Sobel bitstream. All calls go through the typed
    // `PlacementService` surface — the same one the cluster admission
    // hook uses.
    let federation = ShardedRegistry::new(AllocationPolicy::paper(), 4);
    let placement: &dyn PlacementService = &federation;
    let nodes = [node_a(), node_b(), node_c()];
    for i in 0..6 {
        placement.register_device_handle(
            StaticDevice::new(
                format!("fpga-{i}"),
                nodes[i % nodes.len()].clone(),
                Some(sobel::SOBEL_BITSTREAM),
            )
            .handle(),
        );
    }
    for i in 0..6 {
        let function = format!("sobel-{i}");
        placement.register_function(
            &function,
            DeviceQuery::for_accelerator(sobel::SOBEL_BITSTREAM),
        );
        placement
            .place_instance(&format!("inst-{i}"), &function)
            .expect("six boards absorb six instances");
    }
    let before: std::collections::BTreeMap<String, String> = (0..6)
        .map(|i| {
            let instance = format!("inst-{i}");
            let device = placement.binding(&instance).expect("bound");
            (instance, device)
        })
        .collect();

    // Kill the board hosting inst-0. The failure is scoped to the owning
    // shard: the registry drops the device, unbinds its tenants, and
    // reports them for re-homing.
    let victim = before["inst-0"].clone();
    let evicted = placement
        .handle_device_failure(&victim)
        .expect("failure handled");
    assert!(evicted.contains(&"inst-0".to_string()), "{evicted:?}");
    assert!(
        !placement.device_ids().contains(&victim),
        "the dead board must leave the federation"
    );
    for instance in &evicted {
        assert_eq!(
            before[instance], victim,
            "only the victim's tenants may be evicted"
        );
    }
    for (instance, device) in &before {
        if *device == victim {
            assert!(
                placement.binding(instance).is_none(),
                "{instance} must be unbound after the failure"
            );
        } else {
            // Bindings on the other shards' boards are untouched: the
            // failure never escapes the owning shard.
            assert_eq!(
                placement.binding(instance).as_deref(),
                Some(device.as_str()),
                "{instance} moved although its board survived"
            );
        }
    }

    // Re-homing the evicted tenants through the same API lands each one
    // on a surviving board.
    for (round, instance) in evicted.iter().enumerate() {
        let index = instance.strip_prefix("inst-").expect("harness naming");
        let allocation = placement
            .place_instance(&format!("re-{round}"), &format!("sobel-{index}"))
            .expect("survivors absorb the evicted tenants");
        assert_ne!(allocation.device_id, victim, "re-homed onto a dead board");
    }
}

fn cached_manager(id: &str, node: bf_model::NodeSpec, board: Arc<Mutex<Board>>) -> DeviceManager {
    DeviceManager::new(
        DeviceManagerConfig::standalone(id)
            .with_shm_capacity(1 << 24)
            .with_payload_cache(1 << 20),
        node,
        board,
        catalog(),
    )
}

#[test]
fn evicted_payload_digest_nack_resends_inline_without_stale_bytes() {
    let manager = cached_manager("fpga-b", node_b(), small_board(1 << 24));
    let device = connect(&manager, PathCosts::local_grpc());
    let ctx = device.create_context().expect("ctx");
    let buf = ctx.create_buffer(64).expect("buffer");
    let queue = ctx.create_queue().expect("queue");

    let old = vec![1u8; 64];
    let new = vec![2u8; 64];
    // First send travels inline and is admitted to the manager's cache;
    // the repeat ships only the digest and the host tier resolves it.
    queue.write(&buf, old.clone()).expect("inline write");
    queue.write(&buf, old.clone()).expect("digest write");
    let stats = manager.cache_stats().expect("cache enabled");
    assert!(stats.hits >= 1, "repeat write must hit: {stats:?}");

    // Overwrite with different content, then wipe the manager's cache —
    // the eviction / node-restart case. The client's tracker still
    // believes the manager holds `old`.
    queue.write(&buf, new.clone()).expect("write new");
    manager.invalidate_payload_cache();

    // The stale digest must surface as a CacheMiss NACK and a
    // transparent inline resend — the buffer ends up holding `old`. A
    // broken NACK path would either fail the write or leave `new` in
    // place (a stale "hit" skipping the transfer).
    queue.write(&buf, old.clone()).expect("stale digest resend");
    assert_eq!(queue.read_vec(&buf).expect("read"), old);
    let stats = manager.cache_stats().expect("cache enabled");
    assert!(
        stats.misses >= 1,
        "the stale digest must be counted as a miss: {stats:?}"
    );
}

#[test]
fn node_death_migration_never_reuses_stale_cache_or_bitstream() {
    // The victim node serves a cache-hot session: payload resident on
    // both tiers, board programmed with the function's bitstream.
    let victim_board = small_board(1 << 24);
    let victim = cached_manager("fpga-b", node_b(), victim_board.clone());
    let device = connect(&victim, PathCosts::local_grpc());
    let ctx = device.create_context().expect("ctx");
    let buf = ctx.create_buffer(256).expect("buffer");
    let queue = ctx.create_queue().expect("queue");
    let payload = vec![0x5Au8; 256];
    queue.write(&buf, payload.clone()).expect("inline write");
    queue.write(&buf, payload.clone()).expect("digest write");
    assert!(
        victim.cache_stats().expect("cache enabled").hits >= 1,
        "the victim session must be cache-hot before the loss"
    );

    // Node death: the manager's cache dies with the process. The
    // replacement on another node shares neither tier nor tracker state.
    victim.invalidate_payload_cache();
    let replacement_board = small_board(1 << 24);
    let replacement = cached_manager("fpga-c", node_c(), replacement_board.clone());
    let rerouted = connect(&replacement, PathCosts::local_grpc());
    let ctx2 = rerouted.create_context().expect("ctx");
    let buf2 = ctx2.create_buffer(256).expect("buffer");
    let queue2 = ctx2.create_queue().expect("queue");

    // The re-routed invocation ships its payload inline: a fresh
    // connection's tracker cannot claim residency the replacement does
    // not have, so no stale digest hit is possible.
    queue2
        .write(&buf2, payload.clone())
        .expect("re-routed write");
    let stats = replacement.cache_stats().expect("cache enabled");
    assert_eq!(
        stats.hits, 0,
        "no digest may hit a fresh manager: {stats:?}"
    );
    assert!(
        stats.insertions >= 1,
        "payload must be re-admitted: {stats:?}"
    );
    assert_eq!(queue2.read_vec(&buf2).expect("read"), payload);

    // The replacement board holds no bitstream from the victim: the
    // kernel path must program it before the first launch.
    assert!(
        replacement_board.lock().bitstream_id().is_none(),
        "replacement must start unconfigured"
    );
    let program = ctx2.build_program(sobel::SOBEL_BITSTREAM).expect("program");
    let kernel = program.create_kernel(sobel::SOBEL_KERNEL).expect("kernel");
    let frame = sobel::frame_bytes(8, 8);
    let input = ctx2.create_buffer(frame).expect("input");
    let output = ctx2.create_buffer(frame).expect("output");
    kernel.set_arg_buffer(0, &input).expect("arg 0");
    kernel.set_arg_buffer(1, &output).expect("arg 1");
    kernel.set_arg(2, ArgValue::U32(8)).expect("arg 2");
    kernel.set_arg(3, ArgValue::U32(8)).expect("arg 3");
    queue2
        .write(&input, vec![9u8; frame as usize])
        .expect("frame write");
    let ev = queue2
        .launch(&kernel, NdRange::d2(8, 8))
        .expect("launch accepted");
    queue2.flush().expect("flush");
    ev.wait().expect("kernel must run after reprogramming");
    assert_eq!(
        replacement_board.lock().bitstream_id(),
        Some(sobel::SOBEL_BITSTREAM),
        "the replacement programmed the bitstream itself"
    );
}
