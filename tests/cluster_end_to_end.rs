//! Integration: the full control plane — cluster, registry, device
//! managers, allocation, reconfiguration and migration — driving real
//! (virtual-time) OpenCL traffic end to end.

use std::sync::Arc;

use blastfunction::prelude::*;
use blastfunction::registry::ENV_DEVICE_MANAGER;
use blastfunction::workloads::{mm, sobel};
use parking_lot::Mutex;

fn catalog() -> BitstreamCatalog {
    let mut catalog = BitstreamCatalog::new();
    catalog.register(sobel::bitstream());
    catalog.register(mm::bitstream());
    catalog
}

fn manager_for(node: bf_model::NodeSpec) -> DeviceManager {
    let device_id = format!("fpga-{}", node.id().as_str().to_lowercase());
    let board = Arc::new(Mutex::new(Board::new(BoardSpec::de5a_net(), *node.pcie())));
    DeviceManager::new(
        DeviceManagerConfig::standalone(&device_id).with_policy(ReconfigPolicy::Deny),
        node,
        board,
        catalog(),
    )
}

fn build_stack() -> (Cluster, Registry) {
    let cluster = Cluster::new(paper_cluster());
    let registry = Registry::new(AllocationPolicy::paper());
    for node in paper_cluster() {
        registry.register_device(manager_for(node));
    }
    // The cluster is wired through the typed placement API — the same
    // call a ShardedRegistry would take.
    attach_placement(&cluster, Arc::new(registry.clone()));
    (cluster, registry)
}

#[test]
fn five_functions_place_like_table_ii_and_serve_traffic() {
    let (cluster, registry) = build_stack();
    for i in 1..=5 {
        registry.register_function(
            format!("sobel-{i}"),
            DeviceQuery::for_accelerator(sobel::SOBEL_BITSTREAM),
        );
    }
    let mut instances = Vec::new();
    for i in 1..=5 {
        instances.push(
            cluster
                .create_instance(InstanceTemplate::new(format!("sobel-{i}")))
                .expect("admission + scheduling"),
        );
    }

    // Placement distribution from Table II: 2 on B, 2 on A, 1 on C.
    let on = |node: &str| {
        instances
            .iter()
            .filter(|i| i.node.as_ref().map(NodeId::as_str) == Some(node))
            .count()
    };
    assert_eq!(on("B"), 2);
    assert_eq!(on("A"), 2);
    assert_eq!(on("C"), 1);

    // Co-location invariant: every pod runs on its device's node.
    for inst in &instances {
        let device = &inst.env[ENV_DEVICE_MANAGER];
        let manager = registry.manager(device).expect("manager");
        assert_eq!(inst.node.as_ref(), Some(manager.node().id()));
    }

    // Each placed instance drives a real request through its manager.
    let (w, h) = (32u32, 24u32);
    let frame = vec![0xffa0_50f0u32; (w * h) as usize];
    let expected = sobel::reference(&frame, w, h);
    for inst in &instances {
        let device_id = inst.env[ENV_DEVICE_MANAGER].clone();
        let manager = registry.manager(&device_id).expect("manager");
        let mut router = Router::new();
        router.add_manager(manager);
        let device = router
            .connect(
                0,
                &inst.id.to_string(),
                PathCosts::local_shm(),
                VirtualClock::new(),
            )
            .expect("connect");
        let ctx = device.create_context().expect("ctx");
        let program = ctx.build_program(sobel::SOBEL_BITSTREAM).expect("program");
        let kernel = program.create_kernel(sobel::SOBEL_KERNEL).expect("kernel");
        let input = ctx.create_buffer(sobel::frame_bytes(w, h)).expect("in");
        let output = ctx.create_buffer(sobel::frame_bytes(w, h)).expect("out");
        let queue = ctx.create_queue().expect("queue");
        queue
            .write(&input, sobel::pack_pixels(&frame))
            .expect("write");
        kernel.set_arg_buffer(0, &input).expect("a0");
        kernel.set_arg_buffer(1, &output).expect("a1");
        kernel.set_arg(2, ArgValue::U32(w)).expect("a2");
        kernel.set_arg(3, ArgValue::U32(h)).expect("a3");
        queue
            .launch(&kernel, NdRange::d2(w.into(), h.into()))
            .expect("launch");
        queue.finish().expect("finish");
        let got = sobel::unpack_pixels(&queue.read_vec(&output).expect("read"));
        assert_eq!(got, expected, "instance {} computed a wrong frame", inst.id);
    }

    // All five instances stay visible to the allocator.
    registry.gather_metrics();
    let views = registry.device_views();
    let total_connected: usize = views.iter().map(|v| v.connected.len()).sum();
    assert_eq!(total_connected, 5);
}

#[test]
fn wrong_bitstream_triggers_validated_reconfiguration_and_migration() {
    let (cluster, registry) = build_stack();
    // Fill all three boards with mm tenants first.
    for i in 1..=3 {
        registry.register_function(
            format!("mm-{i}"),
            DeviceQuery::for_accelerator(mm::MM_BITSTREAM),
        );
        cluster
            .create_instance(InstanceTemplate::new(format!("mm-{i}")))
            .expect("mm instance");
    }
    for id in registry.device_ids() {
        assert_eq!(
            registry
                .manager(&id)
                .expect("manager")
                .bitstream_id()
                .as_deref(),
            Some(mm::MM_BITSTREAM)
        );
    }

    // A sobel function arrives: no compatible board, but mm tenants can be
    // redistributed, so Algorithm 1 flags a reconfiguration + migration.
    registry.register_function(
        "sobel-1",
        DeviceQuery::for_accelerator(sobel::SOBEL_BITSTREAM),
    );
    let inst = cluster
        .create_instance(InstanceTemplate::new("sobel-1"))
        .expect("sobel instance");
    let sobel_device = inst.env[ENV_DEVICE_MANAGER].clone();
    assert_eq!(
        registry
            .manager(&sobel_device)
            .expect("manager")
            .bitstream_id()
            .as_deref(),
        Some(sobel::SOBEL_BITSTREAM),
        "the chosen board was reprogrammed"
    );

    // The displaced mm tenants survived elsewhere (create-before-delete).
    let mm_instances: Vec<_> = cluster
        .instances()
        .into_iter()
        .filter(|i| i.function.starts_with("mm-"))
        .collect();
    assert_eq!(mm_instances.len(), 3, "no mm tenant was lost");
    for mm_inst in &mm_instances {
        let dev = registry.binding(&mm_inst.id.to_string()).expect("bound");
        assert_ne!(
            dev, sobel_device,
            "mm tenants moved off the reprogrammed board"
        );
    }
}

#[test]
fn autoscaler_replicas_pass_admission_and_spread_over_devices() {
    use blastfunction::serverless::{AutoscalePolicy, Autoscaler, LoadSignal};

    let (cluster, registry) = build_stack();
    registry.register_function(
        "sobel-1",
        DeviceQuery::for_accelerator(sobel::SOBEL_BITSTREAM),
    );

    let scaler = Autoscaler::new(cluster.clone());
    scaler.set_policy(
        "sobel-1",
        AutoscalePolicy::new()
            .with_target_rps_per_replica(20.0)
            .with_bounds(1, 3),
    );

    // 55 rq/s observed -> 3 replicas, each admitted by the registry and
    // therefore bound to a device and pinned to its node.
    let action = scaler
        .reconcile("sobel-1", &LoadSignal::from_rps(55.0))
        .expect("scale up");
    assert_eq!(action.created.len(), 3);
    let devices: std::collections::HashSet<String> = cluster
        .instances()
        .iter()
        .map(|i| i.env[ENV_DEVICE_MANAGER].clone())
        .collect();
    assert_eq!(
        devices.len(),
        3,
        "Algorithm 1 spread the replicas over all boards"
    );

    // Load drops: scale back down; bindings of deleted replicas are
    // released so the allocator sees the freed capacity.
    let action = scaler
        .reconcile("sobel-1", &LoadSignal::from_rps(5.0))
        .expect("scale down");
    assert_eq!(action.deleted.len(), 2);
    for _ in 0..100 {
        let views = registry.device_views();
        let connected: usize = views.iter().map(|v| v.connected.len()).sum();
        if connected == 1 {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("bindings of deleted replicas were not released");
}

#[test]
fn client_initiated_reconfiguration_respects_the_validator() {
    let cluster = Cluster::new(paper_cluster());
    let registry = Registry::new(AllocationPolicy::paper());
    let node = node_b();
    let board = Arc::new(Mutex::new(Board::new(BoardSpec::de5a_net(), *node.pcie())));
    // The manager consults the registry's validator for client-initiated
    // reconfiguration requests.
    let manager = DeviceManager::new(
        DeviceManagerConfig::standalone("fpga-b").with_policy(ReconfigPolicy::Validate(
            blastfunction::registry::reconfig_validator(Arc::new(registry.clone())),
        )),
        node,
        board,
        catalog(),
    );
    registry.register_device(manager.clone());
    attach_placement(&cluster, Arc::new(registry.clone()));
    registry.register_function("mm-1", DeviceQuery::for_accelerator(mm::MM_BITSTREAM));
    let inst = cluster
        .create_instance(InstanceTemplate::new("mm-1"))
        .expect("instance");

    // The bound instance may reconfigure its own device…
    let endpoint = manager.connect(&inst.id.to_string(), PathCosts::local_shm());
    let backend = RemoteBackend::connect(endpoint, VirtualClock::new()).expect("connect");
    backend
        .reconfigure(sobel::SOBEL_BITSTREAM)
        .expect("validated reconfiguration");
    assert_eq!(
        manager.bitstream_id().as_deref(),
        Some(sobel::SOBEL_BITSTREAM)
    );

    // …while an unbound impostor is refused.
    let endpoint = manager.connect("impostor", PathCosts::local_shm());
    let impostor = RemoteBackend::connect(endpoint, VirtualClock::new()).expect("connect");
    let err = impostor
        .reconfigure(mm::MM_BITSTREAM)
        .expect_err("must be refused");
    assert!(matches!(err, ClError::AccessDenied(_)), "got {err:?}");
    assert_eq!(
        manager.bitstream_id().as_deref(),
        Some(sobel::SOBEL_BITSTREAM)
    );
}

#[test]
fn sharded_registry_drives_the_same_cluster_admission_path() {
    // The same end-to-end stack, but the cluster is wired to a 2-shard
    // federation instead of a single registry — through the identical
    // attach_placement call. Admission, device injection and node
    // pinning must be indistinguishable from the single-registry stack.
    let cluster = Cluster::new(paper_cluster());
    let sharded = ShardedRegistry::new(AllocationPolicy::paper(), 2);
    for node in paper_cluster() {
        let manager = manager_for(node);
        sharded.register_device_handle(Arc::new(manager.clone()));
    }
    attach_placement(&cluster, Arc::new(sharded.clone()));

    for i in 1..=5 {
        sharded.register_function(
            &format!("sobel-{i}"),
            DeviceQuery::for_accelerator(sobel::SOBEL_BITSTREAM),
        );
    }
    let mut instances = Vec::new();
    for i in 1..=5 {
        instances.push(
            cluster
                .create_instance(InstanceTemplate::new(format!("sobel-{i}")))
                .expect("admission through the federation"),
        );
    }

    // Every pod got a device and was pinned to that device's node.
    for inst in &instances {
        let device = &inst.env[ENV_DEVICE_MANAGER];
        let bound = sharded.binding(&inst.id.to_string());
        assert_eq!(bound.as_deref(), Some(device.as_str()));
        let view_nodes: std::collections::HashMap<String, NodeId> = sharded
            .device_views()
            .into_iter()
            .map(|v| (v.id, v.node))
            .collect();
        assert_eq!(inst.node.as_ref(), view_nodes.get(device.as_str()));
    }

    // All five instances are visible across the federation, and a
    // deterministic join/leave rebalance preserves every binding.
    let connected: usize = sharded
        .device_views()
        .iter()
        .map(|v| v.connected.len())
        .sum();
    assert_eq!(connected, 5);
    let (joined, _) = sharded.add_shard();
    sharded.remove_shard(&joined);
    for inst in &instances {
        assert!(
            sharded.binding(&inst.id.to_string()).is_some(),
            "rebalance must not strand {}",
            inst.id
        );
    }
}
