//! Integration: direct mode (real threads) and DES mode (event simulation)
//! must agree.
//!
//! The single-tenant Sobel request is served by both execution modes with
//! the same cost models; a closed-loop run through the *real* threaded
//! stack (Remote Library → Device Manager → board) must land on the same
//! latency the cluster simulation predicts for an uncontended function on
//! the same node.

use std::sync::Arc;

use blastfunction::model::DataPathKind;
use blastfunction::prelude::*;
use blastfunction::serverless::run_closed_loop;
use blastfunction::sim::request_profile;
use blastfunction::workloads::sobel;
use parking_lot::Mutex;

/// Builds the direct-mode stack: a gateway fronting one real function
/// instance that drives the Remote OpenCL Library against a shared board
/// on node B.
fn direct_mode_gateway() -> (Gateway, VirtualClock) {
    let mut catalog = BitstreamCatalog::new();
    catalog.register(sobel::bitstream());
    let board = Arc::new(Mutex::new(Board::new(
        BoardSpec::de5a_net(),
        *node_b().pcie(),
    )));
    let manager = DeviceManager::new(
        DeviceManagerConfig::standalone("fpga-b"),
        node_b(),
        board,
        catalog,
    );
    let mut router = Router::new();
    router.add_manager(manager);
    let clock = VirtualClock::new();
    let device = router
        .connect(0, "sobel-1", PathCosts::local_shm(), clock.clone())
        .expect("connect");

    // One-time setup (excluded from request latency, as in a warm
    // serverless function).
    let ctx = device.create_context().expect("ctx");
    let program = ctx.build_program(sobel::SOBEL_BITSTREAM).expect("program");
    let kernel = program.create_kernel(sobel::SOBEL_KERNEL).expect("kernel");
    let (w, h) = (1920u32, 1080u32);
    let bytes = sobel::frame_bytes(w, h);
    let input = ctx.create_buffer(bytes).expect("in");
    let output = ctx.create_buffer(bytes).expect("out");
    let queue = ctx.create_queue().expect("queue");
    kernel.set_arg_buffer(0, &input).expect("a0");
    kernel.set_arg_buffer(1, &output).expect("a1");
    kernel.set_arg(2, ArgValue::U32(w)).expect("a2");
    kernel.set_arg(3, ArgValue::U32(h)).expect("a3");

    let gateway = Gateway::new().with_forward_latency(VirtualDuration::from_micros(300));
    let handler_clock = clock.clone();
    let node = node_b();
    // The typed-API compatibility path: a single-request closure behind
    // the unbatched queue, with the old closure API's exact timing.
    gateway.deploy_single("sobel-1", move |at: VirtualTime| {
        // Function wrapper CPU cost, then the OpenCL request the DES
        // models as one atomic task: write frame → kernel → read frame.
        handler_clock.advance_to(at + node.host_overhead());
        queue
            .write_async(&input, 0, Payload::Synthetic(bytes))
            .map_err(|e| HandlerError::new(e.to_string()))?;
        queue
            .launch(&kernel, NdRange::d2(w.into(), h.into()))
            .map_err(|e| HandlerError::new(e.to_string()))?;
        let _ = queue
            .read_payload(&output)
            .map_err(|e| HandlerError::new(e.to_string()))?;
        // Response serialization, as the DES charges.
        Ok(handler_clock.advance_by(VirtualDuration::from_micros(500)))
    });
    (gateway, clock)
}

#[test]
fn direct_mode_latency_matches_the_des_prediction() {
    // --- DES prediction: one uncontended 20 rq/s sobel function on node B.
    // Take it from the low-load BlastFunction scenario: sobel-1 runs on B
    // with only a 5 rq/s co-tenant, so queueing is negligible.
    let des = run_scenario(
        &ScenarioConfig::new(
            UseCase::Sobel,
            LoadLevel::Low,
            Deployment::BlastFunction {
                data_path: DataPathKind::SharedMemory,
            },
        )
        .with_duration(VirtualDuration::from_secs(20))
        .with_jitter(0.0),
    );
    let des_fn = des
        .functions
        .iter()
        .find(|f| f.function == "sobel-1")
        .expect("sobel-1");
    assert_eq!(des_fn.node, "B");

    // --- Direct mode: the same request through the real threaded stack.
    let (gateway, clock) = direct_mode_gateway();
    let result = run_closed_loop(
        &gateway,
        "sobel-1",
        20.0,
        VirtualDuration::from_secs(20),
        &clock,
    )
    .expect("load run");

    assert!(result.failed == 0, "no request may fail");
    assert!(
        (result.achieved_rps - 20.0).abs() < 1.0,
        "keeps the target: {result:?}"
    );

    let direct_ms = result.mean_latency.as_millis_f64();
    let des_ms = des_fn.mean_latency_ms;
    let diff = (direct_ms - des_ms).abs();
    assert!(
        diff < 2.0,
        "direct mode ({direct_ms:.2} ms) and DES ({des_ms:.2} ms) disagree by {diff:.2} ms"
    );
}

#[test]
fn profiles_describe_what_direct_mode_actually_does() {
    // The DES consumes RequestProfiles; sanity-check that the Sobel profile
    // matches the ops the direct-mode handler issues (1 task: write +
    // kernel + read of one frame each way).
    let p = request_profile(UseCase::Sobel);
    assert_eq!(p.sync_points(), 1);
    assert_eq!(p.op_count(), 3);
    assert_eq!(p.bytes_moved(), 2 * sobel::frame_bytes(1920, 1080));
}
