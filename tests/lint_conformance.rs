//! Tier-1 conformance gate: the whole workspace must pass `bf-lint`.
//!
//! This runs the same engine as `cargo run -p bf-lint` in-process, so a
//! plain `cargo test` fails with file:line diagnostics whenever a crate
//! reintroduces a panic site, an `std::sync` lock, a wall-clock read, a
//! lock-order inversion, a wildcard arm on a protocol enum, an unbounded
//! channel on the hot path, or an unjustified payload byte copy in a
//! datapath module — plus the interprocedural `bf-flow` passes, gated on
//! the checked-in `lint-baseline.json` exactly as CI gates them.

use bf_lint::{baseline, check_source, run, ENTRY_CLASSES, FLOW_RULES, LOCK_HIERARCHY, RULES};

/// Walks up from the test binary's cwd to the workspace root (the
/// directory holding the `[workspace]` manifest).
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).expect("read Cargo.toml");
            if text.contains("[workspace]") {
                return dir;
            }
        }
        assert!(dir.pop(), "no workspace root above the test cwd");
    }
}

#[test]
fn workspace_passes_bf_lint() {
    let root = workspace_root();
    let report = run(&root).expect("bf-lint scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );
    // Pre-existing accepted findings live in the baseline; only NEW
    // findings fail — the same contract ci.sh enforces.
    let accepted = baseline::load(&root.join("lint-baseline.json")).expect("baseline parses");
    let gated = baseline::gate(&report.diagnostics, &accepted);
    assert!(
        gated.new.is_empty(),
        "bf-lint found {} NEW violation(s):\n{}",
        gated.new.len(),
        gated
            .new
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        gated.stale.is_empty(),
        "stale baseline entries (refresh with --write-baseline): {:?}",
        gated.stale
    );
}

/// Every hot-path entry annotation in the tree must bind to a real
/// function the flow analysis resolved — a dangling annotation would
/// silently un-protect that entire subsystem.
#[test]
fn every_flow_entry_annotation_resolves() {
    let report = run(&workspace_root()).expect("bf-lint scan");
    let classes: Vec<&str> = report.entries.iter().map(|e| e.class.as_str()).collect();
    for class in [
        "poller",
        "devmgr_events",
        "remote_reactor",
        "batcher",
        "shm",
    ] {
        assert!(
            classes.contains(&class),
            "entry class {class:?} has no resolved root; got {classes:?}"
        );
    }
    assert!(
        report.entries.len() >= 6,
        "expected the six production entry roots, got {:?}",
        report.entries
    );
    for entry in &report.entries {
        assert!(
            ENTRY_CLASSES.iter().any(|(c, _)| *c == entry.class),
            "resolved entry with unknown class: {entry:?}"
        );
        assert!(entry.line > 0 && !entry.function.is_empty());
    }
}

/// Fixture battery for the `unbounded_channel` rule: the workspace gate
/// above only proves the tree is clean *today*; these prove the rule
/// would actually catch a regression.
#[test]
fn unbounded_channel_rule_fires_on_library_fixtures() {
    assert!(RULES.contains(&"unbounded_channel"));
    let fixture = "use crossbeam::channel::unbounded;\n\
                   pub fn hot_path() {\n    let (tx, rx) = unbounded();\n}\n";
    let out = check_source("crates/x/src/lib.rs", fixture);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "unbounded_channel");
    assert_eq!(out[0].line, 3, "the construction fires, not the import");
}

#[test]
fn unbounded_channel_rule_respects_the_allowlist() {
    let justified = "pub fn watch() {\n    \
                     // bf-lint: allow(unbounded_channel): cold control path\n    \
                     let (tx, rx) = unbounded();\n}\n";
    assert!(
        check_source("crates/x/src/lib.rs", justified).is_empty(),
        "a justified directive exempts the site"
    );
    // Bounded construction is the sanctioned form.
    let bounded = "pub fn hot_path() {\n    let (tx, rx) = bounded(64);\n}\n";
    assert!(check_source("crates/x/src/lib.rs", bounded).is_empty());
    // Test code may buffer freely.
    let test_path = "fn harness() {\n    let (tx, rx) = unbounded();\n}\n";
    assert!(
        check_source("crates/x/tests/harness.rs", test_path).is_empty(),
        "tests/ paths are exempt"
    );
}

/// Fixture battery for the `payload_copy` rule: copies on the zero-copy
/// datapath must be deliberate, counted, and justified.
#[test]
fn payload_copy_rule_fires_in_datapath_modules() {
    assert!(RULES.contains(&"payload_copy"));
    let fixture = "pub fn stage(payload: &Payload) -> Vec<u8> {\n    \
                   payload.to_vec()\n}\n";
    let out = check_source("crates/rpc/src/codec.rs", fixture);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "payload_copy");
    assert_eq!(out[0].line, 2);
    // Clones of payload-named values fire too — a hidden deep copy before
    // the buffers became refcounted.
    let clone = "pub fn enqueue(data: &DataRef) {\n    push(data.clone());\n}\n";
    let out = check_source("crates/devmgr/src/session.rs", clone);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "payload_copy");
}

#[test]
fn payload_copy_rule_scopes_and_allowlist() {
    // The same code outside the datapath module list is untouched.
    let fixture = "pub fn stage(payload: &Payload) -> Vec<u8> {\n    \
                   payload.to_vec()\n}\n";
    assert!(check_source("crates/x/src/lib.rs", fixture).is_empty());
    // A justified directive exempts a deliberate, counted copy.
    let justified = "pub fn cow(bytes: &Bytes) -> Vec<u8> {\n    \
                     // bf-lint: allow(payload_copy): copy-on-write, counted\n    \
                     bytes.to_vec()\n}\n";
    assert!(check_source("crates/fpga/src/memory.rs", justified).is_empty());
    // Refcount bumps are the sanctioned alias form.
    let shared = "pub fn enqueue(data: &DataRef) {\n    push(data.share());\n}\n";
    assert!(check_source("crates/devmgr/src/session.rs", shared).is_empty());
}

/// Runs the interprocedural flow passes over an in-memory multi-file
/// fixture, exactly as `run` does for the real tree.
fn flow_check(sources: &[(&str, &str)]) -> Vec<bf_lint::Diagnostic> {
    let mut out = Vec::new();
    let units: Vec<bf_lint::Unit> = sources
        .iter()
        .map(|(path, src)| bf_lint::Unit::analyze(bf_lint::scan::parse(path, src, false), &mut out))
        .collect();
    bf_lint::flow::check(&units, LOCK_HIERARCHY, &mut out);
    out
}

/// The acceptance scenario for the whole subsystem: a blocking lock
/// acquisition smuggled two calls deep into a reactor-style loop must be
/// caught, with the full entry → helper → offense chain in the witness.
#[test]
fn blocking_lock_in_a_reactor_loop_fails_with_a_multi_hop_witness() {
    assert!(FLOW_RULES.contains(&"hot_blocking"));
    let reactor = "use crate::dispatch::route;\n\
                   // bf-flow: entry(remote_reactor)\n\
                   pub fn reactor_thread(rx: u32) {\n\
                       route(rx);\n\
                   }\n";
    let dispatch = "pub fn route(rx: u32) {\n\
                        settle(rx);\n\
                    }\n\
                    fn settle(rx: u32) {\n\
                        let board = lock_order::tracked(&shared.board, \"board\");\n\
                    }\n";
    let out = flow_check(&[
        ("crates/remote/src/reactor.rs", reactor),
        ("crates/remote/src/dispatch.rs", dispatch),
    ]);
    let hit = out
        .iter()
        .find(|d| d.rule == "hot_blocking")
        .unwrap_or_else(|| panic!("blocking lock not caught: {out:?}"));
    // `board` outranks the remote reactor's floor (`pending`), so the
    // acquisition is a blocking hazard inside the loop.
    assert_eq!(hit.file, "crates/remote/src/dispatch.rs");
    assert!(
        hit.witness.len() >= 3,
        "expected a multi-hop chain, got {:?}",
        hit.witness
    );
    assert!(hit.witness[0].function.contains("reactor_thread"));
    assert!(hit.witness.last().unwrap().file.ends_with("dispatch.rs"));
}

/// hot_alloc: an unbounded push three frames below the event loop fires;
/// the same push behind a justified allow directive does not.
#[test]
fn hot_alloc_crosses_files_and_respects_allows() {
    let entry = "// bf-flow: entry(devmgr_events)\n\
                 pub fn run_event_loop(n: u32) { crate::exec::execute_task(n); }\n";
    let exec = "pub fn execute_task(n: u32) {\n\
                    let mut log = Vec::new();\n\
                    log.push(n);\n\
                }\n";
    let out = flow_check(&[
        ("crates/devmgr/src/event_loop.rs", entry),
        ("crates/devmgr/src/exec.rs", exec),
    ]);
    assert_eq!(
        out.iter().filter(|d| d.rule == "hot_alloc").count(),
        1,
        "{out:?}"
    );
    let allowed = exec.replace(
        "let mut log = Vec::new();",
        "// bf-flow: allow(hot_alloc): bounded by the op cap\nlet mut log = Vec::new();",
    );
    let allowed = allowed.replace("log.push(n);", "log.reserve(1);\nlog.push(n);");
    let out = flow_check(&[
        ("crates/devmgr/src/event_loop.rs", entry),
        ("crates/devmgr/src/exec.rs", &allowed),
    ]);
    assert!(
        out.iter().all(|d| d.rule != "hot_alloc"),
        "reserve bounds the push: {out:?}"
    );
}

/// hot_panic: unwrap on the hot path fires and names the offending frame.
#[test]
fn hot_panic_flags_unwrap_reachable_from_an_entry() {
    let src = "// bf-flow: entry(batcher)\n\
               pub fn pump(x: Option<u32>) -> u32 {\n\
                   x.unwrap()\n\
               }\n";
    let out = flow_check(&[("crates/serverless/src/gateway.rs", src)]);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "hot_panic");
    assert_eq!(out[0].line, 3);
}

/// error_drop: discarding a risky transport result on the hot path fires.
#[test]
fn error_drop_flags_discarded_transport_errors() {
    let tx = "pub struct Tx { q: u32 }\n\
              impl Tx {\n\
                  pub fn try_send(&self) -> Result<(), TransportError> { Ok(()) }\n\
              }\n";
    let entry = "// bf-flow: entry(poller)\n\
                 pub fn poll(tx: &crate::tx::Tx) {\n\
                     let _ = tx.try_send();\n\
                 }\n";
    let out = flow_check(&[
        ("crates/rpc/src/tx.rs", tx),
        ("crates/rpc/src/poller.rs", entry),
    ]);
    assert_eq!(
        out.iter().filter(|d| d.rule == "error_drop").count(),
        1,
        "{out:?}"
    );
}

#[test]
fn lock_hierarchy_is_declared() {
    // The static rule and the runtime tracker consume the same table; an
    // accidentally emptied hierarchy would silently disable both.
    assert!(
        LOCK_HIERARCHY.len() >= 4,
        "lock hierarchy suspiciously small: {LOCK_HIERARCHY:?}"
    );
    assert!(LOCK_HIERARCHY.contains(&"board"));
}

// ---- bf-taint conformance -----------------------------------------------

/// Runs the trust-boundary taint pass over an in-memory multi-file
/// fixture, exactly as `run` does for the real tree.
fn taint_check(sources: &[(&str, &str)]) -> Vec<bf_lint::Diagnostic> {
    let mut out = Vec::new();
    let units: Vec<bf_lint::Unit> = sources
        .iter()
        .map(|(path, src)| bf_lint::Unit::analyze(bf_lint::scan::parse(path, src, false), &mut out))
        .collect();
    bf_lint::taint::check(&units, &mut out);
    out
}

/// The wire side of every taint fixture: an annotated decode primitive,
/// the same shape as `codec::get_u128_be`.
const WIRE_DECODE: &str = "// bf-taint: source(wire)\n\
    pub fn get_u128_be(buf: &mut Bytes) -> Result<u128, CodecError> {\n\
        Ok(0)\n\
    }\n";

/// The acceptance scenario for the subsystem: the PR-8 digest-trust bug.
/// A client-claimed digest decoded off the wire reaches the cache-hit
/// authorization decision (`admitted.holds` / `cache.get`) without the
/// server recomputing it from the arrived bytes — the exact shape the
/// payload cache shipped with before the server-side recomputation fix.
#[test]
fn pr8_digest_trust_bug_fails_taint_with_a_multi_hop_witness() {
    assert!(bf_lint::TAINT_RULES.contains(&"taint_auth"));
    let session = "pub fn handle_request(buf: &mut Bytes) {\n\
                       let digest = get_u128_be(buf).unwrap();\n\
                       resolve_payload(digest);\n\
                   }\n\
                   fn resolve_payload(digest: u128) {\n\
                       if !admitted.holds(digest) {\n\
                           return;\n\
                       }\n\
                       match cache.get(digest) {\n\
                           _ => {}\n\
                       }\n\
                   }\n";
    let out = taint_check(&[
        ("crates/rpc/src/codec.rs", WIRE_DECODE),
        ("crates/devmgr/src/session.rs", session),
    ]);
    let holds = out
        .iter()
        .find(|d| d.rule == "taint_auth" && d.key.contains("holds"))
        .unwrap_or_else(|| panic!("client-claimed digest authorization not caught: {out:?}"));
    assert_eq!(holds.file, "crates/devmgr/src/session.rs");
    assert!(
        holds.witness.len() >= 3,
        "expected a source → call → sink chain, got {:?}",
        holds.witness
    );
    assert!(
        holds.witness[0].function.contains("get_u128_be"),
        "witness must start at the wire source: {:?}",
        holds.witness
    );
    assert!(
        holds
            .witness
            .iter()
            .any(|h| h.function.contains("handle_request")),
        "witness must pass through the request entry: {:?}",
        holds.witness
    );
    assert!(
        holds.witness.last().unwrap().function.contains("holds"),
        "witness must end at the authorization sink: {:?}",
        holds.witness
    );
    // The cache-admission lookup keyed by the same claimed digest fires too.
    assert!(
        out.iter()
            .any(|d| d.rule == "taint_auth" && d.key.contains("get")),
        "{out:?}"
    );
}

/// The PR-8 fix: recomputing the digest from the arrived bytes is a
/// validated constructor — the result is content identity, not a claim,
/// and the taint clears.
#[test]
fn server_side_digest_recomputation_sanitizes_the_flow() {
    let session = "pub fn handle_request(buf: &mut Bytes) {\n\
                       let digest = get_u128_be(buf).unwrap();\n\
                       resolve_payload(digest, buf);\n\
                   }\n\
                   fn resolve_payload(digest: u128, bytes: &Bytes) {\n\
                       let digest = content_digest(bytes);\n\
                       if !admitted.holds(digest) {\n\
                           return;\n\
                       }\n\
                       match cache.get(digest) {\n\
                           _ => {}\n\
                       }\n\
                   }\n";
    let out = taint_check(&[
        ("crates/rpc/src/codec.rs", WIRE_DECODE),
        ("crates/devmgr/src/session.rs", session),
    ]);
    assert!(
        out.iter().all(|d| !d.rule.starts_with("taint_")),
        "recomputed digest is trusted: {out:?}"
    );
}

/// `bf-taint: sanitized()` without a justification is itself an error,
/// and the underlying finding still fires — an empty excuse exempts
/// nothing.
#[test]
fn sanitized_without_justification_is_an_error_and_does_not_exempt() {
    let src = "pub fn handle(buf: &mut Bytes) {\n\
                   let len = get_u128_be(buf).unwrap();\n\
                   // bf-taint: sanitized()\n\
                   let v: Vec<u8> = Vec::with_capacity(len as usize);\n\
                   drop(v);\n\
               }\n";
    let out = taint_check(&[
        ("crates/rpc/src/codec.rs", WIRE_DECODE),
        ("crates/devmgr/src/worker.rs", src),
    ]);
    assert!(
        out.iter()
            .any(|d| d.rule == "directive" && d.message.contains("justification")),
        "{out:?}"
    );
    assert!(
        out.iter().any(|d| d.rule == "taint_alloc"),
        "empty sanitized(..) must not clear the flow: {out:?}"
    );
}

/// One `bf-taint: allow(a, b)` directive may name several taint rules;
/// each listed rule is exempted at the covered site.
#[test]
fn multi_rule_allow_covers_taint_rules() {
    let src = "pub fn handle(buf: &mut Bytes) {\n\
                   let len = get_u128_be(buf).unwrap();\n\
                   // bf-taint: allow(taint_alloc, taint_auth): fixture for multi-rule coverage\n\
                   let v: Vec<u8> = Vec::with_capacity(len as usize);\n\
                   drop(v);\n\
                   // bf-taint: allow(taint_auth, taint_alloc): fixture for multi-rule coverage\n\
                   if admitted.holds(len) {}\n\
               }\n";
    let out = taint_check(&[
        ("crates/rpc/src/codec.rs", WIRE_DECODE),
        ("crates/devmgr/src/worker.rs", src),
    ]);
    assert!(
        out.iter().all(|d| !d.rule.starts_with("taint_")),
        "both rules at both sites are exempt: {out:?}"
    );
    assert!(
        out.iter().all(|d| d.rule != "directive"),
        "the directives themselves are well-formed: {out:?}"
    );
}

/// A baselined taint finding that stops firing (the flow was fixed) is
/// reported stale, so the baseline shrinks in the same PR as the fix.
#[test]
fn fixed_taint_finding_makes_its_baseline_entry_stale() {
    let stale_key =
        "taint_auth|crates/devmgr/src/session.rs|resolve_payload|auth:holds:digest".to_string();
    let gated = baseline::gate(&[], std::slice::from_ref(&stale_key));
    assert_eq!(gated.stale, vec![stale_key]);
    assert_eq!(gated.suppressed, 0);
}
