//! Tier-1 conformance gate: the whole workspace must pass `bf-lint`.
//!
//! This runs the same engine as `cargo run -p bf-lint` in-process, so a
//! plain `cargo test` fails with file:line diagnostics whenever a crate
//! reintroduces a panic site, an `std::sync` lock, a wall-clock read, a
//! lock-order inversion, a wildcard arm on a protocol enum, an unbounded
//! channel on the hot path, or an unjustified payload byte copy in a
//! datapath module.

use bf_lint::{check_source, run, LOCK_HIERARCHY, RULES};

/// Walks up from the test binary's cwd to the workspace root (the
/// directory holding the `[workspace]` manifest).
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).expect("read Cargo.toml");
            if text.contains("[workspace]") {
                return dir;
            }
        }
        assert!(dir.pop(), "no workspace root above the test cwd");
    }
}

#[test]
fn workspace_passes_bf_lint() {
    let report = run(&workspace_root()).expect("bf-lint scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "bf-lint found {} violation(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Fixture battery for the `unbounded_channel` rule: the workspace gate
/// above only proves the tree is clean *today*; these prove the rule
/// would actually catch a regression.
#[test]
fn unbounded_channel_rule_fires_on_library_fixtures() {
    assert!(RULES.contains(&"unbounded_channel"));
    let fixture = "use crossbeam::channel::unbounded;\n\
                   pub fn hot_path() {\n    let (tx, rx) = unbounded();\n}\n";
    let out = check_source("crates/x/src/lib.rs", fixture);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "unbounded_channel");
    assert_eq!(out[0].line, 3, "the construction fires, not the import");
}

#[test]
fn unbounded_channel_rule_respects_the_allowlist() {
    let justified = "pub fn watch() {\n    \
                     // bf-lint: allow(unbounded_channel): cold control path\n    \
                     let (tx, rx) = unbounded();\n}\n";
    assert!(
        check_source("crates/x/src/lib.rs", justified).is_empty(),
        "a justified directive exempts the site"
    );
    // Bounded construction is the sanctioned form.
    let bounded = "pub fn hot_path() {\n    let (tx, rx) = bounded(64);\n}\n";
    assert!(check_source("crates/x/src/lib.rs", bounded).is_empty());
    // Test code may buffer freely.
    let test_path = "fn harness() {\n    let (tx, rx) = unbounded();\n}\n";
    assert!(
        check_source("crates/x/tests/harness.rs", test_path).is_empty(),
        "tests/ paths are exempt"
    );
}

/// Fixture battery for the `payload_copy` rule: copies on the zero-copy
/// datapath must be deliberate, counted, and justified.
#[test]
fn payload_copy_rule_fires_in_datapath_modules() {
    assert!(RULES.contains(&"payload_copy"));
    let fixture = "pub fn stage(payload: &Payload) -> Vec<u8> {\n    \
                   payload.to_vec()\n}\n";
    let out = check_source("crates/rpc/src/codec.rs", fixture);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "payload_copy");
    assert_eq!(out[0].line, 2);
    // Clones of payload-named values fire too — a hidden deep copy before
    // the buffers became refcounted.
    let clone = "pub fn enqueue(data: &DataRef) {\n    push(data.clone());\n}\n";
    let out = check_source("crates/devmgr/src/session.rs", clone);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "payload_copy");
}

#[test]
fn payload_copy_rule_scopes_and_allowlist() {
    // The same code outside the datapath module list is untouched.
    let fixture = "pub fn stage(payload: &Payload) -> Vec<u8> {\n    \
                   payload.to_vec()\n}\n";
    assert!(check_source("crates/x/src/lib.rs", fixture).is_empty());
    // A justified directive exempts a deliberate, counted copy.
    let justified = "pub fn cow(bytes: &Bytes) -> Vec<u8> {\n    \
                     // bf-lint: allow(payload_copy): copy-on-write, counted\n    \
                     bytes.to_vec()\n}\n";
    assert!(check_source("crates/fpga/src/memory.rs", justified).is_empty());
    // Refcount bumps are the sanctioned alias form.
    let shared = "pub fn enqueue(data: &DataRef) {\n    push(data.share());\n}\n";
    assert!(check_source("crates/devmgr/src/session.rs", shared).is_empty());
}

#[test]
fn lock_hierarchy_is_declared() {
    // The static rule and the runtime tracker consume the same table; an
    // accidentally emptied hierarchy would silently disable both.
    assert!(
        LOCK_HIERARCHY.len() >= 4,
        "lock hierarchy suspiciously small: {LOCK_HIERARCHY:?}"
    );
    assert!(LOCK_HIERARCHY.contains(&"board"));
}
