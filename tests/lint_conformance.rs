//! Tier-1 conformance gate: the whole workspace must pass `bf-lint`.
//!
//! This runs the same engine as `cargo run -p bf-lint` in-process, so a
//! plain `cargo test` fails with file:line diagnostics whenever a crate
//! reintroduces a panic site, an `std::sync` lock, a wall-clock read, a
//! lock-order inversion, or a wildcard arm on a protocol enum.

use bf_lint::{run, LOCK_HIERARCHY};

/// Walks up from the test binary's cwd to the workspace root (the
/// directory holding the `[workspace]` manifest).
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).expect("read Cargo.toml");
            if text.contains("[workspace]") {
                return dir;
            }
        }
        assert!(dir.pop(), "no workspace root above the test cwd");
    }
}

#[test]
fn workspace_passes_bf_lint() {
    let report = run(&workspace_root()).expect("bf-lint scan");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "bf-lint found {} violation(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lock_hierarchy_is_declared() {
    // The static rule and the runtime tracker consume the same table; an
    // accidentally emptied hierarchy would silently disable both.
    assert!(
        LOCK_HIERARCHY.len() >= 4,
        "lock hierarchy suspiciously small: {LOCK_HIERARCHY:?}"
    );
    assert!(LOCK_HIERARCHY.contains(&"board"));
}
