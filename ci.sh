#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite, conformance.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> bf-lint"
cargo run -q --release -p bf-lint -- --json

echo "ci.sh: all gates passed"
