#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite, conformance.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# Workspace lints are deny-level for clippy::unwrap_used (tests exempt via
# clippy.toml); the full-target pass keeps benches and examples honest too.
echo "==> cargo clippy"
cargo clippy -q --workspace --all-targets

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# Transport/event-loop crates again, serialized: surfaces ordering and
# shutdown races that only reproduce without inter-test parallelism.
echo "==> cargo test (transport crates, single-threaded)"
cargo test -q -p bf-rpc -p bf-devmgr -p bf-remote -- --test-threads=1

# Conformance + interprocedural flow + trust-boundary taint passes plus
# the wire-schema drift gate, all gated on the checked-in baseline:
# pre-existing accepted findings don't block, NEW findings fail (exit 1)
# with call-chain witnesses (for taint: the wire-source → sink flow);
# stale baseline entries only warn. A renumbered/removed wire tag, or a
# new tag without a regenerated wire-schema.json, fails here too. The
# JSON report is kept as a CI artifact.
echo "==> bf-lint (baseline-gated, report at target/lint-report.json)"
mkdir -p target
cargo run -q --release -p bf-lint -- --json | tee target/lint-report.json

# Deterministic schedule exploration: the bounded transport, poller,
# device-manager event loop, shm, and device-memory cores under the bf-race
# model scheduler. --nocapture surfaces the explored-schedule count per
# model so CI logs show the interleaving coverage each run bought.
echo "==> bf-race model suite (deterministic schedule exploration)"
cargo test -q -p bf-race --features model -- --nocapture

# Datapath copy-accounting smoke: the small-size ladder must reproduce the
# archived per-round-trip copy counts exactly (wall-clock is informational;
# only the deterministic copy fields are compared).
echo "==> datapath bench (smoke + archive check)"
cargo run -q --release -p bf-bench --bin datapath -- --smoke --check experiments/BENCH_datapath.json

# Gateway batching smoke: the open-loop sweep subset must reproduce the
# archived deterministic rows exactly, and batched peak throughput must
# stay strictly above unbatched (the headline batching win).
echo "==> gateway bench (smoke + archive check)"
cargo run -q --release -p bf-bench --bin gateway -- --smoke --check experiments/BENCH_gateway.json

# Production-day scale smoke: the small ladder point (100 nodes / 1k
# functions, full fault battery) must reproduce the archived counters and
# the FNV-1a trace digest exactly — the deterministic-replay certificate
# for the control-plane hot paths (ready-list poller, sharded metrics,
# coalesced watch delivery).
echo "==> scale bench (smoke + archive check)"
cargo run -q --release -p bf-bench --bin scale -- --smoke --check experiments/BENCH_scale.json

# Payload-cache smoke: the hot + churn points must reproduce the archived
# wire-byte/hit/miss/eviction accounting exactly, and the hot-set
# wire-bytes-per-request reduction must stay at or above the 5x floor.
echo "==> cache bench (smoke + archive check)"
cargo run -q --release -p bf-bench --bin cache -- --smoke --check experiments/BENCH_cache.json

# Federation smoke: both 100-node points (1 and 16 shards) must reproduce
# the archived placement/outcome/contention counters and trace digests
# exactly, keep the allocation-quality floor (configured+warm share of
# placements), and keep the 16-shard max per-lock span at least 4x below
# the single-registry baseline.
echo "==> federation bench (smoke + archive check)"
cargo run -q --release -p bf-bench --bin federation -- --smoke --check experiments/BENCH_federation.json

# Virtual-time conformance: the data-path refactor must never move the
# paper's Fig. 4(a) numbers — regenerate and require byte-identical JSON.
echo "==> fig4a virtual-time check"
cargo run -q --release -p bf-bench --bin fig4a > /dev/null
cmp target/experiments/fig4a.json experiments/fig4a.json

echo "ci.sh: all gates passed"
