#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite, conformance.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# Transport/event-loop crates again, serialized: surfaces ordering and
# shutdown races that only reproduce without inter-test parallelism.
echo "==> cargo test (transport crates, single-threaded)"
cargo test -q -p bf-rpc -p bf-devmgr -p bf-remote -- --test-threads=1

echo "==> bf-lint"
cargo run -q --release -p bf-lint -- --json

echo "ci.sh: all gates passed"
