//! Offline stand-in for the `proptest` API surface this workspace uses.
//!
//! Property tests sample strategies with a fixed-seed PRNG and run each
//! case through the test body; failures panic with the case number.
//! Differences from the real crate, acceptable for this workspace:
//!
//! * **no shrinking** — a failing case reports its inputs via the panic
//!   message (`prop_assert!` formats them) but is not minimized;
//! * **no persisted failure seeds** — runs are deterministic anyway
//!   because the seed is fixed;
//! * **`&str` strategies ignore the regex** — every call site uses
//!   `".*"`, so arbitrary short strings satisfy the intended contract.
//!
//! The supported combinators are the ones the workspace calls: ranges,
//! tuples, [`strategy::Just`], [`prop_oneof!`], `prop_map`,
//! [`collection::vec`], [`arbitrary::any`], and
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.

pub mod test_runner {
    //! Test-case plumbing: the PRNG, the error type, the config.

    use std::fmt;

    /// Deterministic PRNG (xoshiro256**, fixed seed) driving all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// A generator with the crate's fixed seed: every run of a test
        /// binary samples identical cases.
        pub fn deterministic() -> Self {
            Self::with_seed(0x5eed_cafe_f00d_d00d)
        }

        /// A generator with an explicit seed.
        pub fn with_seed(seed: u64) -> Self {
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                state: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }

        /// Uniform value in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected by `prop_assume!` and should not count.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// An assumption rejection.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }

        /// Whether this is a rejection rather than a failure.
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 48 keeps `cargo test` quick
            // while still exploring the space (runs are deterministic, so
            // more cases only add coverage, not flake protection).
            ProptestConfig { cases: 48 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::ops::Range;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core is [`Strategy::sample`]; the combinators carry
    /// `Self: Sized` so `dyn Strategy<Value = V>` works.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Type-erases the strategy so heterogeneous strategies with the
        /// same `Value` can live in one collection (see `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// The `prop_oneof!` combinator: samples one of several strategies
    /// uniformly.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as u128).wrapping_add(v) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    /// String strategy: the real crate interprets the pattern as a regex;
    /// this stand-in ignores it (every call site uses `".*"`) and yields
    /// short alphanumeric strings, including the empty string.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            const ALPHABET: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
            let len = rng.below(12) as usize;
            (0..len)
                .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char)
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xd800) as u32).unwrap_or('a')
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prelude {
    //! The glob import every property-test module starts with.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(20).max(1000),
                    "proptest: too many rejected cases"
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Err(e) if e.is_reject() => continue,
                    ::std::result::Result::Err(e) => {
                        panic!("proptest case #{} failed: {}", __attempts, e)
                    }
                    ::std::result::Result::Ok(()) => __accepted += 1,
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    (config = ($config:expr);) => {};
}

/// Samples uniformly from one of several strategies producing the same
/// value type. Weighted arms (`w => strat`) are not supported — no call
/// site in this workspace uses them.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)*);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Rejects the current case (it does not count toward `cases`) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in 10u64..20) {
            prop_assert!((10..20).contains(&v));
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u32..10, 0u32..10),
            s in ".*",
            arr in crate::collection::vec(any::<u8>(), 1..5),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(s.len() < 12);
            prop_assert!(!arr.is_empty() && arr.len() < 5);
        }

        #[test]
        fn oneof_yields_every_arm_eventually(v in prop_oneof![
            Just(1u8),
            Just(2u8),
            (0u8..1).prop_map(|_| 3u8),
        ]) {
            prop_assert!((1..=3).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_limits_cases(_v in 0u8..255) {
            // Runs exactly 7 accepted cases; nothing to assert beyond
            // the macro handling the config prefix.
        }
    }

    proptest! {
        #[test]
        fn assume_rejects_without_failing(v in 0u8..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
