//! Offline stand-in for the `crossbeam` API surface this workspace uses.
//!
//! Only `crossbeam::channel` is provided: a multi-producer multi-consumer
//! channel with the crossbeam type vocabulary (`Sender`/`Receiver` both
//! `Clone`, disconnection when the counterpart side is fully dropped).
//! It is implemented as a `Mutex<VecDeque>` plus two condvars, which is
//! slower than crossbeam's lock-free implementation but semantically
//! equivalent for this workspace, where all measured time is virtual.

pub mod channel {
    //! MPMC channels mirroring `crossbeam_channel`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        readable: Condvar,
        /// Signalled when capacity frees up or all receivers disconnect.
        writable: Condvar,
        cap: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    ///
    /// Unlike crossbeam, `cap == 0` (rendezvous) is not supported and is
    /// treated as capacity 1; no caller in this workspace uses it.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel. Cloning yields another producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if state.items.len() >= cap => {
                        state = self
                            .shared
                            .writable
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.readable.notify_one();
            Ok(())
        }

        /// Whether the queue currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .items
                .is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .items
                .len()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    /// The receiving half of a channel. Cloning yields another consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the queue is drained and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .readable
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives a message, giving up after `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
        /// [`RecvTimeoutError::Disconnected`] if the channel is drained
        /// and closed.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .shared
                    .readable
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
                if result.timed_out() && state.items.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Receives a message if one is already queued.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if the queue is empty,
        /// [`TryRecvError::Disconnected`] if it is empty and closed.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.writable.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Whether the queue currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .items
                .is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .items
                .len()
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.receivers -= 1;
            let last = state.receivers == 0;
            drop(state);
            if last {
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).expect("send");
            tx.send(2).expect("send");
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_surfaces_on_both_sides() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));

            let (tx, rx) = unbounded::<u32>();
            tx.send(1).expect("send");
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn try_recv_is_non_blocking() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(9).expect("send");
            assert_eq!(rx.try_recv(), Ok(9));
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn bounded_blocks_until_capacity_frees() {
            let (tx, rx) = bounded(1);
            tx.send(1).expect("send");
            let t = std::thread::spawn(move || tx.send(2).expect("send second"));
            assert_eq!(rx.recv(), Ok(1));
            t.join().expect("sender finishes");
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).expect("send");
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            t.join().expect("producer finishes");
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
