//! Offline stand-in for the `bytes` API surface this workspace uses.
//!
//! [`Bytes`] is an `Arc<Vec<u8>>` plus a window, so clones and
//! `split_to`/`slice` are cheap and zero-copy like the real crate.
//! [`BytesMut`] is a growable `Vec<u8>`. The [`Buf`]/[`BufMut`] traits
//! carry the cursor-style accessors the wire codec in `bf-rpc` relies on.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read-side cursor over a byte container.
pub trait Buf {
    /// Bytes left between the cursor and the end of the container.
    fn remaining(&self) -> usize;

    /// The readable contiguous slice starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Moves the cursor forward by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte and advances.
    ///
    /// # Panics
    ///
    /// Panics on underflow, like the real crate.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16` and advances.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64` and advances.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32` and advances.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64` and advances.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies `dst.len()` bytes to `dst` and advances.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side cursor over a growable byte container.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A cheaply cloneable, contiguous, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied here; the real crate borrows it, but
    /// no caller in this workspace depends on zero-copy statics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Takes another reference to the same bytes — an alias for `clone`
    /// that reads as a refcount bump, never a byte copy.
    pub fn share(&self) -> Bytes {
        self.clone()
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window of this buffer sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copies the readable window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Recovers the backing `Vec` without copying when this handle is the
    /// sole owner and its window spans the whole allocation; otherwise
    /// returns `self` back so the caller can fall back to a counted copy.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the storage is shared or the window is a
    /// strict sub-slice.
    pub fn try_into_unique_vec(self) -> Result<Vec<u8>, Bytes> {
        if self.start != 0 || self.end != self.data.len() {
            return Err(self);
        }
        match Arc::try_unwrap(self.data) {
            Ok(vec) => Ok(vec),
            Err(data) => {
                let end = self.end;
                Err(Bytes {
                    data,
                    start: self.start,
                    end,
                })
            }
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_f32_le(1.5);
        buf.put_slice(b"abc");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 8);
        assert_eq!(bytes.get_u8(), 7);
        assert!((bytes.get_f32_le() - 1.5).abs() < f32::EPSILON);
        assert_eq!(bytes.remaining(), 3);
        let head = bytes.split_to(2);
        assert_eq!(head.as_ref(), b"ab");
        assert_eq!(bytes.as_ref(), b"c");
    }

    #[test]
    fn slice_shares_storage() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = bytes.slice(1..4);
        assert_eq!(mid.as_ref(), &[2, 3, 4]);
        assert_eq!(mid.slice(1..).as_ref(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut bytes = Bytes::from(vec![1]);
        bytes.advance(2);
    }

    #[test]
    fn unique_full_window_recovers_the_vec() {
        let bytes = Bytes::from(vec![1, 2, 3]);
        assert_eq!(bytes.try_into_unique_vec(), Ok(vec![1, 2, 3]));
    }

    #[test]
    fn shared_or_sliced_buffers_are_returned_intact() {
        let bytes = Bytes::from(vec![1, 2, 3]);
        let other = bytes.clone();
        let back = bytes.try_into_unique_vec().expect_err("shared");
        assert_eq!(back, other);
        drop(other);
        let sliced = back.slice(1..);
        let back = sliced.try_into_unique_vec().expect_err("sub-window");
        assert_eq!(back.as_ref(), &[2, 3]);
    }
}
