//! Offline stand-in for the `criterion` API surface the bench targets
//! use. Each benchmark runs its closure for a handful of iterations and
//! prints a coarse mean wall-clock time — enough to execute `cargo bench`
//! end to end without the real crate's statistics. Bench results in this
//! repository are *virtual-time* figures printed by the `bf-bench`
//! binaries; these wall-clock numbers only indicate harness cost.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export position matches the real crate.
pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 3;
const MEASURE_ITERS: u32 = 10;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.total / bencher.iters
    } else {
        Duration::ZERO
    };
    println!("bench {label}: {mean:?}/iter ({} iters)", bencher.iters);
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += MEASURE_ITERS;
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id of the form `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a benchmark group function, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran > 0);
    }
}
