//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` facade without `syn`/`quote`, by walking the raw
//! `proc_macro::TokenStream`. Supports the shapes this workspace derives:
//!
//! * named-field structs (with `#[serde(skip)]` and
//!   `#[serde(skip_serializing_if = "path")]` field attributes),
//! * tuple/newtype structs,
//! * unit structs,
//! * enums (unit, named-field, and tuple variants; externally tagged),
//! * lifetime-only generics (e.g. `struct ChromeEvent<'a> { ... }`).
//!
//! Anything richer produces a `compile_error!` naming the limitation, so
//! unsupported shapes fail loudly at the derive site instead of
//! serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` facade trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => render_serialize(&item),
        Err(msg) => error(&msg),
    }
    .parse()
    .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}"))
}

/// Derives the vendored `serde::Deserialize` facade trait (a marker in
/// this offline stand-in; no call site performs typed deserialization).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => render_deserialize(&item),
        Err(msg) => error(&msg),
    }
    .parse()
    .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}"))
}

fn error(msg: &str) -> String {
    format!("compile_error!({msg:?});")
}

struct Item {
    name: String,
    /// Raw generics text including angle brackets (e.g. `<'a>`), or empty.
    generics: String,
    body: Body,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Field {
    name: String,
    skip: bool,
    skip_if: Option<String>,
}

fn parse(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };

    // Generics: capture `<...>` verbatim; only lifetime params supported.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for tt in tokens.by_ref() {
                let text = tt.to_string();
                if let TokenTree::Punct(ref p) = tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ':' => {
                            return Err(format!(
                                "serde_derive stand-in: type `{name}` has bounded generic \
                                 parameters; only lifetime-only generics are supported"
                            ))
                        }
                        _ => {}
                    }
                }
                generics.push_str(&text);
                // A lone `'` begins a lifetime; a space after it would
                // split the token (`' a` is not a lifetime).
                if text != "'" {
                    generics.push(' ');
                }
                if depth == 0 {
                    break;
                }
            }
        }
    }

    let body = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    Ok(Item {
        name,
        generics,
        body,
    })
}

/// Parses `#[serde(...)]` field attributes out of a brace-group stream and
/// returns the fields in declaration order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();

    'fields: loop {
        let mut skip = false;
        let mut skip_if = None;

        // Field attributes.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    let group = match tokens.next() {
                        Some(TokenTree::Group(g)) => g,
                        other => return Err(format!("malformed attribute: {other:?}")),
                    };
                    parse_serde_attr(group.stream(), &mut skip, &mut skip_if)?;
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }

        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type up to a top-level comma, tracking angle-bracket
        // depth so `HashMap<String, f64>` stays one field.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(ref p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field {
            name,
            skip,
            skip_if,
        });
    }

    Ok(fields)
}

/// Recognizes `#[serde(skip)]` and `#[serde(skip_serializing_if = "..")]`
/// inside one attribute group; other attributes are ignored.
fn parse_serde_attr(
    stream: TokenStream,
    skip: &mut bool,
    skip_if: &mut Option<String>,
) -> Result<(), String> {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return Ok(()), // not a serde attribute (e.g. a doc comment)
    }
    let inner = match tokens.next() {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return Ok(()),
    };
    let mut inner = inner.into_iter();
    while let Some(tt) = inner.next() {
        let TokenTree::Ident(ident) = tt else {
            continue;
        };
        match ident.to_string().as_str() {
            "skip" | "skip_serializing" => *skip = true,
            "skip_serializing_if" => {
                let _eq = inner.next();
                match inner.next() {
                    Some(TokenTree::Literal(lit)) => {
                        let raw = lit.to_string();
                        *skip_if = Some(raw.trim_matches('"').to_string());
                    }
                    other => {
                        return Err(format!(
                            "skip_serializing_if expects a string literal, found {other:?}"
                        ))
                    }
                }
            }
            other => {
                return Err(format!(
                    "serde_derive stand-in: unsupported serde attribute `{other}`"
                ))
            }
        }
    }
    Ok(())
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for tt in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Variant attributes / doc comments.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() != '#' {
                break;
            }
            tokens.next();
            tokens.next();
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                VariantFields::Named(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                tokens.next();
                VariantFields::Tuple(count_tuple_fields(inner))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn impl_header(item: &Item, trait_path: &str) -> String {
    if item.generics.is_empty() {
        format!("impl {} for {}", trait_path, item.name)
    } else {
        format!(
            "impl {} {} for {} {}",
            item.generics, trait_path, item.name, item.generics
        )
    }
}

fn render_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut out = String::from("__s.begin_map();\n");
            for field in fields {
                if field.skip {
                    continue;
                }
                let emit = format!(
                    "__s.map_key({name:?});\n::serde::Serialize::serialize(&self.{name}, __s);\n",
                    name = field.name
                );
                match &field.skip_if {
                    Some(path) => out.push_str(&format!(
                        "if !{path}(&self.{name}) {{\n{emit}}}\n",
                        name = field.name
                    )),
                    None => out.push_str(&emit),
                }
            }
            out.push_str("__s.end_map();");
            out
        }
        Body::TupleStruct(0) | Body::UnitStruct => "__s.emit_null();".to_string(),
        Body::TupleStruct(1) => "::serde::Serialize::serialize(&self.0, __s);".to_string(),
        Body::TupleStruct(n) => {
            let mut out = format!("__s.begin_seq({n});\n");
            for i in 0..*n {
                out.push_str(&format!("::serde::Serialize::serialize(&self.{i}, __s);\n"));
            }
            out.push_str("__s.end_seq();");
            out
        }
        Body::Enum(variants) => {
            // Externally tagged, like stock serde: unit variants are bare
            // strings, data variants are single-key maps keyed by name.
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let ty = &item.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("{ty}::{vname} => __s.emit_str({vname:?}),\n")
                        }
                        VariantFields::Named(fields) => {
                            let pat: String =
                                fields.iter().map(|f| format!("{}, ", f.name)).collect();
                            let mut emit = String::new();
                            for f in fields {
                                if f.skip {
                                    continue;
                                }
                                let one = format!(
                                    "__s.map_key({name:?});\n\
                                     ::serde::Serialize::serialize({name}, __s);\n",
                                    name = f.name
                                );
                                match &f.skip_if {
                                    Some(path) => emit.push_str(&format!(
                                        "if !{path}({name}) {{\n{one}}}\n",
                                        name = f.name
                                    )),
                                    None => emit.push_str(&one),
                                }
                            }
                            format!(
                                "{ty}::{vname} {{ {pat} }} => {{\n\
                                 __s.begin_map();\n\
                                 __s.map_key({vname:?});\n\
                                 __s.begin_map();\n\
                                 {emit}\
                                 __s.end_map();\n\
                                 __s.end_map();\n\
                                 }}\n"
                            )
                        }
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let pat = binds.join(", ");
                            let inner = if *n == 1 {
                                "::serde::Serialize::serialize(__f0, __s);\n".to_string()
                            } else {
                                let mut out = format!("__s.begin_seq({n});\n");
                                for b in &binds {
                                    out.push_str(&format!(
                                        "::serde::Serialize::serialize({b}, __s);\n"
                                    ));
                                }
                                out.push_str("__s.end_seq();\n");
                                out
                            };
                            format!(
                                "{ty}::{vname}({pat}) => {{\n\
                                 __s.begin_map();\n\
                                 __s.map_key({vname:?});\n\
                                 {inner}\
                                 __s.end_map();\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{header} {{\n fn serialize(&self, __s: &mut dyn ::serde::Serializer) {{\n{body}\n}}\n}}",
        header = impl_header(item, "::serde::Serialize"),
    )
}

fn render_deserialize(item: &Item) -> String {
    let (params, name, args) = if item.generics.is_empty() {
        ("<'de>".to_string(), item.name.clone(), String::new())
    } else {
        // Splice 'de in front of the type's own (lifetime-only) params.
        let inner = item.generics.trim().trim_start_matches('<').to_string();
        (
            format!("<'de, {inner}"),
            item.name.clone(),
            item.generics.clone(),
        )
    };
    format!("impl {params} ::serde::Deserialize<'de> for {name} {args} {{}}")
}
