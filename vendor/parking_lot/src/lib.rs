//! Offline stand-in for the `parking_lot` API surface this workspace uses.
//!
//! The build environment has no network access and no crates.io cache, so
//! the real `parking_lot` cannot be downloaded. This crate re-implements
//! the subset of its API the workspace depends on — `Mutex`, `RwLock`,
//! `Condvar` and their guards, all with parking_lot semantics (no lock
//! poisoning, `lock()` returns the guard directly) — on top of `std::sync`.
//!
//! Functional differences from the real crate (fairness, inline fast
//! paths, `send_guard`) do not matter for this workspace: all timing is
//! virtual (`bf_model::VirtualClock`), so lock implementation performance
//! never leaks into measured results.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive with the `parking_lot` API: `lock()`
/// returns the guard directly and poisoning is ignored.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` so [`Condvar::wait`] can temporarily relinquish the
/// underlying std guard by value; the option is `None` only inside that
/// window, never observable by callers.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard invariant: only vacated inside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard invariant: only vacated inside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with the `parking_lot` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with the `parking_lot` API: `wait` takes
/// `&mut MutexGuard` instead of consuming the guard.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard
            .inner
            .take()
            .expect("guard invariant: only vacated inside Condvar::wait");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard
            .inner
            .take()
            .expect("guard invariant: only vacated inside Condvar::wait");
        let (g, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one blocked waiter. Returns whether a thread was woken
    /// (always `false` here: std does not report it; parking_lot does,
    /// but no caller in this workspace consumes the value).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        false
    }

    /// Wakes all blocked waiters. Returns the woken count (always 0 here;
    /// see [`Condvar::notify_one`]).
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().expect("waiter exits");
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
