//! Offline stand-in for the `serde_json` API surface this workspace uses:
//! [`Value`], [`from_str`], [`to_string`]/[`to_string_pretty`], [`json!`]
//! and [`to_value`], built on the vendored push-based `serde` facade.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Serialize, Serializer};

/// The map type behind [`Value::Object`]. A `BTreeMap`, so object keys
/// serialize in sorted order and output is deterministic.
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The number as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
    }
}

/// A parsed or built JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Field access; missing keys and non-objects yield `Null`, like the
    /// real crate.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Element access; out-of-range and non-arrays yield `Null`.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|v| v.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(f64::from(*other))
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl Serialize for Value {
    fn serialize(&self, s: &mut dyn Serializer) {
        match self {
            Value::Null => s.emit_null(),
            Value::Bool(b) => s.emit_bool(*b),
            Value::Number(Number::PosInt(v)) => s.emit_u64(*v),
            Value::Number(Number::NegInt(v)) => s.emit_i64(*v),
            Value::Number(Number::Float(v)) => s.emit_f64(*v),
            Value::String(v) => s.emit_str(v),
            Value::Array(items) => {
                s.begin_seq(items.len());
                for item in items {
                    item.serialize(s);
                }
                s.end_seq();
            }
            Value::Object(map) => {
                s.begin_map();
                for (k, v) in map {
                    s.map_key(k);
                    v.serialize(s);
                }
                s.end_map();
            }
        }
    }
}

// ---- building Values from Serialize types ------------------------------

enum Frame {
    Seq(Vec<Value>),
    Map(Map<String, Value>, Option<String>),
}

/// A [`Serializer`] that assembles a [`Value`] tree.
#[derive(Default)]
struct ValueBuilder {
    stack: Vec<Frame>,
    result: Option<Value>,
}

impl ValueBuilder {
    fn push(&mut self, v: Value) {
        match self.stack.last_mut() {
            None => self.result = Some(v),
            Some(Frame::Seq(items)) => items.push(v),
            Some(Frame::Map(map, key)) => {
                let key = key.take().unwrap_or_default();
                map.insert(key, v);
            }
        }
    }
}

impl Serializer for ValueBuilder {
    fn emit_null(&mut self) {
        self.push(Value::Null);
    }
    fn emit_bool(&mut self, v: bool) {
        self.push(Value::Bool(v));
    }
    fn emit_u64(&mut self, v: u64) {
        self.push(Value::Number(Number::PosInt(v)));
    }
    fn emit_i64(&mut self, v: i64) {
        if v >= 0 {
            self.push(Value::Number(Number::PosInt(v as u64)));
        } else {
            self.push(Value::Number(Number::NegInt(v)));
        }
    }
    fn emit_f64(&mut self, v: f64) {
        self.push(Value::Number(Number::Float(v)));
    }
    fn emit_str(&mut self, v: &str) {
        self.push(Value::String(v.to_string()));
    }
    fn begin_seq(&mut self, len: usize) {
        self.stack.push(Frame::Seq(Vec::with_capacity(len)));
    }
    fn end_seq(&mut self) {
        match self.stack.pop() {
            Some(Frame::Seq(items)) => self.push(Value::Array(items)),
            _ => self.push(Value::Null),
        }
    }
    fn begin_map(&mut self) {
        self.stack.push(Frame::Map(Map::new(), None));
    }
    fn map_key(&mut self, key: &str) {
        if let Some(Frame::Map(_, pending)) = self.stack.last_mut() {
            *pending = Some(key.to_string());
        }
    }
    fn end_map(&mut self) {
        match self.stack.pop() {
            Some(Frame::Map(map, _)) => self.push(Value::Object(map)),
            _ => self.push(Value::Null),
        }
    }
}

/// Converts any [`Serialize`] type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    let mut builder = ValueBuilder::default();
    value.serialize(&mut builder);
    builder.result.unwrap_or(Value::Null)
}

// ---- rendering ----------------------------------------------------------

/// Serialization/parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            // Match serde_json: floats always carry a decimal point or
            // exponent so they re-parse as floats.
            let text = format!("{v}");
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // serde_json renders non-finite floats as null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

/// Renders a value as compact JSON.
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors the real signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), None, 0);
    Ok(out)
}

/// Renders a value as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible in this stand-in; the `Result` mirrors the real signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), Some(2), 0);
    Ok(out)
}

// ---- parsing ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed by any caller;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = text.chars().next().ok_or_else(|| self.error("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Value::Number(Number::Float(v)))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::Number(Number::PosInt(v)))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::Number(Number::NegInt(v)))
        } else {
            let v: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Value::Number(Number::Float(v)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

/// Builds a [`Value`] with JSON-literal syntax.
///
/// Supports the shapes this workspace writes: `null`, object and array
/// literals whose values are single-token expressions or nested literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($body:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_object_munch!(map, $($body)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Object-body muncher for [`json!`]: peels one `key : value` pair off the
/// front, delegating value accumulation to [`json_value_munch!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_munch {
    ($map:ident,) => {};
    ($map:ident, $key:tt : $($rest:tt)*) => {
        $crate::json_value_munch!($map, $key, [], $($rest)*)
    };
}

/// Accumulates value tokens until a top-level comma (commas nested in
/// groups are single token trees and pass through untouched).
#[doc(hidden)]
#[macro_export]
macro_rules! json_value_munch {
    ($map:ident, $key:tt, [$($val:tt)*], , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::json!($($val)*));
        $crate::json_object_munch!($map, $($rest)*)
    };
    ($map:ident, $key:tt, [$($val:tt)*],) => {
        $map.insert(($key).to_string(), $crate::json!($($val)*));
    };
    ($map:ident, $key:tt, [$($val:tt)*], $next:tt $($rest:tt)*) => {
        $crate::json_value_munch!($map, $key, [$($val)* $next], $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = json!({ "a": [1, 2.5, "x"], "b": null, "c": true });
        let text = to_string_pretty(&v).expect("render");
        let back = from_str(&text).expect("parse");
        assert_eq!(back, v);
        assert_eq!(back["a"][1], 2.5);
        assert_eq!(back["a"][2], "x");
        assert!(back["b"].is_null());
        assert_eq!(back["c"].as_bool(), Some(true));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let text = to_string(&Value::Number(Number::Float(1000.0))).expect("render");
        assert_eq!(text, "1000.0");
        assert_eq!(from_str("1000.0").expect("parse"), 1000.0);
    }

    #[test]
    fn integers_render_without_decimal() {
        assert_eq!(to_string(&7u64).expect("render"), "7");
        assert_eq!(to_string(&-3i64).expect("render"), "-3");
    }

    #[test]
    fn strings_escape() {
        let text = to_string(&"a\"b\\c\nd").expect("render");
        assert_eq!(text, r#""a\"b\\c\nd""#);
        assert_eq!(from_str(&text).expect("parse"), "a\"b\\c\nd");
    }

    #[test]
    fn missing_keys_index_to_null() {
        let v = json!({ "x": 1 });
        assert!(v["nope"].is_null());
        assert!(v["x"]["deeper"].is_null());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("1 2").is_err());
    }
}
