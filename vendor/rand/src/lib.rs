//! Offline stand-in for the `rand` API surface this workspace uses.
//!
//! Provides `rngs::StdRng` (xoshiro256**, seeded through splitmix64),
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! (`gen`, `gen_range`, `gen_bool`). The stream differs from the real
//! crate's ChaCha-based `StdRng`, which is fine for this workspace: the
//! simulations only require that a given seed replays identically, not
//! any particular stream.

use std::ops::Range;

/// Core random source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random source constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random from 64 bits, mirroring the real
/// crate's `Standard` distribution for the types this workspace draws.
pub trait Standard: Sized {
    /// Maps 64 uniform bits to a uniform value of `Self`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for u8 {
    fn from_bits(bits: u64) -> u8 {
        (bits >> 56) as u8
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, like the real crate.
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $ty
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::from_bits_standard(rng.next_u64())
    }
}

trait F64Helper {
    fn from_bits_standard(bits: u64) -> f64;
}

impl F64Helper for f64 {
    fn from_bits_standard(bits: u64) -> f64 {
        <f64 as Standard>::from_bits(bits)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value of `T` (for `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Namespaces mirroring the real crate layout.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical way to seed xoshiro.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn streams_differ_across_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
