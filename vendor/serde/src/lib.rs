//! Offline stand-in for the `serde` facade this workspace uses.
//!
//! The real serde cannot be downloaded in this build environment, so this
//! crate provides a deliberately small, push-based serialization model:
//! a [`Serialize`] type walks itself into a `&mut dyn` [`Serializer`],
//! which builds whatever output format it wants (the vendored
//! `serde_json` builds its `Value` tree this way). [`Deserialize`] is a
//! marker trait — no call site in this workspace performs typed
//! deserialization; parsing goes through `serde_json::Value`.
//!
//! The derive macros (`features = ["derive"]`) come from the vendored
//! `serde_derive` and target exactly these traits.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A push-based output sink. Implementations build a document from the
/// emit/begin/end calls a [`Serialize`] type makes in declaration order.
pub trait Serializer {
    /// Emits a null/unit value.
    fn emit_null(&mut self);
    /// Emits a boolean.
    fn emit_bool(&mut self, v: bool);
    /// Emits an unsigned integer.
    fn emit_u64(&mut self, v: u64);
    /// Emits a signed integer.
    fn emit_i64(&mut self, v: i64);
    /// Emits a floating-point number.
    fn emit_f64(&mut self, v: f64);
    /// Emits a string.
    fn emit_str(&mut self, v: &str);
    /// Opens a sequence of `len` elements.
    fn begin_seq(&mut self, len: usize);
    /// Closes the innermost open sequence.
    fn end_seq(&mut self);
    /// Opens a key/value map.
    fn begin_map(&mut self);
    /// Declares the key of the next emitted value in the open map.
    fn map_key(&mut self, key: &str);
    /// Closes the innermost open map.
    fn end_map(&mut self);
}

/// Types that can push themselves into a [`Serializer`].
pub trait Serialize {
    /// Walks `self` into the sink.
    fn serialize(&self, s: &mut dyn Serializer);
}

/// Marker for deserializable types. Typed deserialization is not part of
/// this offline stand-in; `#[derive(Deserialize)]` compiles (so shared
/// type definitions keep their derives) but only documents intent.
pub trait Deserialize<'de>: Sized {}

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self, s: &mut dyn Serializer) {
                s.emit_u64(*self as u64);
            }
        }
    )*};
}

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self, s: &mut dyn Serializer) {
                s.emit_i64(*self as i64);
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.emit_f64(f64::from(*self));
    }
}

impl Serialize for f64 {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.emit_f64(*self);
    }
}

impl Serialize for bool {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.emit_bool(*self);
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.emit_str(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.emit_str(self);
    }
}

impl Serialize for char {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.emit_str(&self.to_string());
    }
}

impl Serialize for () {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.emit_null();
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut dyn Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, s: &mut dyn Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut dyn Serializer) {
        match self {
            None => s.emit_null(),
            Some(v) => v.serialize(s),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.begin_seq(self.len());
        for item in self {
            item.serialize(s);
        }
        s.end_seq();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut dyn Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut dyn Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.begin_seq(2);
        self.0.serialize(s);
        self.1.serialize(s);
        s.end_seq();
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.begin_seq(3);
        self.0.serialize(s);
        self.1.serialize(s);
        self.2.serialize(s);
        s.end_seq();
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self, s: &mut dyn Serializer) {
        s.begin_map();
        for (k, v) in self {
            s.map_key(k);
            v.serialize(s);
        }
        s.end_map();
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn serialize(&self, s: &mut dyn Serializer) {
        // Sort for deterministic output; simulation artifacts are diffed.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        s.begin_map();
        for (k, v) in entries {
            s.map_key(k);
            v.serialize(s);
        }
        s.end_map();
    }
}
