#![forbid(unsafe_code)]

//! # BlastFunction — FPGA-as-a-Service for accelerated serverless computing
//!
//! A from-scratch Rust reproduction of *"BlastFunction: an FPGA-as-a-Service
//! system for Accelerated Serverless Computing"* (Bacis, Brondolin,
//! Santambrogio — DATE 2020): a distributed FPGA **time-sharing** system
//! that lets microservices and serverless functions execute OpenCL kernels
//! on shared boards *without changing their host code*.
//!
//! This facade crate re-exports the whole system; each subsystem also
//! stands alone:
//!
//! | Module | Paper component |
//! |---|---|
//! | [`model`] | virtual time + calibrated cost models (PCIe, memcpy, gRPC, network) |
//! | [`fpga`] | the simulated Terasic DE5a-Net board (functional + timing) |
//! | [`ocl`] | the OpenCL-style host API with pluggable backends |
//! | [`rpc`] | wire codec, device-manager protocol, shm segments, completion queues |
//! | [`devmgr`] | the Device Manager (§III-B): sessions, tasks, central FIFO queue |
//! | [`remote`] | the Remote OpenCL Library (§III-A): router, event state machines |
//! | [`registry`] | the Accelerators Registry (§III-C): Algorithm 1, reconfiguration |
//! | [`cluster`] | the Kubernetes substrate: admission, watches, migration |
//! | [`serverless`] | the OpenFaaS gateway + `hey`-style load generation |
//! | [`workloads`] | Spector Sobel, Spector MM, PipeCNN/AlexNet |
//! | [`simkit`] / [`sim`] | deterministic DES engine + the Tables I–IV cluster scenarios |
//! | [`metrics`] | Prometheus substrate + FPGA time-utilization accounting |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use blastfunction::prelude::*;
//! use parking_lot::Mutex;
//!
//! # fn main() -> Result<(), ClError> {
//! // A board on worker node B with the Sobel bitstream available.
//! let mut catalog = BitstreamCatalog::new();
//! catalog.register(blastfunction::workloads::sobel::bitstream());
//! let board = Arc::new(Mutex::new(Board::new(
//!     BoardSpec::de5a_net(),
//!     *node_b().pcie(),
//! )));
//!
//! // Share it through a Device Manager and connect transparently.
//! let manager = DeviceManager::new(
//!     DeviceManagerConfig::standalone("fpga-b"),
//!     node_b(),
//!     board,
//!     catalog,
//! );
//! let mut router = Router::new();
//! router.add_manager(manager);
//! let device = router.connect(0, "sobel-fn", PathCosts::local_shm(), VirtualClock::new())?;
//!
//! // Ordinary OpenCL host code, unchanged:
//! let ctx = device.create_context()?;
//! let program = ctx.build_program(blastfunction::workloads::sobel::SOBEL_BITSTREAM)?;
//! let kernel = program.create_kernel(blastfunction::workloads::sobel::SOBEL_KERNEL)?;
//! # let _ = (program, kernel);
//! # Ok(())
//! # }
//! ```

pub use bf_cache as cache;
pub use bf_cluster as cluster;
pub use bf_devmgr as devmgr;
pub use bf_fpga as fpga;
pub use bf_metrics as metrics;
pub use bf_model as model;
pub use bf_ocl as ocl;
pub use bf_registry as registry;
pub use bf_remote as remote;
pub use bf_rpc as rpc;
pub use bf_serverless as serverless;
pub use bf_sim as sim;
pub use bf_simkit as simkit;
pub use bf_workloads as workloads;

/// The names most programs need, importable in one line.
pub mod prelude {
    pub use bf_cluster::{Cluster, InstanceTemplate};
    pub use bf_devmgr::{DeviceManager, DeviceManagerConfig, ReconfigPolicy};
    pub use bf_fpga::{Board, BoardSpec, Payload};
    pub use bf_model::{
        node_a, node_b, node_c, paper_cluster, DataPathKind, NodeId, VirtualClock, VirtualDuration,
        VirtualTime,
    };
    pub use bf_ocl::{
        ArgValue, Backend, BitstreamCatalog, ClError, ClResult, Device, EventStatus, NativeBackend,
        NdRange,
    };
    pub use bf_registry::{
        attach_placement, AllocationPolicy, DeviceQuery, PlacementService, Registry,
        ShardedRegistry,
    };
    pub use bf_remote::{RemoteBackend, Router};
    pub use bf_rpc::PathCosts;
    pub use bf_serverless::{
        table1_rates, BatchHandler, Batcher, ClosedLoopPacer, Completion, Gateway, HandlerError,
        Invocation, LoadLevel, OpenLoopPacer, SingleRequest, UseCase,
    };
    pub use bf_sim::{run_scenario, Deployment, ScenarioConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_importable() {
        use crate::prelude::*;
        let _clock = VirtualClock::new();
        let _nodes = paper_cluster();
        let _policy = AllocationPolicy::paper();
    }
}
