//! A minimal SHA-256 (FIPS 180-4), vendored std-only because the build
//! environment has no crates.io access.
//!
//! The payload cache substitutes resident bytes for a bare digest
//! reference, so the digest must be *collision-resistant*: with a
//! non-cryptographic hash (the original FNV-1a design) two distinct
//! same-length payloads with equal digests are trivially constructible,
//! and the manager would silently write the wrong bytes into a buffer.
//! Truncating SHA-256 to 128 bits keeps both the adversarial and the
//! birthday-bound accidental collision probability negligible at any
//! realistic fleet scale.

/// Round constants: fractional parts of the cube roots of the first 64
/// primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Initial hash state: fractional parts of the square roots of the first
/// 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// One compression round over a 64-byte block.
fn compress(h: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    // The first 16 schedule words are the block itself, big-endian.
    for (slot, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
        *slot = chunk.iter().fold(0u32, |acc, &b| (acc << 8) | u32::from(b));
    }
    for i in 16..64 {
        // bf-flow: allow(hot_panic): `i` ranges over 16..64 inside the
        // fixed 64-entry schedule — every index is in range by construction
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        // bf-flow: allow(hot_panic): same fixed-schedule bound as above
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        // bf-flow: allow(hot_panic): same fixed-schedule bound as above
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        // bf-flow: allow(hot_panic): `i < 64` indexes the 64-entry round
        // constant table and schedule — in range by construction
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
        *slot = slot.wrapping_add(v);
    }
}

/// SHA-256 of `data`.
pub(crate) fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = H0;
    let mut block = [0u8; 64];
    let mut chunks = data.chunks_exact(64);
    for chunk in &mut chunks {
        block.copy_from_slice(chunk);
        compress(&mut h, &block);
    }
    // Padding (§5.1.1): 0x80, zeros, then the 64-bit big-endian message
    // bit length; spills into a second block when fewer than 9 bytes of
    // the last one remain. Written iterator-style: the remainder is
    // shorter than a block by construction, so nothing can go out of
    // range — and nothing here can panic the hot path.
    let rem = chunks.remainder();
    block = [0u8; 64];
    for (dst, &src) in block.iter_mut().zip(rem) {
        *dst = src;
    }
    if let Some(slot) = block.get_mut(rem.len()) {
        *slot = 0x80;
    }
    if rem.len() + 1 + 8 > 64 {
        compress(&mut h, &block);
        block = [0u8; 64];
    }
    let len_bits = ((data.len() as u64).wrapping_mul(8)).to_be_bytes();
    for (dst, &src) in block.iter_mut().skip(56).zip(&len_bits) {
        *dst = src;
    }
    compress(&mut h, &block);
    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: [u8; 32]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // 56 bytes: the padding spills into a second block.
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn block_boundary_lengths() {
        // One full block of zeros (the well-known Merkle zero hash).
        assert_eq!(
            hex(sha256(&[0u8; 64])),
            "f5a5fd42d16a20302798ef6ed309979b43003d2320d9f0e8ea9831a92759fb4b"
        );
        // 63 / 64 / 65 bytes of 'a': every padding split around the
        // block boundary.
        assert_eq!(
            hex(sha256(&[b'a'; 63])),
            "7d3e74a05d7db15bce4ad9ec0658ea98e3f06eeecf16b4c6fff2da457ddc2f34"
        );
        assert_eq!(
            hex(sha256(&[b'a'; 64])),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
        assert_eq!(
            hex(sha256(&[b'a'; 65])),
            "635361c48bb9eab14198e76ea8ab7f1a41685d6ad62aa9146d301d4f17eb0ae0"
        );
    }
}
