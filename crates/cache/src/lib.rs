//! **bf-cache**: the content-addressed cache layer on the zero-copy path.
//!
//! Payloads are keyed by their content digest — SHA-256 truncated to 128
//! bits, so a digest hit can substitute cached bytes without a
//! collision-resistance caveat — and held as
//! refcounted [`Bytes`], so every cache operation is a refcount bump:
//! [`PayloadCache::get`] hands out a snapshot that stays valid after the
//! entry is evicted or invalidated (the reader holds its own reference),
//! and [`PayloadCache::insert`] adopts the receiver's decoded frame slice
//! without copying. A hot function's inputs therefore move over the wire
//! per-*eviction* instead of per-*request*: the rpc layer sends
//! `DataRef::Digest` when the receiver already holds the content and the
//! receiver rewrites it to the cached bytes.
//!
//! Two resident tiers share one lock and one budget view:
//!
//! - the **host tier** holds payload bytes (in practice slices of shm
//!   segments or received frames) under a size-bounded clock/second-chance
//!   eviction policy;
//! - the **device tier** tracks which `(buffer, offset)` device regions
//!   already hold which content, so a repeated write of identical bytes
//!   to the same region can skip the PCIe DMA entirely. It is
//!   invalidated wholesale on reprogramming (the board wipes DDR) and
//!   per-buffer on free or kernel writes.
//!
//! Both ends of a connection bound their bookkeeping with a
//! [`DigestTracker`]: the client tracks digests the peer is believed to
//! hold, and the manager tracks, per session, digests that session
//! itself shipped inline — cache *storage* is shared across sessions,
//! but a hit is only authorized against content the requesting session
//! already proved it possesses, so a guessed digest can never disclose
//! another tenant's resident bytes (the dedup side-channel). Trackers
//! may run stale (the peer evicts independently); the wire protocol's
//! `CacheMiss` NACK makes that safe — a stale digest send degrades to one
//! extra round trip, never to wrong bytes.
//!
//! All synchronization goes through the `bf_race::sync` facade so the
//! model checker can drive insert/evict against live snapshot readers;
//! the lock fields are ranked in `bf_devmgr::lock_order::HIERARCHY`
//! (`payload_cache`, `digest_track`).

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use serde::Serialize;

use bf_race::sync::Mutex;

mod sha256;

/// The content digest of a byte string: the cache key and the value
/// carried by `DataRef::Digest` on the wire (16 fixed bytes).
///
/// This is the first 128 bits (big-endian) of the payload's SHA-256. A
/// digest hit substitutes cached bytes for content the sender never
/// shipped on that request, so the digest must be collision-resistant —
/// a constructible (or birthday-bound accidental) collision between two
/// same-length payloads would make the manager silently stage the wrong
/// bytes. 128 truncated SHA-256 bits keep that probability negligible at
/// fleet scale; a non-cryptographic hash would not.
pub fn content_digest(bytes: &[u8]) -> u128 {
    let d = sha256::sha256(bytes);
    d.iter()
        .take(16)
        .fold(0u128, |acc, &b| (acc << 8) | u128::from(b))
}

/// A point-in-time reading of one cache's counters. Every field is
/// cumulative since construction except the two `resident` gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Host-tier lookups that found the content resident.
    pub hits: u64,
    /// Host-tier lookups that missed.
    pub misses: u64,
    /// Entries admitted to the host tier.
    pub insertions: u64,
    /// Entries evicted (clock policy) or invalidated.
    pub evictions: u64,
    /// Payload bytes that a digest hit kept off the wire.
    pub bytes_saved: u64,
    /// Device-tier hits: identical content already resident in the
    /// target region, PCIe DMA skipped.
    pub device_hits: u64,
    /// Payload bytes the device tier kept off the PCIe link.
    pub device_bytes_saved: u64,
    /// Bytes currently resident in the host tier.
    pub resident_bytes: u64,
    /// Entries currently resident in the host tier.
    pub resident_entries: u64,
}

impl CacheStats {
    /// Host-tier hit ratio over all lookups so far (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One host-tier entry: the refcounted bytes plus its clock bit.
struct Entry {
    bytes: Bytes,
    referenced: bool,
}

/// A device-tier residency record: `(digest, len)` known to occupy a
/// `(buffer, offset)` region since the last invalidation.
type DeviceRegion = (u64, u64);

struct CacheState {
    entries: HashMap<u128, Entry>,
    /// Clock hand order over digests; second chance via `referenced`.
    clock: VecDeque<u128>,
    resident_bytes: u64,
    device: HashMap<DeviceRegion, (u128, u64)>,
    stats: CacheStats,
}

/// The content-addressed payload cache: host tier + device-residency
/// tier behind one lock (`payload_cache` in the ranked hierarchy).
pub struct PayloadCache {
    capacity_bytes: u64,
    payload_cache: Mutex<CacheState>,
}

impl PayloadCache {
    /// A cache bounded to `capacity_bytes` of resident host-tier payload.
    pub fn new(capacity_bytes: u64) -> PayloadCache {
        PayloadCache {
            capacity_bytes,
            payload_cache: Mutex::new(CacheState {
                entries: HashMap::new(),
                clock: VecDeque::new(),
                resident_bytes: 0,
                device: HashMap::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// The configured host-tier budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Looks up content by digest. A hit returns a refcounted snapshot
    /// (a refcount bump, never a copy) that stays valid even if the
    /// entry is evicted before the reader finishes, and counts the
    /// entry's length as bytes kept off the wire.
    pub fn get(&self, digest: u128) -> Option<Bytes> {
        let mut state = self.payload_cache.lock();
        match state.entries.get_mut(&digest) {
            Some(entry) => {
                entry.referenced = true;
                let bytes = entry.bytes.clone();
                state.stats.hits += 1;
                state.stats.bytes_saved += bytes.len() as u64;
                Some(bytes)
            }
            None => {
                state.stats.misses += 1;
                None
            }
        }
    }

    /// Whether `digest` is resident, without touching the hit/miss
    /// counters or the clock bit.
    pub fn holds_digest(&self, digest: u128) -> bool {
        self.payload_cache.lock().entries.contains_key(&digest)
    }

    /// Admits `bytes` under `digest`, evicting clock-wise until the new
    /// entry fits. Adoption is a refcount bump. Returns `false` (and
    /// admits nothing) when the payload alone exceeds the budget or the
    /// digest is already resident.
    pub fn insert(&self, digest: u128, bytes: Bytes) -> bool {
        let len = bytes.len() as u64;
        if len > self.capacity_bytes {
            return false;
        }
        let mut state = self.payload_cache.lock();
        if let Some(entry) = state.entries.get_mut(&digest) {
            entry.referenced = true;
            return false;
        }
        while state.resident_bytes + len > self.capacity_bytes {
            if !evict_one(&mut state) {
                break;
            }
        }
        state.resident_bytes += len;
        state.stats.insertions += 1;
        state.clock.push_back(digest);
        state.entries.insert(
            digest,
            Entry {
                bytes,
                referenced: false,
            },
        );
        true
    }

    /// Records that the device region `(buffer, offset)` now holds
    /// content `(digest, len)`. Any previously tracked region of the
    /// same buffer that overlaps the new write is dropped first (the
    /// write clobbered it).
    pub fn note_device_resident(&self, buffer: u64, offset: u64, digest: u128, len: u64) {
        let mut state = self.payload_cache.lock();
        drop_overlapping(&mut state, buffer, offset, len);
        // bf-flow: allow(hot_alloc): one entry per non-overlapping
        // written span of a finite device buffer (`drop_overlapping`
        // enforces disjointness), so the map is bounded by device
        // memory over the smallest tracked payload.
        state.device.insert((buffer, offset), (digest, len));
    }

    /// Whether the device region `(buffer, offset)` already holds
    /// exactly `(digest, len)`. A hit counts the skipped PCIe bytes.
    pub fn device_resident(&self, buffer: u64, offset: u64, digest: u128, len: u64) -> bool {
        let mut state = self.payload_cache.lock();
        let hit = state.device.get(&(buffer, offset)) == Some(&(digest, len));
        if hit {
            state.stats.device_hits += 1;
            state.stats.device_bytes_saved += len;
        }
        hit
    }

    /// Forgets all device residency for `buffer` (freed, or written by a
    /// kernel launch).
    pub fn invalidate_buffer(&self, buffer: u64) {
        let mut state = self.payload_cache.lock();
        state.device.retain(|&(b, _), _| b != buffer);
    }

    /// Forgets the whole device tier: reprogramming wipes on-board DDR.
    pub fn invalidate_device(&self) {
        self.payload_cache.lock().device.clear();
    }

    /// Drops every entry in both tiers (node death / migration: the
    /// replacement holds none of this content). Outstanding snapshots
    /// handed out by [`get`](Self::get) remain valid.
    pub fn invalidate_all(&self) {
        let mut state = self.payload_cache.lock();
        let dropped = state.entries.len() as u64;
        state.entries.clear();
        state.clock.clear();
        state.resident_bytes = 0;
        state.device.clear();
        state.stats.evictions += dropped;
    }

    /// Reads the counters, with the resident gauges filled in.
    pub fn stats(&self) -> CacheStats {
        let state = self.payload_cache.lock();
        let mut stats = state.stats;
        stats.resident_bytes = state.resident_bytes;
        stats.resident_entries = state.entries.len() as u64;
        stats
    }

    /// Publishes the counters as `bf_cache_*` series labelled with the
    /// owning device.
    pub fn export_metrics(&self, registry: &bf_metrics::MetricsRegistry, device: &str) {
        let stats = self.stats();
        let labels: &[(&str, &str)] = &[("device", device)];
        let pairs: [(&str, u64); 8] = [
            ("bf_cache_hits_total", stats.hits),
            ("bf_cache_misses_total", stats.misses),
            ("bf_cache_evictions_total", stats.evictions),
            ("bf_cache_bytes_saved_total", stats.bytes_saved),
            ("bf_cache_device_hits_total", stats.device_hits),
            (
                "bf_cache_device_bytes_saved_total",
                stats.device_bytes_saved,
            ),
            ("bf_cache_resident_bytes", stats.resident_bytes),
            ("bf_cache_resident_entries", stats.resident_entries),
        ];
        for (name, value) in pairs {
            registry.gauge(name, labels).set(value as f64);
        }
    }
}

/// Advances the clock hand once: the first unreferenced entry is
/// evicted; referenced entries get their second chance. Returns `false`
/// when the tier is empty.
fn evict_one(state: &mut CacheState) -> bool {
    // Each entry is visited at most twice per call (reference bit
    // cleared on the first pass), so the loop terminates.
    for _ in 0..state.clock.len() * 2 {
        let Some(digest) = state.clock.pop_front() else {
            return false;
        };
        let entry = match state.entries.get_mut(&digest) {
            Some(e) => e,
            None => continue,
        };
        if entry.referenced {
            entry.referenced = false;
            state.clock.push_back(digest);
            continue;
        }
        let len = entry.bytes.len() as u64;
        state.entries.remove(&digest);
        state.resident_bytes = state.resident_bytes.saturating_sub(len);
        state.stats.evictions += 1;
        return true;
    }
    false
}

/// Drops device-tier records of `buffer` whose `[offset, offset+len)`
/// range intersects the incoming write.
fn drop_overlapping(state: &mut CacheState, buffer: u64, offset: u64, len: u64) {
    let end = offset.saturating_add(len);
    state
        .device
        .retain(|&(b, region_off), &mut (_, region_len)| {
            b != buffer || region_off >= end || region_off.saturating_add(region_len) <= offset
        });
}

/// The client-side mirror of a peer's admission: a bounded
/// clock-evicted set of digests the peer is believed to hold. Entries
/// may be stale (the peer evicts on its own schedule); the `CacheMiss`
/// NACK path calls [`forget`](Self::forget) and resends inline.
pub struct DigestTracker {
    max_entries: usize,
    digest_track: Mutex<TrackState>,
}

struct TrackState {
    known: HashMap<u128, bool>,
    clock: VecDeque<u128>,
}

impl DigestTracker {
    /// A tracker remembering at most `max_entries` digests.
    pub fn new(max_entries: usize) -> DigestTracker {
        DigestTracker {
            max_entries: max_entries.max(1),
            digest_track: Mutex::new(TrackState {
                known: HashMap::new(),
                clock: VecDeque::new(),
            }),
        }
    }

    /// Records that the peer was just sent (and therefore admitted)
    /// this content.
    pub fn note_sent(&self, digest: u128) {
        let mut state = self.digest_track.lock();
        if let Some(referenced) = state.known.get_mut(&digest) {
            *referenced = true;
            return;
        }
        while state.known.len() >= self.max_entries {
            let Some(old) = state.clock.pop_front() else {
                break;
            };
            match state.known.get_mut(&old) {
                Some(referenced) if *referenced => {
                    *referenced = false;
                    // bf-flow: allow(hot_alloc): second-chance requeue of a
                    // popped entry — the clock never exceeds `max_entries`
                    state.clock.push_back(old);
                }
                Some(_) => {
                    state.known.remove(&old);
                }
                None => {}
            }
        }
        // bf-flow: allow(hot_alloc): the eviction loop above just enforced
        // `known.len() < max_entries`, so both structures stay capped
        state.known.insert(digest, false);
        // bf-flow: allow(hot_alloc): same `max_entries` cap as the insert
        state.clock.push_back(digest);
    }

    /// Whether the peer is believed to hold this content.
    pub fn holds(&self, digest: u128) -> bool {
        let mut state = self.digest_track.lock();
        match state.known.get_mut(&digest) {
            Some(referenced) => {
                *referenced = true;
                true
            }
            None => false,
        }
    }

    /// Drops one digest: the peer NACKed it (evicted or invalidated).
    /// The clock entry goes too — otherwise a long-lived connection with
    /// frequent NACKs whose tracker never refills to capacity would
    /// accumulate stale clock entries without bound.
    pub fn forget(&self, digest: u128) {
        let mut state = self.digest_track.lock();
        if state.known.remove(&digest).is_some() {
            state.clock.retain(|d| *d != digest);
        }
    }

    /// Drops everything: the connection moved to a different peer.
    pub fn clear(&self) {
        let mut state = self.digest_track.lock();
        state.known.clear();
        state.clock.clear();
    }

    /// Digests currently tracked.
    pub fn len(&self) -> usize {
        self.digest_track.lock().known.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(fill: u8, len: usize) -> Bytes {
        Bytes::from(vec![fill; len])
    }

    #[test]
    fn digest_is_truncated_sha256() {
        // First 16 bytes of the FIPS 180-4 vectors (big-endian).
        assert_eq!(
            content_digest(b""),
            0xe3b0_c442_98fc_1c14_9afb_f4c8_996f_b924
        );
        assert_eq!(
            content_digest(b"abc"),
            0xba78_16bf_8f01_cfea_4141_40de_5dae_2223
        );
        assert_ne!(content_digest(b"ab"), content_digest(b"ba"));
    }

    #[test]
    fn get_is_a_refcounted_snapshot_not_a_copy() {
        let cache = PayloadCache::new(1 << 20);
        let bytes = payload(0xA5, 4096);
        let digest = content_digest(&bytes);
        assert!(cache.insert(digest, bytes.clone()));
        let before = bf_metrics::copy_counters();
        let snap = cache.get(digest).expect("hit");
        let delta = bf_metrics::copy_counters().since(before);
        assert_eq!(snap, bytes);
        assert_eq!(delta.bytes, 0, "a cache hit must not copy payload bytes");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        assert_eq!(stats.bytes_saved, 4096);
    }

    #[test]
    fn snapshot_survives_eviction_and_invalidation() {
        let cache = PayloadCache::new(8192);
        let hot = payload(1, 4096);
        let digest = content_digest(&hot);
        cache.insert(digest, hot.clone());
        let snap = cache.get(digest).expect("hit");
        // Two more inserts force the hot entry out of an 8 KiB budget.
        cache.insert(content_digest(&payload(2, 4096)), payload(2, 4096));
        cache.insert(content_digest(&payload(3, 4096)), payload(3, 4096));
        cache.invalidate_all();
        assert!(cache.get(digest).is_none());
        assert_eq!(snap, hot, "live snapshot must outlive its entry");
    }

    #[test]
    fn clock_eviction_keeps_the_referenced_entry() {
        let cache = PayloadCache::new(8192);
        let hot = payload(1, 4096);
        let cold = payload(2, 4096);
        let (hot_d, cold_d) = (content_digest(&hot), content_digest(&cold));
        cache.insert(hot_d, hot);
        cache.insert(cold_d, cold);
        // Touch the hot entry so its reference bit protects it.
        cache.get(hot_d).expect("hit");
        cache.insert(content_digest(&payload(3, 4096)), payload(3, 4096));
        assert!(cache.holds_digest(hot_d), "second chance must protect hot");
        assert!(
            !cache.holds_digest(cold_d),
            "cold entry is the clock victim"
        );
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_payloads_are_refused() {
        let cache = PayloadCache::new(16);
        let big = payload(9, 64);
        assert!(!cache.insert(content_digest(&big), big));
        assert_eq!(cache.stats().resident_entries, 0);
    }

    #[test]
    fn device_tier_hits_exact_regions_and_drops_overlaps() {
        let cache = PayloadCache::new(1 << 20);
        cache.note_device_resident(7, 0, 111, 256);
        assert!(cache.device_resident(7, 0, 111, 256));
        assert!(!cache.device_resident(7, 0, 222, 256), "digest mismatch");
        assert!(!cache.device_resident(7, 64, 111, 256), "offset mismatch");
        // An overlapping write clobbers the tracked region.
        cache.note_device_resident(7, 128, 333, 64);
        assert!(!cache.device_resident(7, 0, 111, 256));
        assert!(cache.device_resident(7, 128, 333, 64));
        // Other buffers are untouched; buffer invalidation clears them.
        cache.note_device_resident(8, 0, 444, 16);
        cache.invalidate_buffer(7);
        assert!(!cache.device_resident(7, 128, 333, 64));
        assert!(cache.device_resident(8, 0, 444, 16));
        cache.invalidate_device();
        assert!(!cache.device_resident(8, 0, 444, 16));
        let stats = cache.stats();
        assert_eq!(stats.device_hits, 3);
        assert_eq!(stats.device_bytes_saved, 256 + 64 + 16);
    }

    #[test]
    fn tracker_is_bounded_and_forgets_on_nack() {
        let tracker = DigestTracker::new(2);
        tracker.note_sent(1);
        tracker.note_sent(2);
        assert!(tracker.holds(1) && tracker.holds(2));
        tracker.note_sent(3);
        assert_eq!(tracker.len(), 2, "bounded at two entries");
        tracker.forget(2);
        assert!(!tracker.holds(2));
        tracker.clear();
        assert!(tracker.is_empty());
    }

    #[test]
    fn forget_purges_the_clock_entry_too() {
        let tracker = DigestTracker::new(8);
        // NACK-forget every digest in a loop without ever filling the
        // tracker to capacity: the clock must not accumulate stale
        // entries (it is only compacted under capacity pressure).
        for digest in 0..1_000u128 {
            tracker.note_sent(digest);
            tracker.forget(digest);
        }
        assert!(tracker.is_empty());
        assert_eq!(tracker.digest_track.lock().clock.len(), 0);
    }

    #[test]
    fn stats_serialize_for_archival() {
        let cache = PayloadCache::new(64);
        let json = serde_json::to_string(&cache.stats()).expect("serialize");
        assert!(json.contains("\"bytes_saved\""));
    }
}
