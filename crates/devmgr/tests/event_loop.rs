//! Event-loop battery: fairness, slow-consumer disconnection and shutdown
//! behaviour of the Device Manager's single dispatcher thread.
//!
//! These scenarios need real client threads hammering a live manager —
//! the in-crate unit tests drive the protocol single-threaded.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bf_devmgr::{DeviceManager, DeviceManagerConfig};
use bf_fpga::{Board, BoardSpec};
use bf_model::{node_b, PcieGeneration, PcieLink, VirtualTime};
use bf_ocl::BitstreamCatalog;
use bf_rpc::{PathCosts, Request, RequestEnvelope, Response, TransportError};
use parking_lot::Mutex;

fn manager(config: DeviceManagerConfig) -> DeviceManager {
    let board = Arc::new(Mutex::new(Board::new(
        BoardSpec::de5a_net(),
        PcieLink::new(PcieGeneration::Gen3, 8),
    )));
    DeviceManager::new(config, node_b(), board, BitstreamCatalog::new())
}

fn req(endpoint: &bf_devmgr::ManagerEndpoint, tag: u64, body: Request) -> RequestEnvelope {
    RequestEnvelope {
        tag,
        client: endpoint.client,
        sent_at: VirtualTime::ZERO,
        body,
    }
}

/// Spins (wall clock, host-side only) until `cond` holds or 5s elapse.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    // bf-lint: allow(wall_clock): bounds host-side waiting on the real
    // event-loop thread; the virtual timeline is untouched.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        // bf-lint: allow(wall_clock): same host-side liveness deadline.
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn flooding_client_cannot_starve_a_victim_session() {
    let mgr = manager(DeviceManagerConfig::standalone("fpga-fair"));
    let flooder = mgr.connect("flooder", PathCosts::local_grpc());
    let victim = mgr.connect("victim", PathCosts::local_grpc());

    // The flooder pushes 400 requests as fast as the loop accepts them,
    // with a drainer thread keeping its completion stream from stalling
    // the experiment on the flooder's own backpressure.
    let drainer = {
        let channel = flooder.channel.clone();
        std::thread::spawn(move || {
            let mut drained = 0u32;
            while drained < 400 {
                match channel.recv_timeout(Duration::from_secs(5)) {
                    Ok(_) => drained += 1,
                    Err(e) => panic!("flooder completions dried up: {e}"),
                }
            }
            drained
        })
    };
    let flood = {
        let endpoint = flooder.clone();
        std::thread::spawn(move || {
            for tag in 0..400 {
                endpoint
                    .channel
                    .send(&req(&endpoint, tag, Request::CreateContext))
                    .expect("manager alive");
            }
        })
    };

    // The victim runs sequential round trips *while* the flood is in
    // flight; round-robin polling and the frame batch cap bound how long
    // each one can be shadowed.
    for tag in 0..50 {
        victim
            .channel
            .send(&req(&victim, tag, Request::CreateContext))
            .expect("send");
        let resp = victim
            .channel
            .recv_timeout(Duration::from_secs(5))
            .expect("victim served during the flood");
        assert_eq!(resp.tag, tag);
        assert!(matches!(resp.body, Response::Handle { .. }));
    }

    flood.join().expect("flooder");
    assert_eq!(drainer.join().expect("drainer"), 400);
    drop(flooder);
    drop(victim);
    wait_until("sessions to be reaped", || mgr.connected_clients() == 0);
}

#[test]
fn slow_consumer_is_disconnected_instead_of_buffered_without_bound() {
    let mgr = manager(
        DeviceManagerConfig::standalone("fpga-slow")
            .with_channel_depth(4)
            .with_max_pending_responses(8),
    );
    let slow = mgr.connect("slow", PathCosts::local_grpc());
    assert_eq!(slow.channel.depth(), 4);

    // Never read a completion: 4 fill the bounded stream, up to 8 park in
    // the event loop, and the rest must get the session cut loose.
    for tag in 0..40 {
        if slow
            .channel
            .send(&req(&slow, tag, Request::CreateContext))
            .is_err()
        {
            break; // already force-closed mid-flood
        }
    }
    wait_until("the slow consumer to be disconnected", || {
        mgr.connected_clients() == 0
    });

    // The manager itself is unharmed: a fresh client gets served.
    let fresh = mgr.connect("fresh", PathCosts::local_grpc());
    fresh
        .channel
        .send(&req(&fresh, 1, Request::CreateContext))
        .expect("send");
    let resp = fresh
        .channel
        .recv_timeout(Duration::from_secs(5))
        .expect("served after the slow consumer was dropped");
    assert!(matches!(resp.body, Response::Handle { .. }));

    // The cut-off client observes Closed on both directions eventually.
    wait_until("the slow consumer to observe Closed", || {
        matches!(
            slow.channel.try_recv(),
            Err(TransportError::Closed) | Ok(Some(_))
        )
    });
    drop(fresh);
    wait_until("sessions to be reaped", || mgr.connected_clients() == 0);
}

#[test]
fn dropped_endpoints_are_reaped_without_a_disconnect_request() {
    let mgr = manager(DeviceManagerConfig::standalone("fpga-reap"));
    let endpoints: Vec<_> = (0..3)
        .map(|i| mgr.connect(&format!("fn-{i}"), PathCosts::local_grpc()))
        .collect();
    assert_eq!(mgr.connected_clients(), 3);
    // Each client proves liveness once, then vanishes without Disconnect.
    for (i, ep) in endpoints.iter().enumerate() {
        ep.channel
            .send(&req(ep, i as u64, Request::CreateContext))
            .expect("send");
        ep.channel
            .recv_timeout(Duration::from_secs(5))
            .expect("round trip");
    }
    drop(endpoints);
    // The request streams report Closed; the event loop reaps all three.
    wait_until("hangup-driven reaping", || mgr.connected_clients() == 0);

    // The loop keeps serving new sessions afterwards.
    let back = mgr.connect("returning", PathCosts::local_grpc());
    back.channel
        .send(&req(&back, 9, Request::CreateContext))
        .expect("send");
    assert!(matches!(
        back.channel
            .recv_timeout(Duration::from_secs(5))
            .expect("served")
            .body,
        Response::Handle { .. }
    ));
}

#[test]
fn graceful_disconnect_is_acked_before_the_session_is_reaped() {
    let mgr = manager(DeviceManagerConfig::standalone("fpga-bye"));
    let ep = mgr.connect("polite", PathCosts::local_grpc());
    ep.channel
        .send(&req(&ep, 1, Request::Disconnect))
        .expect("send");
    // The Ack is queued before the session starts closing, and buffered
    // frames are delivered before Closed surfaces.
    let resp = ep
        .channel
        .recv_timeout(Duration::from_secs(5))
        .expect("ack delivered");
    assert_eq!(resp.body, Response::Ack);
    wait_until("the acked session to be reaped", || {
        mgr.connected_clients() == 0
    });
}
