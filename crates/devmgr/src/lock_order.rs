//! Declared lock hierarchy and a debug-build held-lock tracker.
//!
//! The workspace has a small number of long-lived locks; deadlock freedom
//! rests on every thread acquiring them in one global order. That order is
//! declared once, here, in [`HIERARCHY`]: a thread may only acquire a lock
//! whose rank is *strictly greater* than every lock it already holds.
//!
//! Two enforcement layers consume this table:
//!
//! * **statically**, `bf-lint`'s `lock_order` rule imports [`HIERARCHY`]
//!   and flags source lines that acquire a lower-ranked lock while a
//!   higher-ranked guard is still live in the same function;
//! * **at runtime** (debug builds only), [`tracked`] wraps a
//!   `parking_lot::Mutex` acquisition with a thread-local rank check that
//!   panics on an out-of-order acquisition, catching orders the line
//!   scanner cannot see (cross-function nesting).
//!
//! Release builds compile the tracker away: [`tracked`] degrades to a plain
//! `lock()` with zero bookkeeping.

// bf-lint: allow(raw_sync): the tracker wraps the raw board lock, which is
// shared with non-instrumented crates and cannot move behind the facade
use parking_lot::{Mutex, MutexGuard};

/// The global lock-acquisition order, outermost first.
///
/// A thread holding the lock named at index `i` may only acquire locks at
/// indexes `> i`. Names refer to the *field* holding the lock; the table is
/// the single source of truth shared with `bf-lint`.
pub const HIERARCHY: &[&str] = &[
    // Serverless gateway deployment map (bf-serverless).
    "functions",
    // Per-function batcher queue + condvar (bf-serverless). The gateway
    // clones the batcher handle out of `functions` before submitting or
    // draining, but the nesting direction — deployment map, then one
    // function's queue — fixes the rank.
    "batch_state",
    // Autoscaler policy table (bf-serverless).
    "policies",
    // Federation shard membership + shard handles (bf-registry). Held
    // across a whole federated placement or rebalance, both of which
    // take shard registry locks (and `federation`) underneath — so it
    // outranks everything the placement path touches.
    "shard_map",
    // Federation instance→shard index and function catalog
    // (bf-registry). Acquired while `shard_map` is held, always between
    // shard operations — never with a shard's `registry` lock live.
    "federation",
    // Registry's cluster handle (bf-registry). Taken only for a clone;
    // ranks above `registry` because the cluster admission hook calls
    // back into `Registry::place_instance`.
    "cluster",
    // Registry state map (bf-registry). Held while placing instances,
    // which reads board views and bumps metrics — so it outranks both.
    "registry",
    // Cluster node/allocation tables (bf-cluster). Never held across the
    // admission callback (which re-enters the registry).
    "cluster_state",
    // Scale-harness placement table (bf-sim). Taken by the cluster
    // admission hook (which runs without `cluster_state` held) and for
    // point reads/writes in the harness; never held across another
    // acquisition.
    "placement",
    // The FPGA board behind a Device Manager (bf-devmgr / bf-fpga).
    "board",
    // Content-addressed payload cache: host tier + device-residency tier
    // (bf-cache). The worker consults the device tier while holding the
    // board lock, so it ranks below `board`; the session touches it with
    // nothing else held.
    "payload_cache",
    // Remote library's pending-operation map (bf-remote). Held across
    // completion dispatch, which touches shm segments and event state.
    "pending",
    // Digest trackers (bf-cache): the client-side mirror of the peer
    // cache's admission, and the manager's per-session hit-authorization
    // set. The client side is updated from the completion path while
    // `pending` is held, so it ranks below it; the session side is only
    // touched with no other lock held.
    "digest_track",
    // Remote backend's staging write cursor (bf-remote).
    "staging_cursor",
    // Remote backend's cached device info (bf-remote).
    "device_info",
    // OpenCL event/runtime state cells (bf-ocl).
    "state",
    // Shared-memory segment allocator + contents (bf-rpc). Store/read
    // record memcpy metrics while held, so it outranks the metric locks.
    "segment",
    // Metrics registry shard array (bf-metrics): one rank for all 32
    // shard locks — a thread holds at most one shard at a time.
    "shards",
    // Individual metric cells (bf-metrics).
    "value",
    // Histogram buckets (bf-metrics).
    "histogram",
    // Bounded transport frame queues (bf-rpc). Leaf: dropped before any
    // poller notification is raised.
    "frames",
    // Poller wakeup state: generation counter + ready list (bf-rpc).
    // Nothing in application code may be acquired while it is held.
    "wakeup",
    // The bf-race model scheduler's own state (bf-race). Strictly
    // innermost: taken inside every instrumented acquire/release.
    "race_sched",
];

/// Rank of a named lock in [`HIERARCHY`], if declared.
pub fn rank_of(name: &str) -> Option<usize> {
    HIERARCHY.iter().position(|&n| n == name)
}

#[cfg(debug_assertions)]
mod tracker {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks of locks currently held by this thread, in acquisition
        /// order.
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII token recording one tracked acquisition; dropping it releases
    /// the rank from the thread's held set.
    #[derive(Debug)]
    pub struct HeldLock {
        rank: usize,
    }

    /// Records acquisition of the lock named `name`, panicking if the
    /// thread already holds a lock of equal or greater rank.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not in [`super::HIERARCHY`] or when the
    /// acquisition violates the declared order — both are programming
    /// errors the debug build should surface immediately.
    pub fn acquire(name: &'static str) -> HeldLock {
        let rank = super::rank_of(name)
            // bf-flow: allow(hot_panic): deliberate fail-stop — an
            // undeclared lock is a programming error, not runtime input
            .unwrap_or_else(|| panic!("lock {name:?} is not declared in the lock hierarchy"));
        HELD.with(|held| {
            let held = held.borrow();
            if let Some(&top) = held.iter().max() {
                // bf-flow: allow(hot_panic): fail-stop enforcement is this
                // module's whole purpose; `top` indexes the static table
                assert!(
                    rank > top,
                    "lock-order violation: acquiring {name:?} (rank {rank}) while \
                     holding {:?} (rank {top}); declared order is {:?}",
                    super::HIERARCHY.get(top).copied().unwrap_or("?"),
                    super::HIERARCHY,
                );
            }
        });
        // bf-flow: allow(hot_alloc): the held set is bounded by the
        // hierarchy size — a thread cannot hold more locks than ranks
        HELD.with(|held| held.borrow_mut().push(rank));
        HeldLock { rank }
    }

    impl Drop for HeldLock {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&r| r == self.rank) {
                    held.remove(pos);
                }
            });
        }
    }
}

#[cfg(debug_assertions)]
pub use tracker::{acquire, HeldLock};

/// A mutex guard paired with its hierarchy bookkeeping token.
///
/// Field order matters: the guard drops (releasing the mutex) before the
/// token drops (clearing the rank), so the held set never understates what
/// the thread holds.
#[derive(Debug)]
pub struct TrackedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: tracker::HeldLock,
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Acquires `mutex` under the declared hierarchy name `name`.
///
/// In debug builds the acquisition is rank-checked against the thread's
/// currently held locks; in release builds this is exactly `mutex.lock()`.
pub fn tracked<'a, T>(mutex: &'a Mutex<T>, name: &'static str) -> TrackedGuard<'a, T> {
    #[cfg(debug_assertions)]
    let token = tracker::acquire(name);
    let _ = name;
    TrackedGuard {
        guard: mutex.lock(),
        #[cfg(debug_assertions)]
        _token: token,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_names_are_unique() {
        for (i, a) in HIERARCHY.iter().enumerate() {
            for b in &HIERARCHY[i + 1..] {
                assert_ne!(a, b, "duplicate lock name in hierarchy");
            }
        }
    }

    #[test]
    fn in_order_acquisition_is_allowed() {
        let board = Mutex::new(1u32);
        let shards = Mutex::new(2u32);
        let b = tracked(&board, "board");
        let s = tracked(&shards, "shards");
        assert_eq!(*b + *s, 3);
    }

    #[test]
    fn reacquisition_after_release_is_allowed() {
        let board = Mutex::new(0u32);
        let shards = Mutex::new(0u32);
        {
            let _s = tracked(&shards, "shards");
        }
        // `shards` released: taking the lower-ranked `board` is legal again.
        let _b = tracked(&board, "board");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn inverted_acquisition_panics() {
        let result = std::thread::Builder::new()
            .name("bf-lock-order-inversion".into())
            .spawn(|| {
                let shards = Mutex::new(0u32);
                let board = Mutex::new(0u32);
                let _s = tracked(&shards, "shards");
                // Inverted: `board` ranks below `shards` in HIERARCHY.
                let _b = tracked(&board, "board");
            })
            .expect("spawn probe thread")
            .join();
        assert!(
            result.is_err(),
            "inverted acquisition must panic in debug builds"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn undeclared_lock_name_panics() {
        let result = std::thread::Builder::new()
            .name("bf-lock-order-undeclared".into())
            .spawn(|| {
                let m = Mutex::new(0u32);
                let _g = tracked(&m, "no-such-lock");
            })
            .expect("spawn probe thread")
            .join();
        assert!(
            result.is_err(),
            "undeclared lock names must panic in debug builds"
        );
    }
}
