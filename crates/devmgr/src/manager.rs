//! The Device Manager service (paper §III-B, Fig. 3).

use std::sync::Arc;

use bf_cache::{CacheStats, PayloadCache};
use bf_fpga::Board;
use bf_metrics::MetricsRegistry;
use bf_model::{NodeId, NodeSpec, VirtualTime};
use bf_ocl::BitstreamCatalog;
use bf_rpc::{duplex_with_depth, ClientChannel, ClientId, PathCosts, Poller, ShmSegment, Waker};
// bf-lint: allow(raw_sync): control-plane channel between manager handles and the event loop; drained via the modeled waker, never blocked on
use crossbeam::channel::{bounded, Sender};
// bf-lint: allow(raw_sync): the board lock is shared with non-instrumented crates (bf-ocl, bf-registry) and serialized by the single event-loop thread
use parking_lot::Mutex;

use crate::sync::atomic::{AtomicU64, Ordering};

use crate::event_loop::{run_event_loop, Control};
use crate::lock_order;
use crate::session::SessionSeed;

/// Who may trigger a board reconfiguration through this manager.
///
/// In a full BlastFunction deployment the Accelerators Registry validates
/// reconfiguration requests (§III-C); standalone managers can simply allow
/// or deny them.
#[derive(Clone)]
pub enum ReconfigPolicy {
    /// Any client may reconfigure (standalone/dev deployments).
    Allow,
    /// Nobody may reconfigure through the client API (the registry drives
    /// reconfiguration out-of-band via [`DeviceManager::program`]).
    Deny,
    /// Ask a validator (the registry hook).
    Validate(Arc<dyn Fn(&ReconfigRequest) -> bool + Send + Sync>),
}

impl std::fmt::Debug for ReconfigPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigPolicy::Allow => write!(f, "ReconfigPolicy::Allow"),
            ReconfigPolicy::Deny => write!(f, "ReconfigPolicy::Deny"),
            ReconfigPolicy::Validate(_) => write!(f, "ReconfigPolicy::Validate(..)"),
        }
    }
}

/// A reconfiguration attempt submitted to the policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigRequest {
    /// Requesting client (function instance) name.
    pub client_name: String,
    /// Bitstream the client wants configured.
    pub bitstream: String,
    /// The device being reconfigured.
    pub device_id: String,
}

/// Configuration of one Device Manager.
#[derive(Debug, Clone)]
pub struct DeviceManagerConfig {
    /// Cluster-unique device id (e.g. `"fpga-b"`).
    pub device_id: String,
    /// Capacity of each client's shared-memory segment.
    pub shm_capacity: u64,
    /// Reconfiguration policy.
    pub reconfig_policy: ReconfigPolicy,
    /// Per-direction frame depth of each session's bounded channel.
    pub channel_depth: usize,
    /// Responses the event loop will park for one session whose completion
    /// stream is full before force-disconnecting it as a slow consumer.
    pub max_pending_responses: usize,
    /// Operations one session may stage on a single command queue before
    /// flushing; further enqueues fail with `OutOfResources`.
    pub max_queued_ops: usize,
    /// Host-tier budget of the content-addressed payload cache, in bytes.
    /// `0` (the default) disables caching entirely: sessions accept no
    /// `DataRef::Digest` references and admit nothing, keeping the
    /// archived timing/copy benchmarks byte-identical.
    pub payload_cache_capacity: u64,
}

impl DeviceManagerConfig {
    /// A standalone manager: 512 MiB shm segments, reconfiguration allowed,
    /// default channel depth and slow-consumer limit.
    pub fn standalone(device_id: impl Into<String>) -> Self {
        DeviceManagerConfig {
            device_id: device_id.into(),
            shm_capacity: 512 << 20,
            reconfig_policy: ReconfigPolicy::Allow,
            channel_depth: bf_rpc::DEFAULT_DEPTH,
            max_pending_responses: 1024,
            max_queued_ops: 4096,
            payload_cache_capacity: 0,
        }
    }

    /// Overrides the reconfiguration policy.
    pub fn with_policy(mut self, policy: ReconfigPolicy) -> Self {
        self.reconfig_policy = policy;
        self
    }

    /// Overrides the shared-memory segment capacity.
    pub fn with_shm_capacity(mut self, capacity: u64) -> Self {
        self.shm_capacity = capacity;
        self
    }

    /// Overrides the per-session channel depth (clamped to ≥ 1).
    pub fn with_channel_depth(mut self, depth: usize) -> Self {
        self.channel_depth = depth.max(1);
        self
    }

    /// Overrides the slow-consumer response limit.
    pub fn with_max_pending_responses(mut self, limit: usize) -> Self {
        self.max_pending_responses = limit;
        self
    }

    /// Overrides the per-queue staged-operation cap (clamped to ≥ 1).
    pub fn with_max_queued_ops(mut self, limit: usize) -> Self {
        self.max_queued_ops = limit.max(1);
        self
    }

    /// Enables the content-addressed payload cache with a host-tier
    /// budget of `capacity` bytes (`0` disables it).
    pub fn with_payload_cache(mut self, capacity: u64) -> Self {
        self.payload_cache_capacity = capacity;
        self
    }
}

pub(crate) struct Shared {
    pub config: DeviceManagerConfig,
    pub node: NodeSpec,
    pub board: Arc<Mutex<Board>>,
    pub catalog: BitstreamCatalog,
    pub metrics: MetricsRegistry,
    pub connected: AtomicU64,
    /// Content-addressed payload cache; `None` when disabled. Storage is
    /// shared by every session of this manager, but sessions only get
    /// hits on digests they themselves shipped inline (each session
    /// keeps its own admission tracker), so the shared store is not a
    /// cross-tenant disclosure channel.
    pub cache: Option<PayloadCache>,
}

/// What [`DeviceManager::connect`] hands to a client: everything the
/// Remote OpenCL Library needs to talk to this manager.
#[derive(Debug, Clone)]
pub struct ManagerEndpoint {
    /// The manager's device id.
    pub device_id: String,
    /// Node hosting the device.
    pub node: NodeId,
    /// Session id assigned to this client.
    pub client: ClientId,
    /// The gRPC-like connection (requests out, completion stream in).
    pub channel: ClientChannel,
    /// Shared-memory segment, when the shm data path is in use.
    pub shm: Option<ShmSegment>,
    /// The connection's cost profile.
    pub costs: PathCosts,
    /// Whether the manager runs a payload cache: the client may send
    /// `DataRef::Digest` references for content it has already shipped.
    /// Only content this very session shipped can hit — references to
    /// anything else NACK as `CacheMiss` exactly like a miss.
    pub cache: bool,
}

/// A Device Manager: fronts one FPGA board, multiplexing isolated client
/// sessions onto it through multi-operation tasks and a central FIFO
/// queue, all driven by a single event-loop thread polling every session's
/// bounded channel.
///
/// Cloning yields another handle to the same manager.
#[derive(Clone)]
pub struct DeviceManager {
    shared: Arc<Shared>,
    control_tx: Sender<Control>,
    waker: Waker,
    next_client: Arc<AtomicU64>,
}

impl DeviceManager {
    /// Starts a manager for `board` on `node`, spawning the event-loop
    /// thread that serves every session.
    pub fn new(
        config: DeviceManagerConfig,
        node: NodeSpec,
        board: Arc<Mutex<Board>>,
        catalog: BitstreamCatalog,
    ) -> Self {
        let (manager, event_loop) = Self::new_detached(config, node, board, catalog);
        std::thread::Builder::new()
            .name("bf-devmgr-events".to_string())
            .spawn(event_loop)
            // bf-lint: allow(panic): thread-spawn failure is OS resource
            // exhaustion at manager startup — no caller can recover.
            .expect("spawn device-manager event loop");
        manager
    }

    /// Like [`DeviceManager::new`], but hands the event loop back to the
    /// caller instead of spawning it. The manager is inert until the
    /// returned closure runs (on a thread of the caller's choosing); this
    /// is how `bf-race` model tests drive the loop on a model thread so
    /// every interleaving with client sessions is explored.
    pub fn new_detached(
        config: DeviceManagerConfig,
        node: NodeSpec,
        board: Arc<Mutex<Board>>,
        catalog: BitstreamCatalog,
    ) -> (Self, impl FnOnce() + Send + 'static) {
        let cache = (config.payload_cache_capacity > 0)
            .then(|| PayloadCache::new(config.payload_cache_capacity));
        let shared = Arc::new(Shared {
            config,
            node,
            board,
            catalog,
            metrics: MetricsRegistry::new(),
            connected: AtomicU64::new(0),
            cache,
        });
        let mut poller = Poller::new();
        let (wake_token, waker) = poller.add_waker();
        let (control_tx, control_rx) = bounded(64);
        let loop_shared = shared.clone();
        let event_loop = move || run_event_loop(loop_shared, control_rx, poller, wake_token);
        let manager = DeviceManager {
            shared,
            control_tx,
            waker,
            next_client: Arc::new(AtomicU64::new(1)),
        };
        (manager, event_loop)
    }

    /// The manager's device id.
    pub fn device_id(&self) -> &str {
        &self.shared.config.device_id
    }

    /// The node hosting the device.
    pub fn node(&self) -> &NodeSpec {
        &self.shared.node
    }

    /// The board behind the manager.
    pub fn board(&self) -> &Arc<Mutex<Board>> {
        &self.shared.board
    }

    /// The manager's metrics registry (what Prometheus would scrape).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// Prometheus text scrape of the manager's metrics.
    pub fn scrape(&self) -> String {
        self.refresh_gauges();
        self.shared.metrics.scrape()
    }

    /// Currently configured bitstream id.
    pub fn bitstream_id(&self) -> Option<String> {
        lock_order::tracked(&self.shared.board, "board")
            .bitstream_id()
            .map(str::to_string)
    }

    /// Number of connected client sessions.
    pub fn connected_clients(&self) -> u64 {
        self.shared.connected.load(Ordering::SeqCst)
    }

    /// FPGA time utilization since the start of the run: busy time over the
    /// board's current virtual horizon.
    pub fn utilization(&self) -> f64 {
        let board = lock_order::tracked(&self.shared.board, "board");
        let horizon = board.available_at();
        board.busy_tracker().utilization(VirtualTime::ZERO, horizon)
    }

    /// Utilization attributed to one function over `[from, to)`.
    pub fn utilization_of(&self, from: VirtualTime, to: VirtualTime, owner: &str) -> f64 {
        lock_order::tracked(&self.shared.board, "board")
            .busy_tracker()
            .utilization_of(from, to, owner)
    }

    /// Directly (re)programs the board — the registry-driven path, which
    /// bypasses the client-facing policy.
    ///
    /// # Errors
    ///
    /// Returns the unknown bitstream id when it is absent from the catalog.
    pub fn program(&self, bitstream: &str) -> Result<(), String> {
        let image = self
            .shared
            .catalog
            .get(bitstream)
            .ok_or_else(|| format!("unknown bitstream {bitstream:?}"))?;
        let mut board = lock_order::tracked(&self.shared.board, "board");
        if board.bitstream_id() != Some(bitstream) {
            let now = board.available_at();
            board.program(image, now, "registry");
            // Reprogramming wipes on-board DDR: forget the device tier.
            if let Some(cache) = &self.shared.cache {
                cache.invalidate_device();
            }
        }
        Ok(())
    }

    /// Counters of the content-addressed payload cache, when enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.shared.cache.as_ref().map(PayloadCache::stats)
    }

    /// Drops every payload-cache entry in both tiers — the node-death /
    /// migration invalidation hook. Outstanding zero-copy snapshots held
    /// by in-flight operations remain valid. A no-op when caching is
    /// disabled.
    pub fn invalidate_payload_cache(&self) {
        if let Some(cache) = &self.shared.cache {
            cache.invalidate_all();
        }
    }

    /// Opens a client session, registering it with the event loop, and
    /// returns the endpoint the Remote OpenCL Library connects with.
    ///
    /// The shared-memory data path is granted only when `costs` asks for it
    /// and the client is co-located (not cross-node), mirroring §III-B.
    pub fn connect(&self, client_name: &str, costs: PathCosts) -> ManagerEndpoint {
        let client = ClientId(self.next_client.fetch_add(1, Ordering::SeqCst));
        let (client_chan, server_chan) = duplex_with_depth(self.shared.config.channel_depth);
        let use_shm =
            costs.data_path() == bf_model::DataPathKind::SharedMemory && !costs.is_cross_node();
        let shm = use_shm.then(|| ShmSegment::new(self.shared.config.shm_capacity));
        self.shared.connected.fetch_add(1, Ordering::SeqCst);
        let seed = SessionSeed {
            server: server_chan,
            client,
            name: client_name.to_string(),
            costs,
            shm: shm.clone(),
        };
        if self
            .control_tx
            .send(Control::Register(Box::new(seed)))
            .is_err()
        {
            // The event loop is gone (should not happen while a manager
            // handle exists); the endpoint will observe Closed.
            self.shared.connected.fetch_sub(1, Ordering::SeqCst);
        } else {
            self.waker.wake();
        }
        ManagerEndpoint {
            device_id: self.shared.config.device_id.clone(),
            node: self.shared.node.id().clone(),
            client,
            channel: client_chan,
            shm,
            costs,
            cache: self.shared.cache.is_some(),
        }
    }

    fn refresh_gauges(&self) {
        let device = self.shared.config.device_id.clone();
        let util = self.utilization();
        self.shared
            .metrics
            .gauge("bf_fpga_utilization", &[("device", device.as_str())])
            .set(util);
        self.shared
            .metrics
            .gauge(
                "bf_manager_connected_clients",
                &[("device", device.as_str())],
            )
            .set(self.connected_clients() as f64);
        let board = lock_order::tracked(&self.shared.board, "board");
        self.shared
            .metrics
            .gauge("bf_fpga_busy_seconds", &[("device", device.as_str())])
            .set(board.busy_tracker().total_busy().as_secs_f64());
        self.shared
            .metrics
            .gauge("bf_fpga_reconfigurations", &[("device", device.as_str())])
            .set(board.reconfigurations() as f64);
        drop(board);
        if let Some(cache) = &self.shared.cache {
            cache.export_metrics(&self.shared.metrics, device.as_str());
        }
    }
}

impl std::fmt::Debug for DeviceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceManager")
            .field("device_id", &self.shared.config.device_id)
            .field("node", self.shared.node.id())
            .field("connected", &self.connected_clients())
            .finish()
    }
}
