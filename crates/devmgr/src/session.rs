//! Per-client session handling.
//!
//! Each connected client gets its own session thread and its own resource
//! pool — the isolation mechanism of §III-B: handles are session-scoped, so
//! a client can never name (let alone touch) another tenant's buffers,
//! kernels or queues.
//!
//! *Context & information methods* are answered synchronously by this
//! thread. *Command-queue methods* accumulate in the open task of the
//! target queue; `Flush`/`Finish` seal the task and push it onto the
//! manager's central queue.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use bf_fpga::{KernelArg, KernelInvocation};
use bf_model::VirtualTime;
use bf_rpc::{
    ClientId, ErrorCode, PathCosts, Request, RequestEnvelope, Response, ResponseEnvelope,
    ServerChannel, ShmSegment, WireArg,
};
use crossbeam::channel::Sender;

use crate::lock_order;
use crate::manager::{ReconfigPolicy, ReconfigRequest, Shared};
use crate::task::{Operation, Task};

pub(crate) struct SessionCtx {
    pub shared: Arc<Shared>,
    pub task_tx: Sender<Task>,
    pub server: ServerChannel,
    pub client: ClientId,
    pub name: String,
    pub costs: PathCosts,
    pub shm: Option<ShmSegment>,
}

#[derive(Debug, Default)]
struct KernelSlot {
    name: String,
    args: BTreeMap<u32, WireArg>,
}

#[derive(Default)]
struct SessionState {
    next_handle: u64,
    contexts: HashSet<u64>,
    programs: HashMap<u64, String>,
    kernels: HashMap<u64, KernelSlot>,
    buffers: HashMap<u64, (bf_fpga::BufferId, u64)>,
    queues: HashMap<u64, Vec<Operation>>,
}

impl SessionState {
    fn fresh(&mut self) -> u64 {
        self.next_handle += 1;
        self.next_handle
    }
}

type ReqResult = Result<(Response, VirtualTime), (ErrorCode, String)>;

pub(crate) fn run_session(ctx: SessionCtx) {
    let mut state = SessionState::default();
    // Loop until the client hangs up or disconnects.
    while let Ok(env) = ctx.server.recv() {
        let disconnect = matches!(env.body, Request::Disconnect);
        let arrival = env.sent_at + ctx.costs.control_hop();
        let outcome = handle_request(&ctx, &mut state, &env, arrival);
        let (body, sent_at) = match outcome {
            Ok((body, at)) => (body, at),
            Err((code, message)) => (Response::Error { code, message }, arrival),
        };
        // Best effort: a vanished client just ends the session.
        if ctx
            .server
            .send(&ResponseEnvelope {
                tag: env.tag,
                sent_at,
                body,
            })
            .is_err()
        {
            break;
        }
        if disconnect {
            break;
        }
    }
    cleanup(&ctx, &mut state);
    ctx.shared
        .connected
        .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
}

fn cleanup(ctx: &SessionCtx, state: &mut SessionState) {
    let mut board = lock_order::tracked(&ctx.shared.board, "board");
    for (fpga, _) in state.buffers.values() {
        let _ = board.free_buffer(*fpga);
    }
    state.buffers.clear();
}

fn handle_request(
    ctx: &SessionCtx,
    state: &mut SessionState,
    env: &RequestEnvelope,
    arrival: VirtualTime,
) -> ReqResult {
    match &env.body {
        Request::Hello { .. } => Ok((Response::Handle { id: ctx.client.0 }, arrival)),
        Request::GetDeviceInfo => {
            let board = lock_order::tracked(&ctx.shared.board, "board");
            Ok((
                Response::DeviceInfo {
                    name: board.spec().model.clone(),
                    vendor: "Intel".to_string(),
                    platform: "Intel(R) FPGA SDK for OpenCL(TM)".to_string(),
                    memory_bytes: board.spec().memory_bytes,
                    node: ctx.shared.node.id().to_string(),
                    bitstream: board.bitstream_id().map(str::to_string),
                },
                arrival,
            ))
        }
        Request::CreateContext => {
            let id = state.fresh();
            state.contexts.insert(id);
            Ok((Response::Handle { id }, arrival))
        }
        Request::BuildProgram { bitstream } => {
            let done = ensure_bitstream(ctx, bitstream, arrival)?;
            let id = state.fresh();
            state.programs.insert(id, bitstream.clone());
            Ok((Response::Handle { id }, done))
        }
        Request::Reconfigure { bitstream } => {
            let done = ensure_bitstream(ctx, bitstream, arrival)?;
            Ok((Response::Ack, done))
        }
        Request::CreateKernel { program, name } => {
            let bitstream = state.programs.get(program).ok_or((
                ErrorCode::InvalidHandle,
                format!("program {program} not found"),
            ))?;
            let image = ctx.shared.catalog.get(bitstream).ok_or((
                ErrorCode::BuildFailure,
                format!("bitstream {bitstream:?} missing from catalog"),
            ))?;
            if image.kernel(name).is_none() {
                return Err((
                    ErrorCode::BuildFailure,
                    format!("kernel {name:?} not in bitstream {bitstream:?}"),
                ));
            }
            let id = state.fresh();
            state.kernels.insert(
                id,
                KernelSlot {
                    name: name.clone(),
                    args: BTreeMap::new(),
                },
            );
            Ok((Response::Handle { id }, arrival))
        }
        Request::SetKernelArg { kernel, index, arg } => {
            let slot = state.kernels.get_mut(kernel).ok_or((
                ErrorCode::InvalidHandle,
                format!("kernel {kernel} not found"),
            ))?;
            slot.args.insert(*index, *arg);
            Ok((Response::Ack, arrival))
        }
        Request::CreateBuffer { context, len } => {
            if !state.contexts.contains(context) {
                return Err((
                    ErrorCode::InvalidHandle,
                    format!("context {context} not found"),
                ));
            }
            let fpga = lock_order::tracked(&ctx.shared.board, "board")
                .alloc_buffer(*len)
                .map_err(|e| (ErrorCode::OutOfResources, e.to_string()))?;
            let id = state.fresh();
            state.buffers.insert(id, (fpga, *len));
            Ok((Response::Handle { id }, arrival))
        }
        Request::ReleaseBuffer { buffer } => {
            let (fpga, _) = state.buffers.remove(buffer).ok_or((
                ErrorCode::AccessDenied,
                format!("buffer {buffer} is not yours"),
            ))?;
            lock_order::tracked(&ctx.shared.board, "board")
                .free_buffer(fpga)
                .map_err(|e| (ErrorCode::Internal, e.to_string()))?;
            Ok((Response::Ack, arrival))
        }
        Request::CreateQueue { context } => {
            if !state.contexts.contains(context) {
                return Err((
                    ErrorCode::InvalidHandle,
                    format!("context {context} not found"),
                ));
            }
            let id = state.fresh();
            state.queues.insert(id, Vec::new());
            Ok((Response::Handle { id }, arrival))
        }
        Request::EnqueueWrite {
            queue,
            buffer,
            offset,
            data,
        } => {
            let (fpga, _) = *state.buffers.get(buffer).ok_or((
                ErrorCode::AccessDenied,
                format!("buffer {buffer} is not yours"),
            ))?;
            let ops = state
                .queues
                .get_mut(queue)
                .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
            ops.push(Operation::Write {
                tag: env.tag,
                buffer: fpga,
                offset: *offset,
                data: data.clone(),
            });
            Ok((Response::Enqueued, arrival))
        }
        Request::EnqueueRead {
            queue,
            buffer,
            offset,
            len,
        } => {
            let (fpga, _) = *state.buffers.get(buffer).ok_or((
                ErrorCode::AccessDenied,
                format!("buffer {buffer} is not yours"),
            ))?;
            let ops = state
                .queues
                .get_mut(queue)
                .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
            ops.push(Operation::Read {
                tag: env.tag,
                buffer: fpga,
                offset: *offset,
                len: *len,
            });
            Ok((Response::Enqueued, arrival))
        }
        Request::EnqueueCopy {
            queue,
            src,
            dst,
            src_offset,
            dst_offset,
            len,
        } => {
            let (src_fpga, _) = *state.buffers.get(src).ok_or((
                ErrorCode::AccessDenied,
                format!("buffer {src} is not yours"),
            ))?;
            let (dst_fpga, _) = *state.buffers.get(dst).ok_or((
                ErrorCode::AccessDenied,
                format!("buffer {dst} is not yours"),
            ))?;
            let ops = state
                .queues
                .get_mut(queue)
                .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
            ops.push(Operation::Copy {
                tag: env.tag,
                src: src_fpga,
                dst: dst_fpga,
                src_offset: *src_offset,
                dst_offset: *dst_offset,
                len: *len,
            });
            Ok((Response::Enqueued, arrival))
        }
        Request::EnqueueKernel {
            queue,
            kernel,
            work,
        } => {
            let invocation = resolve_invocation(state, *kernel, *work)?;
            let name = state.kernels[kernel].name.clone();
            let ops = state
                .queues
                .get_mut(queue)
                .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
            ops.push(Operation::Kernel {
                tag: env.tag,
                name,
                invocation,
            });
            Ok((Response::Enqueued, arrival))
        }
        Request::Flush { queue } => {
            submit_task(ctx, state, *queue, arrival, None)?;
            Ok((Response::Ack, arrival))
        }
        Request::Finish { queue } => {
            // The worker answers this tag once the task (and everything
            // before it in the central queue) has drained; the Ack below
            // only confirms submission.
            submit_task(ctx, state, *queue, arrival, Some(env.tag))?;
            Ok((Response::Enqueued, arrival))
        }
        Request::Disconnect => Ok((Response::Ack, arrival)),
    }
}

fn ensure_bitstream(
    ctx: &SessionCtx,
    bitstream: &str,
    arrival: VirtualTime,
) -> Result<VirtualTime, (ErrorCode, String)> {
    let image = ctx.shared.catalog.get(bitstream).ok_or((
        ErrorCode::BuildFailure,
        format!("unknown bitstream {bitstream:?}"),
    ))?;
    let mut board = lock_order::tracked(&ctx.shared.board, "board");
    if board.bitstream_id() == Some(bitstream) {
        return Ok(arrival);
    }
    let allowed = match &ctx.shared.config.reconfig_policy {
        ReconfigPolicy::Allow => true,
        ReconfigPolicy::Deny => false,
        ReconfigPolicy::Validate(f) => f(&ReconfigRequest {
            client_name: ctx.name.clone(),
            bitstream: bitstream.to_string(),
            device_id: ctx.shared.config.device_id.clone(),
        }),
    };
    if !allowed {
        return Err((
            ErrorCode::ReconfigurationRefused,
            format!("reconfiguration to {bitstream:?} refused by policy"),
        ));
    }
    // Reconfiguration blocks every other operation (§III-B): it occupies
    // the board itself, so queued tasks simply serialize around it.
    let timing = board.program(image, arrival, &ctx.name);
    Ok(timing.ended_at)
}

fn resolve_invocation(
    state: &SessionState,
    kernel: u64,
    work: [u64; 3],
) -> Result<KernelInvocation, (ErrorCode, String)> {
    let slot = state.kernels.get(&kernel).ok_or((
        ErrorCode::InvalidHandle,
        format!("kernel {kernel} not found"),
    ))?;
    let mut args = Vec::new();
    if let Some(max) = slot.args.keys().next_back().copied() {
        for i in 0..=max {
            let arg = slot.args.get(&i).ok_or((
                ErrorCode::InvalidLaunch,
                format!("kernel argument {i} was never set"),
            ))?;
            args.push(match *arg {
                WireArg::Buffer(handle) => {
                    let (fpga, _) = state.buffers.get(&handle).ok_or((
                        ErrorCode::AccessDenied,
                        format!("buffer {handle} is not yours"),
                    ))?;
                    KernelArg::Buffer(*fpga)
                }
                WireArg::U32(v) => KernelArg::U32(v),
                WireArg::I32(v) => KernelArg::I32(v),
                WireArg::U64(v) => KernelArg::U64(v),
                WireArg::F32(v) => KernelArg::F32(v),
            });
        }
    }
    Ok(KernelInvocation {
        args,
        global_work: work,
    })
}

fn submit_task(
    ctx: &SessionCtx,
    state: &mut SessionState,
    queue: u64,
    arrival: VirtualTime,
    finish_tag: Option<u64>,
) -> Result<(), (ErrorCode, String)> {
    let ops = state
        .queues
        .get_mut(&queue)
        .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
    let ops = std::mem::take(ops);
    if ops.is_empty() && finish_tag.is_none() {
        return Ok(()); // nothing to flush
    }
    let task = Task {
        client: ctx.client,
        owner: ctx.name.clone(),
        ops,
        arrival,
        responder: ctx.server.clone(),
        shm: ctx.shm.clone(),
        finish_tag,
    };
    ctx.task_tx.send(task).map_err(|_| {
        (
            ErrorCode::Internal,
            "device manager worker is gone".to_string(),
        )
    })
}
