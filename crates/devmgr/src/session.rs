//! Per-client session handling.
//!
//! Each connected client gets its own [`Session`] — its own resource pool,
//! the isolation mechanism of §III-B: handles are session-scoped, so a
//! client can never name (let alone touch) another tenant's buffers,
//! kernels or queues. Sessions are no longer threads: the manager's single
//! event loop drives every session from poller readiness events.
//!
//! *Context & information methods* are answered synchronously from the
//! event loop. *Command-queue methods* accumulate in the open task of the
//! target queue; `Flush`/`Finish` seal the task and push it onto the
//! manager's central queue.
//!
//! Responses go out through the bounded completion stream with
//! backpressure handled explicitly: when `try_send` reports a full stream,
//! envelopes park in the session's `outbound` buffer (preserving order)
//! and are re-flushed on later loop iterations. A client that stops
//! draining past the configured limit is force-disconnected instead of
//! buffering without bound.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bf_cache::{content_digest, DigestTracker};
use bf_fpga::{KernelArg, KernelInvocation, MAX_KERNEL_ARGS};
use bf_model::VirtualTime;
use bf_rpc::{
    ClientId, DataRef, ErrorCode, PathCosts, Request, RequestEnvelope, Response, ResponseEnvelope,
    ServerChannel, ShmSegment, TransportError, WireArg,
};

use crate::lock_order;
use crate::manager::{ReconfigPolicy, ReconfigRequest, Shared};
use crate::task::{Operation, Task};

/// Digests one session keeps hit authorization for. Matches the
/// client-side tracker bound (`TRACKER_ENTRIES` in bf-remote), so both
/// ends age entries in lock-step; an aged-out entry just degrades the
/// next digest send to one `CacheMiss` round trip and an inline resend.
const ADMITTED_ENTRIES: usize = 1024;

/// Everything `DeviceManager::connect` hands to the event loop to start a
/// session.
pub(crate) struct SessionSeed {
    pub server: ServerChannel,
    pub client: ClientId,
    pub name: String,
    pub costs: PathCosts,
    pub shm: Option<ShmSegment>,
}

#[derive(Debug, Default)]
struct KernelSlot {
    name: String,
    args: BTreeMap<u32, WireArg>,
}

#[derive(Default)]
struct SessionState {
    next_handle: u64,
    contexts: HashSet<u64>,
    programs: HashMap<u64, String>,
    kernels: HashMap<u64, KernelSlot>,
    buffers: HashMap<u64, (bf_fpga::BufferId, u64)>,
    queues: HashMap<u64, Vec<Operation>>,
}

impl SessionState {
    fn fresh(&mut self) -> u64 {
        self.next_handle += 1;
        self.next_handle
    }
}

type ReqResult = Result<(Response, VirtualTime), (ErrorCode, String)>;

/// One client session, driven by the manager's event loop.
pub(crate) struct Session {
    shared: Arc<Shared>,
    pub(crate) server: ServerChannel,
    client: ClientId,
    name: String,
    costs: PathCosts,
    shm: Option<ShmSegment>,
    state: SessionState,
    /// Responses the bounded completion stream could not take yet, FIFO.
    outbound: VecDeque<ResponseEnvelope>,
    /// The session is winding down (`Disconnect` seen, peer vanished, or
    /// force-closed); reaped once nothing deliverable remains.
    closing: bool,
    /// The client can no longer receive: drop instead of flushing.
    peer_gone: bool,
    /// Digests this session itself shipped inline, bounded like the
    /// client-side tracker. The payload cache's *storage* is shared
    /// across sessions, but hits are only authorized against content the
    /// requesting session already proved it possesses — a guessed digest
    /// must never disclose another tenant's resident bytes (the dedup
    /// side-channel). `Some` exactly when the manager runs a cache.
    admitted: Option<DigestTracker>,
}

impl Session {
    pub(crate) fn new(shared: Arc<Shared>, seed: SessionSeed) -> Session {
        let admitted = shared
            .cache
            .as_ref()
            .map(|_| DigestTracker::new(ADMITTED_ENTRIES));
        Session {
            shared,
            server: seed.server,
            client: seed.client,
            name: seed.name,
            costs: seed.costs,
            shm: seed.shm,
            state: SessionState::default(),
            outbound: VecDeque::new(),
            closing: false,
            peer_gone: false,
            admitted,
        }
    }

    pub(crate) fn client(&self) -> ClientId {
        self.client
    }

    /// Responses parked behind a full completion stream.
    pub(crate) fn backlog(&self) -> usize {
        self.outbound.len()
    }

    /// Whether the event loop should remove this session: it is closing
    /// and either the peer is unreachable or every response was delivered.
    pub(crate) fn reapable(&self) -> bool {
        self.closing && (self.peer_gone || self.outbound.is_empty())
    }

    /// Marks the session dead (slow consumer or unreachable peer).
    pub(crate) fn force_close(&mut self) {
        self.closing = true;
        self.peer_gone = true;
    }

    /// Notes that the request stream reported `Closed`: the client dropped
    /// its endpoint without a `Disconnect`.
    pub(crate) fn peer_hung_up(&mut self) {
        self.force_close();
    }

    /// Processes one request frame, queueing the response and appending any
    /// sealed task to the central queue.
    pub(crate) fn handle_frame(&mut self, env: RequestEnvelope, tasks: &mut VecDeque<Task>) {
        let disconnect = matches!(env.body, Request::Disconnect);
        let arrival = env.sent_at + self.costs.control_hop();
        let outcome = self.handle_request(&env, arrival, tasks);
        let (body, sent_at) = match outcome {
            Ok((body, at)) => (body, at),
            Err((code, message)) => (Response::Error { code, message }, arrival),
        };
        self.queue_response(ResponseEnvelope {
            tag: env.tag,
            sent_at,
            body,
        });
        if disconnect {
            // Queued responses (the Ack above included) still flush before
            // the reap unless the peer is already gone.
            self.closing = true;
        }
    }

    /// Queues one response, pushing it straight onto the completion stream
    /// when nothing is parked ahead of it.
    pub(crate) fn queue_response(&mut self, env: ResponseEnvelope) {
        if self.peer_gone {
            return;
        }
        if self.outbound.is_empty() {
            match self.server.try_send(&env) {
                Ok(()) => return,
                Err(TransportError::Backpressure) => {}
                Err(_) => {
                    self.force_close();
                    return;
                }
            }
        }
        // bf-flow: allow(hot_alloc): bounded by max_pending_responses — the
        // event loop force-closes any session whose backlog exceeds the cap
        self.outbound.push_back(env);
    }

    /// Re-drives parked responses into the completion stream, preserving
    /// FIFO order, until it fills up again.
    pub(crate) fn flush(&mut self) {
        while let Some(env) = self.outbound.front() {
            match self.server.try_send(env) {
                Ok(()) => {
                    self.outbound.pop_front();
                }
                Err(TransportError::Backpressure) => return,
                Err(_) => {
                    self.force_close();
                    return;
                }
            }
        }
    }

    /// Releases every board resource the session still holds.
    pub(crate) fn cleanup(&mut self) {
        let mut board = lock_order::tracked(&self.shared.board, "board");
        for (fpga, _) in self.state.buffers.values() {
            let _ = board.free_buffer(*fpga);
            if let Some(cache) = &self.shared.cache {
                cache.invalidate_buffer(fpga.0);
            }
        }
        self.state.buffers.clear();
    }

    fn handle_request(
        &mut self,
        env: &RequestEnvelope,
        arrival: VirtualTime,
        tasks: &mut VecDeque<Task>,
    ) -> ReqResult {
        match &env.body {
            Request::Hello { .. } => Ok((Response::Handle { id: self.client.0 }, arrival)),
            Request::GetDeviceInfo => {
                let board = lock_order::tracked(&self.shared.board, "board");
                Ok((
                    Response::DeviceInfo {
                        name: board.spec().model.clone(),
                        vendor: "Intel".to_string(),
                        platform: "Intel(R) FPGA SDK for OpenCL(TM)".to_string(),
                        memory_bytes: board.spec().memory_bytes,
                        node: self.shared.node.id().to_string(),
                        bitstream: board.bitstream_id().map(str::to_string),
                    },
                    arrival,
                ))
            }
            Request::CreateContext => {
                let id = self.state.fresh();
                self.state.contexts.insert(id);
                Ok((Response::Handle { id }, arrival))
            }
            Request::BuildProgram { bitstream } => {
                let done = self.ensure_bitstream(bitstream, arrival)?;
                let id = self.state.fresh();
                self.state.programs.insert(id, bitstream.clone());
                Ok((Response::Handle { id }, done))
            }
            Request::Reconfigure { bitstream } => {
                let done = self.ensure_bitstream(bitstream, arrival)?;
                Ok((Response::Ack, done))
            }
            Request::CreateKernel { program, name } => {
                let bitstream = self.state.programs.get(program).ok_or((
                    ErrorCode::InvalidHandle,
                    format!("program {program} not found"),
                ))?;
                let image = self.shared.catalog.get(bitstream).ok_or((
                    ErrorCode::BuildFailure,
                    format!("bitstream {bitstream:?} missing from catalog"),
                ))?;
                if image.kernel(name).is_none() {
                    return Err((
                        ErrorCode::BuildFailure,
                        format!("kernel {name:?} not in bitstream {bitstream:?}"),
                    ));
                }
                let id = self.state.fresh();
                self.state.kernels.insert(
                    id,
                    KernelSlot {
                        name: name.clone(),
                        args: BTreeMap::new(),
                    },
                );
                Ok((Response::Handle { id }, arrival))
            }
            Request::SetKernelArg { kernel, index, arg } => {
                // The wire index is attacker-controlled and argument
                // slots materialize positionally at launch: an unchecked
                // u32::MAX here would buy four billion iterations of
                // launch-time work for one frame (bf-taint: taint_loop).
                if *index >= MAX_KERNEL_ARGS {
                    return Err((
                        ErrorCode::InvalidLaunch,
                        format!(
                            "kernel argument index {index} exceeds the \
                             per-kernel limit of {MAX_KERNEL_ARGS}"
                        ),
                    ));
                }
                let slot = self.state.kernels.get_mut(kernel).ok_or((
                    ErrorCode::InvalidHandle,
                    format!("kernel {kernel} not found"),
                ))?;
                slot.args.insert(*index, *arg);
                Ok((Response::Ack, arrival))
            }
            Request::CreateBuffer { context, len } => {
                if !self.state.contexts.contains(context) {
                    return Err((
                        ErrorCode::InvalidHandle,
                        format!("context {context} not found"),
                    ));
                }
                let fpga = lock_order::tracked(&self.shared.board, "board")
                    .alloc_buffer(*len)
                    .map_err(|e| (ErrorCode::OutOfResources, e.to_string()))?;
                let id = self.state.fresh();
                self.state.buffers.insert(id, (fpga, *len));
                Ok((Response::Handle { id }, arrival))
            }
            Request::ReleaseBuffer { buffer } => {
                let (fpga, _) = self.state.buffers.remove(buffer).ok_or((
                    ErrorCode::AccessDenied,
                    format!("buffer {buffer} is not yours"),
                ))?;
                lock_order::tracked(&self.shared.board, "board")
                    .free_buffer(fpga)
                    .map_err(|e| (ErrorCode::Internal, e.to_string()))?;
                if let Some(cache) = &self.shared.cache {
                    // A freed id can be reissued; stale residency on it
                    // would let a later digest hit skip a needed DMA.
                    // bf-taint: allow(taint_auth): `fpga` is the
                    // server-assigned board id read back from this
                    // session's own handle table; the remove() above is
                    // the ownership check on the wire handle.
                    cache.invalidate_buffer(fpga.0);
                }
                Ok((Response::Ack, arrival))
            }
            Request::CreateQueue { context } => {
                if !self.state.contexts.contains(context) {
                    return Err((
                        ErrorCode::InvalidHandle,
                        format!("context {context} not found"),
                    ));
                }
                let id = self.state.fresh();
                self.state.queues.insert(id, Vec::new());
                Ok((Response::Handle { id }, arrival))
            }
            Request::EnqueueWrite {
                queue,
                buffer,
                offset,
                data,
            } => {
                let (fpga, _) = *self.state.buffers.get(buffer).ok_or((
                    ErrorCode::AccessDenied,
                    format!("buffer {buffer} is not yours"),
                ))?;
                let (data, digest) = self.resolve_write_payload(data)?;
                let ops = self
                    .state
                    .queues
                    .get_mut(queue)
                    .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
                stage_op(
                    ops,
                    Operation::Write {
                        tag: env.tag,
                        buffer: fpga,
                        offset: *offset,
                        data,
                        digest,
                    },
                    self.shared.config.max_queued_ops,
                )?;
                Ok((Response::Enqueued, arrival))
            }
            Request::EnqueueRead {
                queue,
                buffer,
                offset,
                len,
            } => {
                let (fpga, _) = *self.state.buffers.get(buffer).ok_or((
                    ErrorCode::AccessDenied,
                    format!("buffer {buffer} is not yours"),
                ))?;
                let ops = self
                    .state
                    .queues
                    .get_mut(queue)
                    .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
                stage_op(
                    ops,
                    Operation::Read {
                        tag: env.tag,
                        buffer: fpga,
                        offset: *offset,
                        len: *len,
                    },
                    self.shared.config.max_queued_ops,
                )?;
                Ok((Response::Enqueued, arrival))
            }
            Request::EnqueueCopy {
                queue,
                src,
                dst,
                src_offset,
                dst_offset,
                len,
            } => {
                let (src_fpga, _) = *self.state.buffers.get(src).ok_or((
                    ErrorCode::AccessDenied,
                    format!("buffer {src} is not yours"),
                ))?;
                let (dst_fpga, _) = *self.state.buffers.get(dst).ok_or((
                    ErrorCode::AccessDenied,
                    format!("buffer {dst} is not yours"),
                ))?;
                let ops = self
                    .state
                    .queues
                    .get_mut(queue)
                    .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
                stage_op(
                    ops,
                    Operation::Copy {
                        tag: env.tag,
                        src: src_fpga,
                        dst: dst_fpga,
                        src_offset: *src_offset,
                        dst_offset: *dst_offset,
                        len: *len,
                    },
                    self.shared.config.max_queued_ops,
                )?;
                Ok((Response::Enqueued, arrival))
            }
            Request::EnqueueKernel {
                queue,
                kernel,
                work,
            } => {
                let (name, invocation) = resolve_invocation(&self.state, *kernel, *work)?;
                let ops = self
                    .state
                    .queues
                    .get_mut(queue)
                    .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
                stage_op(
                    ops,
                    Operation::Kernel {
                        tag: env.tag,
                        name,
                        invocation,
                    },
                    self.shared.config.max_queued_ops,
                )?;
                Ok((Response::Enqueued, arrival))
            }
            Request::Flush { queue } => {
                self.submit_task(*queue, arrival, None, tasks)?;
                Ok((Response::Ack, arrival))
            }
            Request::Finish { queue } => {
                // The task executor answers this tag once the task (and
                // everything before it in the central queue) has drained;
                // the Enqueued below only confirms submission.
                self.submit_task(*queue, arrival, Some(env.tag), tasks)?;
                Ok((Response::Enqueued, arrival))
            }
            Request::Disconnect => Ok((Response::Ack, arrival)),
        }
    }

    /// Resolves a write payload against the payload cache at staging
    /// time (so back-to-back identical writes hit before any flush):
    /// digest references rewrite to the cached bytes — a refcount bump —
    /// or NACK with [`ErrorCode::CacheMiss`] so the client resends
    /// inline; arriving inline bytes are admitted for future hits.
    /// Without a cache every reference passes through by refcount bump.
    ///
    /// Also returns the payload's content digest when one was computed,
    /// so the executor's device-residency tier never hashes the same
    /// bytes a second time.
    fn resolve_write_payload(
        &self,
        data: &DataRef,
    ) -> Result<(DataRef, Option<u128>), (ErrorCode, String)> {
        let (Some(cache), Some(admitted)) = (&self.shared.cache, &self.admitted) else {
            return match data {
                DataRef::Digest { digest, .. } => Err((
                    ErrorCode::CacheMiss,
                    format!("no payload cache on this manager for digest {digest:#034x}"),
                )),
                // A refcount bump — the enqueued operation aliases the
                // decoded frame's bytes instead of copying them.
                _ => Ok((data.share(), None)),
            };
        };
        match data {
            DataRef::Digest { digest, len } => {
                // Hit authorization is per-session even though storage
                // is shared: only content this session itself shipped
                // inline may be substituted. Anything else NACKs exactly
                // like a miss, so probing digests of content another
                // tenant may have shipped discloses nothing.
                // bf-taint: allow(taint_auth): this per-session admission
                // check IS the authorization for the untrusted digest —
                // only content this session itself shipped may hit.
                if !admitted.holds(*digest) {
                    return Err((
                        ErrorCode::CacheMiss,
                        format!("digest {digest:#034x} was not shipped by this session"),
                    ));
                }
                // bf-taint: allow(taint_auth): gated by the holds() check
                // above — an unadmitted digest never reaches the lookup,
                // and a miss NACKs identically either way.
                match cache.get(*digest) {
                    Some(bytes) if bytes.len() as u64 == *len => {
                        Ok((DataRef::Inline(bytes.into()), Some(*digest)))
                    }
                    Some(_) => Err((
                        ErrorCode::CacheMiss,
                        format!("digest {digest:#034x} resident with a different length"),
                    )),
                    None => Err((
                        ErrorCode::CacheMiss,
                        format!("digest {digest:#034x} not resident"),
                    )),
                }
            }
            DataRef::Inline(payload) => {
                let bytes = payload.share().into_bytes();
                // The digest is computed here, from the bytes that
                // actually arrived — a client-claimed digest could
                // poison the shared store for other tenants.
                let digest = content_digest(&bytes);
                // bf-lint: allow(payload_copy): `Bytes::clone` is a
                // refcount bump on the shared payload, never a byte copy.
                // bf-flow: allow(hot_alloc): the cache evicts clock-wise
                // until the entry fits, so residency never exceeds the
                // configured byte budget; duplicates are refused cheaply.
                // bf-taint: allow(taint_auth): the admission key is the
                // digest recomputed from the arrived bytes just above;
                // the tainted bytes are the content being admitted —
                // storing them under their true digest is the cache.
                cache.insert(digest, bytes.clone());
                admitted.note_sent(digest);
                Ok((DataRef::Inline(bytes.into()), Some(digest)))
            }
            _ => Ok((data.share(), None)),
        }
    }

    fn ensure_bitstream(
        &self,
        bitstream: &str,
        arrival: VirtualTime,
    ) -> Result<VirtualTime, (ErrorCode, String)> {
        let image = self.shared.catalog.get(bitstream).ok_or((
            ErrorCode::BuildFailure,
            format!("unknown bitstream {bitstream:?}"),
        ))?;
        let mut board = lock_order::tracked(&self.shared.board, "board");
        if board.bitstream_id() == Some(bitstream) {
            return Ok(arrival);
        }
        let allowed = match &self.shared.config.reconfig_policy {
            ReconfigPolicy::Allow => true,
            ReconfigPolicy::Deny => false,
            ReconfigPolicy::Validate(f) => f(&ReconfigRequest {
                client_name: self.name.clone(),
                bitstream: bitstream.to_string(),
                device_id: self.shared.config.device_id.clone(),
            }),
        };
        if !allowed {
            return Err((
                ErrorCode::ReconfigurationRefused,
                format!("reconfiguration to {bitstream:?} refused by policy"),
            ));
        }
        // Reconfiguration blocks every other operation (§III-B): it
        // occupies the board itself, so queued tasks simply serialize
        // around it.
        let timing = board.program(image, arrival, &self.name);
        if let Some(cache) = &self.shared.cache {
            // Programming wipes on-board DDR: no tracked residency
            // survives. ("payload_cache" ranks after "board", so taking
            // it here is hierarchy-legal.)
            cache.invalidate_device();
        }
        Ok(timing.ended_at)
    }

    fn submit_task(
        &mut self,
        queue: u64,
        arrival: VirtualTime,
        finish_tag: Option<u64>,
        tasks: &mut VecDeque<Task>,
    ) -> Result<(), (ErrorCode, String)> {
        let ops = self
            .state
            .queues
            .get_mut(&queue)
            .ok_or((ErrorCode::InvalidHandle, format!("queue {queue} not found")))?;
        let ops = std::mem::take(ops);
        if ops.is_empty() && finish_tag.is_none() {
            return Ok(()); // nothing to flush
        }
        // bf-flow: allow(hot_alloc): drained into the executor every event-
        // loop iteration; each entry's ops vec is capped by max_queued_ops
        tasks.push_back(Task {
            client: self.client,
            owner: self.name.clone(),
            ops,
            arrival,
            shm: self.shm.clone(),
            finish_tag,
        });
        Ok(())
    }
}

/// Stages one operation on a command queue, refusing past the configured
/// per-queue cap so one client cannot grow a queue without bound.
fn stage_op(
    ops: &mut Vec<Operation>,
    op: Operation,
    max_queued_ops: usize,
) -> Result<(), (ErrorCode, String)> {
    if ops.len() >= max_queued_ops {
        return Err((
            ErrorCode::OutOfResources,
            format!("queue already holds {max_queued_ops} unflushed operations"),
        ));
    }
    // bf-flow: allow(hot_alloc): bounded by max_queued_ops, enforced above
    ops.push(op);
    Ok(())
}

/// Validates one kernel launch and returns the kernel's name alongside the
/// resolved invocation, so the caller never re-indexes the handle map.
fn resolve_invocation(
    state: &SessionState,
    kernel: u64,
    work: [u64; 3],
) -> Result<(String, KernelInvocation), (ErrorCode, String)> {
    let slot = state.kernels.get(&kernel).ok_or((
        ErrorCode::InvalidHandle,
        format!("kernel {kernel} not found"),
    ))?;
    // bf-taint: sanitized(SetKernelArg rejects indices >= MAX_KERNEL_ARGS, so args.len() is capped at 256)
    let mut args = Vec::with_capacity(slot.args.len());
    if let Some(max) = slot.args.keys().next_back().copied() {
        // bf-taint: sanitized(max < MAX_KERNEL_ARGS — enforced at the SetKernelArg trust boundary)
        for i in 0..=max {
            let arg = slot.args.get(&i).ok_or((
                ErrorCode::InvalidLaunch,
                format!("kernel argument {i} was never set"),
            ))?;
            args.push(match *arg {
                WireArg::Buffer(handle) => {
                    let (fpga, _) = state.buffers.get(&handle).ok_or((
                        ErrorCode::AccessDenied,
                        format!("buffer {handle} is not yours"),
                    ))?;
                    KernelArg::Buffer(*fpga)
                }
                WireArg::U32(v) => KernelArg::U32(v),
                WireArg::I32(v) => KernelArg::I32(v),
                WireArg::U64(v) => KernelArg::U64(v),
                WireArg::F32(v) => KernelArg::F32(v),
            });
        }
    }
    Ok((
        slot.name.clone(),
        KernelInvocation {
            args,
            global_work: work,
        },
    ))
}
