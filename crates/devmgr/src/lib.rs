#![forbid(unsafe_code)]

//! # bf-devmgr — the BlastFunction Device Manager
//!
//! One Device Manager fronts one FPGA board and is, together with the
//! Remote OpenCL Library, the basic block of the sharing mechanism
//! (paper §III-B):
//!
//! * each client gets an **isolated session** with its own resource pool —
//!   handles are session-scoped, so tenants cannot touch each other's
//!   buffers/kernels/queues;
//! * *context & information methods* execute synchronously; *command-queue
//!   methods* accumulate into **multi-operation tasks** sealed by
//!   `Flush`/`Finish`;
//! * a single **event-loop thread** polls every session's bounded channel
//!   (round-robin fairness, explicit backpressure) and drains the central
//!   task queue in FIFO order, executing each task atomically on the board
//!   and notifying each operation's event punctually;
//! * bulk data moves **inline (gRPC)** or through a **shared-memory
//!   segment** (one retained copy), per connection;
//! * **board reconfiguration** blocks everything else and is guarded by a
//!   [`ReconfigPolicy`] (the Accelerators Registry's validation hook);
//! * busy time is attributed per function and exported through a
//!   Prometheus-style scrape ([`DeviceManager::scrape`]).
//!
//! ```
//! use std::sync::Arc;
//! use bf_devmgr::{DeviceManager, DeviceManagerConfig};
//! use bf_fpga::{Board, BoardSpec};
//! use bf_model::{node_b, PcieGeneration, PcieLink};
//! use bf_ocl::BitstreamCatalog;
//! use bf_rpc::PathCosts;
//! use parking_lot::Mutex;
//!
//! let board = Arc::new(Mutex::new(Board::new(
//!     BoardSpec::de5a_net(),
//!     PcieLink::new(PcieGeneration::Gen3, 8),
//! )));
//! let manager = DeviceManager::new(
//!     DeviceManagerConfig::standalone("fpga-b"),
//!     node_b(),
//!     board,
//!     BitstreamCatalog::new(),
//! );
//! let endpoint = manager.connect("sobel-1", PathCosts::local_shm());
//! assert!(endpoint.shm.is_some(), "co-located clients get a shm segment");
//! ```

mod event_loop;
pub mod lock_order;
mod manager;
mod session;
mod task;
mod worker;

/// The bf-sync facade (re-exported from `bf-race`): synchronization in
/// this crate goes through it so the event loop and sessions can run
/// under the deterministic model scheduler (`bf-race --features model`).
pub use bf_race::sync;

pub use bf_cache::{content_digest, CacheStats};
pub use manager::{
    DeviceManager, DeviceManagerConfig, ManagerEndpoint, ReconfigPolicy, ReconfigRequest,
};
pub use task::{Operation, Task};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bf_fpga::{
        Bitstream, Board, BoardSpec, DeviceMemory, FnKernel, KernelDescriptor, KernelInvocation,
    };
    use bf_model::{node_a, node_b, PcieGeneration, PcieLink, VirtualDuration, VirtualTime};
    use bf_ocl::BitstreamCatalog;
    use bf_rpc::{
        ClientId, DataRef, ErrorCode, PathCosts, Payload, Request, RequestEnvelope, Response,
        ResponseEnvelope,
    };
    use parking_lot::Mutex;

    use super::*;

    fn catalog() -> BitstreamCatalog {
        let incr = FnKernel::new(
            |_inv: &KernelInvocation| VirtualDuration::from_micros(100),
            |inv: &KernelInvocation, mem: &mut DeviceMemory| {
                let buf = inv.arg(0)?.as_buffer()?;
                for b in mem.bytes_mut(buf)? {
                    *b = b.wrapping_add(1);
                }
                Ok(())
            },
        );
        let mut cat = BitstreamCatalog::new();
        cat.register(Arc::new(Bitstream::new(
            "incr",
            vec![KernelDescriptor::new("incr", Arc::new(incr))],
        )));
        cat.register(Arc::new(Bitstream::new("other", vec![])));
        cat
    }

    fn manager(policy: ReconfigPolicy) -> DeviceManager {
        let board = Arc::new(Mutex::new(Board::new(
            BoardSpec::de5a_net(),
            PcieLink::new(PcieGeneration::Gen3, 8),
        )));
        DeviceManager::new(
            DeviceManagerConfig::standalone("fpga-test").with_policy(policy),
            node_b(),
            board,
            catalog(),
        )
    }

    /// Minimal protocol driver for tests: sends a request, returns the
    /// first response for that tag.
    struct Driver {
        endpoint: ManagerEndpoint,
        next_tag: u64,
    }

    impl Driver {
        fn new(mgr: &DeviceManager, costs: PathCosts) -> Self {
            Driver {
                endpoint: mgr.connect("test-fn", costs),
                next_tag: 0,
            }
        }

        fn call(&mut self, body: Request) -> Response {
            let tag = self.send(body);
            self.wait_tag(tag)
        }

        fn send(&mut self, body: Request) -> u64 {
            self.next_tag += 1;
            let tag = self.next_tag;
            self.endpoint
                .channel
                .send(&RequestEnvelope {
                    tag,
                    client: self.endpoint.client,
                    sent_at: VirtualTime::ZERO,
                    body,
                })
                .expect("send");
            tag
        }

        fn wait_tag(&mut self, tag: u64) -> Response {
            loop {
                let resp = self.recv();
                if resp.tag == tag {
                    return resp.body;
                }
            }
        }

        fn recv(&mut self) -> ResponseEnvelope {
            self.endpoint
                .channel
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("response within 5s")
        }

        fn handle(&mut self, body: Request) -> u64 {
            match self.call(body) {
                Response::Handle { id } => id,
                other => panic!("expected handle, got {other:?}"),
            }
        }
    }

    fn setup_pipeline(d: &mut Driver) -> (u64, u64, u64, u64) {
        let ctx = d.handle(Request::CreateContext);
        let prog = d.handle(Request::BuildProgram {
            bitstream: "incr".into(),
        });
        let kernel = d.handle(Request::CreateKernel {
            program: prog,
            name: "incr".into(),
        });
        let buf = d.handle(Request::CreateBuffer {
            context: ctx,
            len: 8,
        });
        let queue = d.handle(Request::CreateQueue { context: ctx });
        assert!(matches!(
            d.call(Request::SetKernelArg {
                kernel,
                index: 0,
                arg: bf_rpc::WireArg::Buffer(buf)
            }),
            Response::Ack
        ));
        (ctx, kernel, buf, queue)
    }

    #[test]
    fn full_task_round_trip_inline() {
        let mgr = manager(ReconfigPolicy::Allow);
        let mut d = Driver::new(&mgr, PathCosts::local_grpc());
        let (_ctx, kernel, buf, queue) = setup_pipeline(&mut d);

        let wt = d.send(Request::EnqueueWrite {
            queue,
            buffer: buf,
            offset: 0,
            data: DataRef::Inline(vec![1; 8].into()),
        });
        let kt = d.send(Request::EnqueueKernel {
            queue,
            kernel,
            work: [8, 1, 1],
        });
        let rt = d.send(Request::EnqueueRead {
            queue,
            buffer: buf,
            offset: 0,
            len: 8,
        });
        let ft = d.send(Request::Finish { queue });

        // Enqueue acks come first (the FIRST state of each event machine).
        assert!(matches!(
            d.wait_tag(wt),
            Response::Enqueued | Response::Completed { .. }
        ));
        let _ = d.wait_tag(kt);
        // Then completions; the read carries the incremented data.
        loop {
            let resp = d.recv();
            if resp.tag == rt {
                if let Response::Completed {
                    data: Some(DataRef::Inline(bytes)),
                    ..
                } = resp.body
                {
                    assert_eq!(bytes, vec![2; 8]);
                    break;
                }
            }
        }
        assert!(matches!(d.wait_tag(ft), Response::Completed { .. }));
    }

    /// The payload cache's *storage* is shared across a manager's
    /// sessions, but hits are authorized per session: a client naming the
    /// digest of content only *another* tenant shipped gets a `CacheMiss`
    /// NACK — indistinguishable from a plain miss — never that tenant's
    /// bytes. Content addressing must not be a dedup side-channel.
    #[test]
    fn digest_of_another_tenants_content_never_hits() {
        let board = Arc::new(Mutex::new(Board::new(
            BoardSpec::de5a_net(),
            PcieLink::new(PcieGeneration::Gen3, 8),
        )));
        let mgr = DeviceManager::new(
            DeviceManagerConfig::standalone("fpga-test").with_payload_cache(1 << 20),
            node_b(),
            board,
            catalog(),
        );
        let secret = vec![0x42u8; 64];
        let digest = content_digest(&secret);

        // Alice ships her payload inline: resident in the shared store
        // and hit-authorized for *her* session only.
        let mut alice = Driver::new(&mgr, PathCosts::local_grpc());
        let a_ctx = alice.handle(Request::CreateContext);
        let a_buf = alice.handle(Request::CreateBuffer {
            context: a_ctx,
            len: 64,
        });
        let a_queue = alice.handle(Request::CreateQueue { context: a_ctx });
        let wt = alice.send(Request::EnqueueWrite {
            queue: a_queue,
            buffer: a_buf,
            offset: 0,
            data: DataRef::Inline(secret.clone().into()),
        });
        assert!(matches!(alice.wait_tag(wt), Response::Enqueued));

        // Mallory guessed the (low-entropy) content and probes its digest
        // without ever shipping the bytes: the manager must answer
        // exactly like a miss.
        let mut mallory = Driver::new(&mgr, PathCosts::local_grpc());
        let m_ctx = mallory.handle(Request::CreateContext);
        let m_buf = mallory.handle(Request::CreateBuffer {
            context: m_ctx,
            len: 64,
        });
        let m_queue = mallory.handle(Request::CreateQueue { context: m_ctx });
        let probe = mallory.send(Request::EnqueueWrite {
            queue: m_queue,
            buffer: m_buf,
            offset: 0,
            data: DataRef::Digest { digest, len: 64 },
        });
        match mallory.wait_tag(probe) {
            Response::Error {
                code: ErrorCode::CacheMiss,
                ..
            } => {}
            other => panic!("digest probe must NACK as CacheMiss, got {other:?}"),
        }

        // Alice's own digest reference still hits — authorization is
        // per-session, not a cache disable.
        let hit = alice.send(Request::EnqueueWrite {
            queue: a_queue,
            buffer: a_buf,
            offset: 0,
            data: DataRef::Digest { digest, len: 64 },
        });
        assert!(matches!(alice.wait_tag(hit), Response::Enqueued));

        // Once Mallory ships the same bytes herself she is authorized too
        // (storage stays deduplicated; authorization follows possession).
        let m_inline = mallory.send(Request::EnqueueWrite {
            queue: m_queue,
            buffer: m_buf,
            offset: 0,
            data: DataRef::Inline(secret.clone().into()),
        });
        assert!(matches!(mallory.wait_tag(m_inline), Response::Enqueued));
        let m_hit = mallory.send(Request::EnqueueWrite {
            queue: m_queue,
            buffer: m_buf,
            offset: 0,
            data: DataRef::Digest { digest, len: 64 },
        });
        assert!(matches!(mallory.wait_tag(m_hit), Response::Enqueued));
    }

    /// Aliasing safety end-to-end: the client keeps a reference to the
    /// payload it enqueued; the kernel's in-place mutation on the device
    /// must land in a private (copy-on-write) buffer, so the client's
    /// aliased bytes never change while the read still sees the mutation.
    #[test]
    fn kernel_mutation_does_not_corrupt_the_clients_payload() {
        let mgr = manager(ReconfigPolicy::Allow);
        let mut d = Driver::new(&mgr, PathCosts::local_grpc());
        let (_ctx, kernel, buf, queue) = setup_pipeline(&mut d);

        let payload: Payload = vec![7u8; 8].into();
        let wt = d.send(Request::EnqueueWrite {
            queue,
            buffer: buf,
            offset: 0,
            data: DataRef::Inline(payload.share()),
        });
        let kt = d.send(Request::EnqueueKernel {
            queue,
            kernel,
            work: [8, 1, 1],
        });
        let rt = d.send(Request::EnqueueRead {
            queue,
            buffer: buf,
            offset: 0,
            len: 8,
        });
        let ft = d.send(Request::Finish { queue });
        let _ = d.wait_tag(wt);
        let _ = d.wait_tag(kt);
        loop {
            let resp = d.recv();
            if resp.tag == rt {
                if let Response::Completed {
                    data: Some(DataRef::Inline(bytes)),
                    ..
                } = resp.body
                {
                    assert_eq!(bytes, vec![8u8; 8], "read sees the mutation");
                    break;
                }
            }
        }
        assert!(matches!(d.wait_tag(ft), Response::Completed { .. }));
        assert_eq!(payload, vec![7u8; 8], "client's aliased buffer untouched");
    }

    #[test]
    fn shm_data_path_round_trip() {
        let mgr = manager(ReconfigPolicy::Allow);
        let mut d = Driver::new(&mgr, PathCosts::local_shm());
        let shm = d.endpoint.shm.clone().expect("shm granted");
        let (_ctx, kernel, buf, queue) = setup_pipeline(&mut d);

        // Client stages the write payload in shared memory (the 1 copy).
        let region = shm.alloc(8).expect("shm alloc");
        shm.write(region, &[5; 8]).expect("shm write");
        d.send(Request::EnqueueWrite {
            queue,
            buffer: buf,
            offset: 0,
            data: DataRef::Shm {
                offset: region,
                len: 8,
            },
        });
        d.send(Request::EnqueueKernel {
            queue,
            kernel,
            work: [8, 1, 1],
        });
        let rt = d.send(Request::EnqueueRead {
            queue,
            buffer: buf,
            offset: 0,
            len: 8,
        });
        d.send(Request::Finish { queue });
        loop {
            let resp = d.recv();
            if resp.tag == rt {
                if let Response::Completed {
                    data: Some(DataRef::Shm { offset, len }),
                    ..
                } = resp.body
                {
                    assert_eq!(shm.read(offset, len).expect("shm read"), vec![6; 8]);
                    shm.free(offset).expect("free result region");
                    break;
                }
            }
        }
        shm.free(region).expect("free write region");
    }

    #[test]
    fn sessions_are_isolated() {
        let mgr = manager(ReconfigPolicy::Allow);
        let mut alice = Driver::new(&mgr, PathCosts::local_grpc());
        let mut mallory = Driver::new(&mgr, PathCosts::local_grpc());
        let actx = alice.handle(Request::CreateContext);
        let abuf = alice.handle(Request::CreateBuffer {
            context: actx,
            len: 16,
        });
        let mctx = mallory.handle(Request::CreateContext);
        let mqueue = mallory.handle(Request::CreateQueue { context: mctx });
        // Mallory guesses Alice's buffer handle value: denied, because
        // handles are session-scoped.
        let resp = mallory.call(Request::EnqueueWrite {
            queue: mqueue,
            buffer: abuf,
            offset: 0,
            data: DataRef::Synthetic(16),
        });
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::AccessDenied,
                    ..
                }
            ),
            "got {resp:?}"
        );
        let resp = mallory.call(Request::ReleaseBuffer { buffer: abuf });
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::AccessDenied,
                ..
            }
        ));
    }

    #[test]
    fn reconfiguration_policy_is_enforced() {
        let mgr = manager(ReconfigPolicy::Deny);
        let mut d = Driver::new(&mgr, PathCosts::local_grpc());
        let _ctx = d.handle(Request::CreateContext);
        let resp = d.call(Request::BuildProgram {
            bitstream: "incr".into(),
        });
        assert!(
            matches!(
                resp,
                Response::Error {
                    code: ErrorCode::ReconfigurationRefused,
                    ..
                }
            ),
            "got {resp:?}"
        );

        let validated = manager(ReconfigPolicy::Validate(Arc::new(
            |req: &ReconfigRequest| req.bitstream == "incr",
        )));
        let mut d = Driver::new(&validated, PathCosts::local_grpc());
        let _ctx = d.handle(Request::CreateContext);
        let _prog = d.handle(Request::BuildProgram {
            bitstream: "incr".into(),
        });
        let resp = d.call(Request::Reconfigure {
            bitstream: "other".into(),
        });
        assert!(matches!(
            resp,
            Response::Error {
                code: ErrorCode::ReconfigurationRefused,
                ..
            }
        ));
    }

    #[test]
    fn finish_waits_for_prior_tasks() {
        let mgr = manager(ReconfigPolicy::Allow);
        let mut d = Driver::new(&mgr, PathCosts::local_grpc());
        let ctx = d.handle(Request::CreateContext);
        let buf = d.handle(Request::CreateBuffer {
            context: ctx,
            len: 1 << 20,
        });
        let queue = d.handle(Request::CreateQueue { context: ctx });
        let wt = d.send(Request::EnqueueWrite {
            queue,
            buffer: buf,
            offset: 0,
            data: DataRef::Synthetic(1 << 20),
        });
        let _ = d.send(Request::Flush { queue });
        let ft = d.send(Request::Finish { queue });
        // The finish completion must come after (and not before) the write's.
        let mut write_done: Option<VirtualTime> = None;
        loop {
            let resp = d.recv();
            if resp.tag == wt {
                if let Response::Completed { ended_at, .. } = resp.body {
                    write_done = Some(ended_at);
                }
            } else if resp.tag == ft {
                if let Response::Completed { ended_at, .. } = resp.body {
                    let wd = write_done.expect("write completed before finish");
                    assert!(ended_at >= wd);
                    break;
                }
            }
        }
    }

    #[test]
    fn utilization_is_attributed_per_function() {
        let mgr = manager(ReconfigPolicy::Allow);
        let mut d = Driver::new(&mgr, PathCosts::local_grpc());
        let ctx = d.handle(Request::CreateContext);
        let buf = d.handle(Request::CreateBuffer {
            context: ctx,
            len: 1 << 20,
        });
        let queue = d.handle(Request::CreateQueue { context: ctx });
        d.send(Request::EnqueueWrite {
            queue,
            buffer: buf,
            offset: 0,
            data: DataRef::Synthetic(1 << 20),
        });
        let ft = d.send(Request::Finish { queue });
        loop {
            let resp = d.recv();
            if resp.tag == ft && matches!(resp.body, Response::Completed { .. }) {
                break;
            }
        }
        let board = mgr.board().lock();
        assert!(board.busy_tracker().busy_of("test-fn") > VirtualDuration::ZERO);
        drop(board);
        let scrape = mgr.scrape();
        assert!(
            scrape.contains("bf_fpga_utilization{device=\"fpga-test\"}"),
            "{scrape}"
        );
    }

    #[test]
    fn cross_node_connections_never_get_shm() {
        let mgr = manager(ReconfigPolicy::Allow);
        let endpoint = mgr.connect("far-away", PathCosts::remote_grpc());
        assert!(endpoint.shm.is_none());
        assert_eq!(endpoint.node, *node_b().id());
        assert_ne!(endpoint.node, *node_a().id());
    }

    #[test]
    fn disconnect_frees_resources() {
        let mgr = manager(ReconfigPolicy::Allow);
        let used_before = { mgr.board().lock().memory().used() };
        let mut d = Driver::new(&mgr, PathCosts::local_grpc());
        let ctx = d.handle(Request::CreateContext);
        let _buf = d.handle(Request::CreateBuffer {
            context: ctx,
            len: 1 << 20,
        });
        assert!(mgr.board().lock().memory().used() > used_before);
        let _ = d.call(Request::Disconnect);
        // The session thread frees the buffers on exit.
        for _ in 0..100 {
            if mgr.board().lock().memory().used() == used_before {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("buffers were not freed after disconnect");
    }

    #[test]
    fn tasks_from_two_clients_do_not_interleave() {
        // Two clients each submit a write→kernel→read task against their
        // own buffer; because tasks are atomic, each read must observe its
        // own kernel result (data = own_written + 1).
        let mgr = manager(ReconfigPolicy::Allow);
        let mut handles = Vec::new();
        for val in [10u8, 20u8] {
            let mgr = mgr.clone();
            handles.push(std::thread::spawn(move || {
                let mut d = Driver::new(&mgr, PathCosts::local_grpc());
                let (_ctx, kernel, buf, queue) = setup_pipeline(&mut d);
                for _round in 0..10 {
                    d.send(Request::EnqueueWrite {
                        queue,
                        buffer: buf,
                        offset: 0,
                        data: DataRef::Inline(vec![val; 8].into()),
                    });
                    d.send(Request::EnqueueKernel {
                        queue,
                        kernel,
                        work: [8, 1, 1],
                    });
                    let rt = d.send(Request::EnqueueRead {
                        queue,
                        buffer: buf,
                        offset: 0,
                        len: 8,
                    });
                    d.send(Request::Finish { queue });
                    loop {
                        let resp = d.recv();
                        if resp.tag == rt {
                            match resp.body {
                                Response::Completed {
                                    data: Some(DataRef::Inline(bytes)),
                                    ..
                                } => {
                                    assert_eq!(bytes, vec![val + 1; 8]);
                                    break;
                                }
                                Response::Enqueued => {} // FIRST ack; keep waiting
                                other => panic!("unexpected read response {other:?}"),
                            }
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
    }

    #[test]
    fn eight_clients_hammering_one_board_stay_isolated() {
        // Stress: 8 concurrent sessions, each looping write->kernel->read
        // against its own buffer with its own distinctive value; every
        // read must return that client's own (incremented) data.
        let mgr = manager(ReconfigPolicy::Allow);
        let mut handles = Vec::new();
        for client in 0..8u8 {
            let mgr = mgr.clone();
            handles.push(std::thread::spawn(move || {
                let costs = if client % 2 == 0 {
                    PathCosts::local_shm()
                } else {
                    PathCosts::local_grpc()
                };
                let mut d = Driver::new(&mgr, costs);
                let (_ctx, kernel, buf, queue) = setup_pipeline(&mut d);
                for round in 0..25u8 {
                    let val = client.wrapping_mul(31).wrapping_add(round);
                    d.send(Request::EnqueueWrite {
                        queue,
                        buffer: buf,
                        offset: 0,
                        data: DataRef::Inline(vec![val; 8].into()),
                    });
                    d.send(Request::EnqueueKernel {
                        queue,
                        kernel,
                        work: [8, 1, 1],
                    });
                    let rt = d.send(Request::EnqueueRead {
                        queue,
                        buffer: buf,
                        offset: 0,
                        len: 8,
                    });
                    d.send(Request::Finish { queue });
                    loop {
                        let resp = d.recv();
                        if resp.tag != rt {
                            continue;
                        }
                        match resp.body {
                            Response::Completed {
                                data: Some(data), ..
                            } => {
                                let bytes = match data {
                                    DataRef::Inline(b) => b.into_vec(),
                                    DataRef::Shm { offset, len } => {
                                        let shm = d.endpoint.shm.as_ref().expect("shm endpoint");
                                        let b = shm.read(offset, len).expect("shm read");
                                        shm.free(offset).expect("free");
                                        b.to_vec()
                                    }
                                    DataRef::Synthetic(_) | DataRef::Digest { .. } => {
                                        panic!("real data expected")
                                    }
                                };
                                assert_eq!(
                                    bytes,
                                    vec![val.wrapping_add(1); 8],
                                    "client {client} round {round} saw foreign data"
                                );
                                break;
                            }
                            Response::Enqueued => {}
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
        // All 8 x 25 tasks (plus fences) drained through one board without
        // a wedge; utilization is attributed to all eight tenants.
        let board = mgr.board().lock();
        assert_eq!(
            board.busy_tracker().owners().count(),
            1,
            "same owner label per connect name"
        );
    }

    /// Regression: the kernel-argument index arrives on the wire and
    /// argument slots materialize positionally at launch (`0..=max`), so
    /// an unchecked `u32::MAX` bought four billion iterations of
    /// launch-time work for one frame. The session must reject the index
    /// at the trust boundary, before it is stored.
    #[test]
    fn wire_kernel_arg_index_is_capped_at_the_trust_boundary() {
        let mut d = Driver::new(&manager(ReconfigPolicy::Allow), PathCosts::local_grpc());
        let (_ctx, kernel, buf, queue) = setup_pipeline(&mut d);
        for index in [bf_fpga::MAX_KERNEL_ARGS, u32::MAX] {
            match d.call(Request::SetKernelArg {
                kernel,
                index,
                arg: bf_rpc::WireArg::U32(1),
            }) {
                Response::Error { code, message } => {
                    assert_eq!(code, ErrorCode::InvalidLaunch, "index {index}");
                    assert!(message.contains("exceeds"), "index {index}: {message}");
                }
                other => panic!("index {index} accepted: {other:?}"),
            }
        }
        // The highest legal index is still accepted, and the session
        // stays usable after the NACKs: a launch with the original
        // argument binding completes.
        assert!(matches!(
            d.call(Request::SetKernelArg {
                kernel,
                index: bf_fpga::MAX_KERNEL_ARGS - 1,
                arg: bf_rpc::WireArg::U32(1),
            }),
            Response::Ack
        ));
        let _ = buf;
        let _ = queue;
    }

    #[test]
    fn client_id_display() {
        assert_eq!(ClientId(4).to_string(), "client#4");
    }
}

#[cfg(test)]
mod proptests {
    use std::sync::Arc;

    use bf_fpga::{Bitstream, Board, BoardSpec};
    use bf_model::{node_b, PcieGeneration, PcieLink, VirtualTime};
    use bf_ocl::BitstreamCatalog;
    use bf_rpc::{DataRef, PathCosts, Request, RequestEnvelope, WireArg};
    use parking_lot::Mutex;
    use proptest::prelude::*;

    use super::*;

    /// Arbitrary protocol requests: handle values are drawn from a small
    /// range so some hit real session handles and some are garbage.
    fn arb_request() -> impl Strategy<Value = Request> {
        let handle = 0u64..12;
        prop_oneof![
            Just(Request::CreateContext),
            Just(Request::GetDeviceInfo),
            prop_oneof![Just("fuzz-image".to_string()), Just("missing".to_string())]
                .prop_map(|bitstream| Request::BuildProgram { bitstream }),
            (
                handle.clone(),
                prop_oneof![Just("k".to_string()), Just("nope".to_string())]
            )
                .prop_map(|(program, name)| Request::CreateKernel { program, name }),
            (handle.clone(), 0u32..4, any::<u32>()).prop_map(|(kernel, index, v)| {
                Request::SetKernelArg {
                    kernel,
                    index,
                    arg: WireArg::U32(v),
                }
            }),
            (handle.clone(), 1u64..4096)
                .prop_map(|(context, len)| Request::CreateBuffer { context, len }),
            handle
                .clone()
                .prop_map(|buffer| Request::ReleaseBuffer { buffer }),
            handle
                .clone()
                .prop_map(|context| Request::CreateQueue { context }),
            (handle.clone(), handle.clone(), 0u64..64, 0u64..256).prop_map(
                |(queue, buffer, offset, len)| Request::EnqueueWrite {
                    queue,
                    buffer,
                    offset,
                    data: DataRef::Synthetic(len),
                }
            ),
            (handle.clone(), handle.clone(), 0u64..64, 0u64..256).prop_map(
                |(queue, buffer, offset, len)| Request::EnqueueRead {
                    queue,
                    buffer,
                    offset,
                    len
                }
            ),
            (handle.clone(), handle.clone()).prop_map(|(queue, kernel)| {
                Request::EnqueueKernel {
                    queue,
                    kernel,
                    work: [4, 1, 1],
                }
            }),
            (
                handle.clone(),
                handle.clone(),
                handle.clone(),
                0u64..64,
                0u64..64,
                0u64..128
            )
                .prop_map(|(queue, src, dst, src_offset, dst_offset, len)| {
                    Request::EnqueueCopy {
                        queue,
                        src,
                        dst,
                        src_offset,
                        dst_offset,
                        len,
                    }
                }),
            handle.clone().prop_map(|queue| Request::Flush { queue }),
            handle.prop_map(|queue| Request::Finish { queue }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Whatever (possibly nonsensical) request sequence a client sends,
        /// the manager never crashes, never wedges, and answers every tag
        /// with at least one response.
        #[test]
        fn manager_survives_arbitrary_request_sequences(
            requests in proptest::collection::vec(arb_request(), 1..40),
        ) {
            let board = Arc::new(Mutex::new(Board::new(
                BoardSpec::de5a_net(),
                PcieLink::new(PcieGeneration::Gen3, 8),
            )));
            let mut catalog = BitstreamCatalog::new();
            catalog.register(Arc::new(Bitstream::new("fuzz-image", vec![])));
            let manager = DeviceManager::new(
                DeviceManagerConfig::standalone("fpga-fuzz"),
                node_b(),
                board,
                catalog,
            );
            let endpoint = manager.connect("fuzzer", PathCosts::local_grpc());
            let total = requests.len() as u64;
            for (i, body) in requests.into_iter().enumerate() {
                endpoint
                    .channel
                    .send(&RequestEnvelope {
                        tag: i as u64 + 1,
                        client: endpoint.client,
                        sent_at: VirtualTime::ZERO,
                        body,
                    })
                    .expect("send");
            }
            // Every tag must be answered at least once (sync response or
            // the Enqueued ack of a command-queue method).
            let mut answered = std::collections::HashSet::new();
            while answered.len() < total as usize {
                let resp = endpoint
                    .channel
                    .recv_timeout(std::time::Duration::from_secs(10))
                    .expect("manager answered every tag");
                prop_assert!(resp.tag >= 1 && resp.tag <= total, "unknown tag {}", resp.tag);
                answered.insert(resp.tag);
            }
        }
    }
}
