//! The manager's single event loop: one thread multiplexing every client
//! session plus the central task queue.
//!
//! Replaces the old thread-per-session + worker-thread layout. A
//! [`Poller`] watches each session's bounded request stream and a control
//! waker; readiness events drive request handling, and sealed tasks drain
//! through the central FIFO queue inline (task *execution* is wall-clock
//! cheap — all latencies are virtual — so executing at the point the queue
//! drains preserves the paper's FIFO semantics exactly).
//!
//! Fairness comes from two mechanisms: the poller services ready sessions
//! round-robin, and each readiness event processes at most
//! [`FRAME_BATCH`] frames before the next scan — a flooding client keeps
//! its own bounded channel full (backpressure) but cannot starve its
//! neighbours.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use bf_rpc::{PollEvent, Poller, Token, TransportError};
// bf-lint: allow(raw_sync): control-plane receiver; only try_recv'd after a
// modeled waker readiness edge, so drains are schedule-deterministic
use crossbeam::channel::{Receiver, TryRecvError};

use crate::sync::atomic::Ordering;

use crate::manager::Shared;
use crate::session::{Session, SessionSeed};
use crate::task::Task;
use crate::worker;

/// Control-plane messages from manager handles to the event loop.
pub(crate) enum Control {
    /// A new client connected; adopt its session.
    Register(Box<SessionSeed>),
}

/// Upper bound on frames handled per readiness event, so one busy session
/// yields to the others between batches.
const FRAME_BATCH: usize = 32;

/// Flush-retry interval while some session has parked responses: a client
/// draining its completion stream does not wake the poller, so the loop
/// re-offers the backlog on a short timeout instead.
const FLUSH_RETRY: Duration = Duration::from_millis(1);

// bf-flow: entry(devmgr_events)
pub(crate) fn run_event_loop(
    shared: Arc<Shared>,
    control_rx: Receiver<Control>,
    mut poller: Poller,
    wake_token: Token,
) {
    let mut sessions: HashMap<Token, Session> = HashMap::new();
    let mut by_client: HashMap<u64, Token> = HashMap::new();
    let mut tasks: VecDeque<Task> = VecDeque::new();
    let mut control_open = true;

    loop {
        if !control_open && sessions.is_empty() {
            // Every manager handle and every session is gone.
            return;
        }
        let timeout = sessions
            .values()
            .any(|s| s.backlog() > 0)
            .then_some(FLUSH_RETRY);
        match poller.poll(timeout) {
            PollEvent::TimedOut => {}
            PollEvent::Ready(token) if token == wake_token => {
                loop {
                    match control_rx.try_recv() {
                        Ok(Control::Register(seed)) => {
                            let token = poller.register(seed.server.requests());
                            // bf-flow: allow(hot_alloc): one entry per live
                            // session, removed on reap — bounded by the
                            // connected-client count, not by traffic
                            by_client.insert(seed.client.0, token);
                            // bf-flow: allow(hot_alloc): same bound as above
                            sessions.insert(token, Session::new(shared.clone(), *seed));
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            // The last manager handle dropped: no further
                            // connects. Existing sessions are served until
                            // they close.
                            control_open = false;
                            poller.deregister(wake_token);
                            break;
                        }
                    }
                }
            }
            PollEvent::Ready(token) => {
                if let Some(session) = sessions.get_mut(&token) {
                    for _ in 0..FRAME_BATCH {
                        match session.server.try_recv() {
                            Ok(Some(env)) => session.handle_frame(env, &mut tasks),
                            Ok(None) => break,
                            Err(TransportError::Closed) => {
                                session.peer_hung_up();
                                break;
                            }
                            Err(_) => {
                                // Undecodable frame: the peer is broken.
                                session.force_close();
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Drain the central queue in FIFO order (Fig. 3 step 4), routing
        // completions back to the owning session.
        while let Some(task) = tasks.pop_front() {
            let responses = worker::execute_task(&shared, &task);
            if let Some(session) = by_client
                .get(&task.client.0)
                .and_then(|token| sessions.get_mut(token))
            {
                for env in responses {
                    session.queue_response(env);
                }
            }
        }
        // Re-offer parked responses, disconnect hopeless consumers, and
        // reap in one sweep — no scratch list of doomed tokens.
        let max_backlog = shared.config.max_pending_responses;
        sessions.retain(|token, session| {
            session.flush();
            if session.backlog() > max_backlog {
                // Slow consumer: cut the session loose rather than buffer
                // its completions without bound.
                session.force_close();
            }
            if !session.reapable() {
                return true;
            }
            poller.deregister(*token);
            by_client.remove(&session.client().0);
            session.cleanup();
            shared.connected.fetch_sub(1, Ordering::SeqCst);
            false
        });
    }
}
