//! Task execution: runs a sealed task's operations back-to-back on the
//! board (paper Fig. 3, step 4) and produces the per-operation completion
//! notifications (step 5).
//!
//! Called inline from the manager's event loop when a task reaches the
//! head of the central FIFO queue; the returned envelopes are routed onto
//! the owning session's bounded completion stream by the caller.

use std::sync::Arc;

use bf_fpga::{FpgaError, Payload};
use bf_rpc::{DataRef, ErrorCode, Response, ResponseEnvelope};

use crate::lock_order;
use crate::manager::Shared;
use crate::task::{Operation, Task};

/// Executes every operation of `task` and returns the completion (or
/// error) envelope for each, plus the fence completion when the task
/// carries a `finish_tag`.
///
/// Execution never stops early: a vanished client still advances the board
/// timeline so utilization accounting stays consistent.
pub(crate) fn execute_task(shared: &Arc<Shared>, task: &Task) -> Vec<ResponseEnvelope> {
    let device = shared.config.device_id.clone();
    let mut out = Vec::with_capacity(task.len() + 1);
    let mut last_end = task.arrival;
    for op in &task.ops {
        let tag = op.tag();
        let response = execute_op(shared, task, op);
        let (sent_at, body) = match response {
            Ok((started, ended, data)) => {
                last_end = last_end.max(ended);
                shared
                    .metrics
                    .histogram("bf_manager_op_latency_ms", &[("device", device.as_str())])
                    .observe((ended - started).as_millis_f64());
                (
                    ended,
                    Response::Completed {
                        started_at: started,
                        ended_at: ended,
                        data,
                    },
                )
            }
            Err((code, message)) => (last_end, Response::Error { code, message }),
        };
        out.push(ResponseEnvelope { tag, sent_at, body });
        shared
            .metrics
            .counter("bf_manager_ops_total", &[("device", device.as_str())])
            .inc();
    }
    if let Some(finish_tag) = task.finish_tag {
        // A finish fence drains everything ahead of it in the central
        // queue: its completion instant is the board's drain point, which
        // (by FIFO) covers every earlier task — including an empty fence's
        // predecessors.
        let drain = lock_order::tracked(&shared.board, "board").available_at();
        let ended = last_end.max(drain).max(task.arrival);
        out.push(ResponseEnvelope {
            tag: finish_tag,
            sent_at: ended,
            body: Response::Completed {
                started_at: task.arrival,
                ended_at: ended,
                data: None,
            },
        });
    }
    shared
        .metrics
        .counter("bf_manager_tasks_total", &[("device", device.as_str())])
        .inc();
    out
}

type OpOutcome = Result<
    (
        bf_model::VirtualTime,
        bf_model::VirtualTime,
        Option<DataRef>,
    ),
    (ErrorCode, String),
>;

fn execute_op(shared: &Arc<Shared>, task: &Task, op: &Operation) -> OpOutcome {
    let mut board = lock_order::tracked(&shared.board, "board");
    match op {
        Operation::Write {
            buffer,
            offset,
            data,
            digest,
            ..
        } => {
            let payload = resolve_payload(task, data)?;
            if let (Some(cache), Payload::Data(bytes)) = (&shared.cache, &payload) {
                // Inline/digest payloads carry the session-computed
                // digest; shm payloads only materialize here, so theirs
                // is computed here.
                let digest = digest.unwrap_or_else(|| bf_cache::content_digest(bytes));
                let len = bytes.len() as u64;
                // bf-taint: allow(taint_auth): digest and len describe
                // the *resolved* bytes measured on this side (content
                // identity), not a client claim — the session validated
                // or recomputed the digest before the task was staged.
                if cache.device_resident(buffer.0, *offset, digest, len) {
                    // Identical content already occupies the target
                    // region: skip the PCIe DMA outright. No board time
                    // is charged; the write completes at issue.
                    let now = task.arrival.max(board.available_at());
                    return Ok((now, now, None));
                }
                let timing = board
                    .write_buffer(*buffer, *offset, &payload, task.arrival, &task.owner)
                    .map_err(map_fpga_err)?;
                // bf-taint: allow(taint_auth): same content-identity
                // argument as the device_resident check above.
                cache.note_device_resident(buffer.0, *offset, digest, len);
                return Ok((timing.started_at, timing.ended_at, None));
            }
            let timing = board
                .write_buffer(*buffer, *offset, &payload, task.arrival, &task.owner)
                .map_err(map_fpga_err)?;
            Ok((timing.started_at, timing.ended_at, None))
        }
        Operation::Read {
            buffer,
            offset,
            len,
            ..
        } => {
            let (timing, payload) = board
                .read_buffer(*buffer, *offset, *len, task.arrival, &task.owner)
                .map_err(map_fpga_err)?;
            let data = stage_read_result(task, payload);
            Ok((timing.started_at, timing.ended_at, Some(data)))
        }
        Operation::Copy {
            src,
            dst,
            src_offset,
            dst_offset,
            len,
            ..
        } => {
            let timing = board
                .copy_buffer(
                    *src,
                    *dst,
                    *src_offset,
                    *dst_offset,
                    *len,
                    task.arrival,
                    &task.owner,
                )
                .map_err(map_fpga_err)?;
            if let Some(cache) = &shared.cache {
                // The copy clobbered part of the destination buffer.
                cache.invalidate_buffer(dst.0);
            }
            Ok((timing.started_at, timing.ended_at, None))
        }
        Operation::Kernel {
            name, invocation, ..
        } => {
            let timing = board
                .launch_kernel(name, invocation, task.arrival, &task.owner)
                .map_err(map_fpga_err)?;
            if let Some(cache) = &shared.cache {
                // A kernel may write any buffer it was handed; drop
                // residency for all of them rather than model dataflow.
                for arg in &invocation.args {
                    if let bf_fpga::KernelArg::Buffer(id) = arg {
                        cache.invalidate_buffer(id.0);
                    }
                }
            }
            Ok((timing.started_at, timing.ended_at, None))
        }
    }
}

/// Materializes a write payload from its wire reference: inline bytes pass
/// through, shm references are read out of the client's segment, synthetic
/// sizes stay synthetic.
fn resolve_payload(task: &Task, data: &DataRef) -> Result<Payload, (ErrorCode, String)> {
    match data {
        // A refcount bump: the device adopts the same bytes the wire
        // frame (or the client) still holds.
        DataRef::Inline(payload) => Ok(Payload::Data(payload.share().into_bytes())),
        DataRef::Synthetic(len) => Ok(Payload::Synthetic(*len)),
        DataRef::Shm { offset, len } => {
            let shm = task.shm.as_ref().ok_or((
                ErrorCode::InvalidLaunch,
                "shm payload on a connection without a segment".to_string(),
            ))?;
            // Zero-copy snapshot of the region.
            let bytes = shm
                .read(*offset, *len)
                .map_err(|e| (ErrorCode::OutOfBounds, e.to_string()))?;
            Ok(Payload::Data(bytes))
        }
        // Digest references are resolved against the payload cache at
        // session staging time; one reaching the worker is a bug.
        DataRef::Digest { digest, .. } => Err((
            ErrorCode::Internal,
            format!("unresolved digest reference {digest:#034x} reached the worker"),
        )),
    }
}

/// Ships a read result back: through the shm segment when available (the
/// client copies it out — the single retained copy), inline otherwise.
fn stage_read_result(task: &Task, payload: Payload) -> DataRef {
    match payload {
        Payload::Synthetic(len) => DataRef::Synthetic(len),
        Payload::Data(bytes) => {
            let len = bytes.len() as u64;
            if let Some(shm) = &task.shm {
                if let Ok(offset) = shm.alloc(len) {
                    // Adopt the device's read snapshot into the region —
                    // a refcount bump, not a copy.
                    if shm.write_bytes(offset, bytes.share()).is_ok() {
                        return DataRef::Shm { offset, len };
                    }
                    let _ = shm.free(offset);
                }
                // Segment exhausted: fall back to the inline path rather
                // than failing the read.
            }
            DataRef::Inline(bytes.into())
        }
    }
}

fn map_fpga_err(e: FpgaError) -> (ErrorCode, String) {
    let code = match &e {
        FpgaError::BufferNotFound(_) => ErrorCode::InvalidHandle,
        FpgaError::OutOfMemory { .. } => ErrorCode::OutOfResources,
        FpgaError::OutOfBounds { .. } => ErrorCode::OutOfBounds,
        FpgaError::NoBitstream | FpgaError::KernelNotFound(_) => ErrorCode::BuildFailure,
        FpgaError::InvalidKernelArgs(_) => ErrorCode::InvalidLaunch,
    };
    (code, e.to_string())
}
