//! Multi-operation tasks: the atomic unit of execution (paper §III-B).
//!
//! Command-queue methods accumulate in the client's *open task*; a flush
//! (explicit `clFlush`/`clFinish` or a blocking call) seals the task and
//! sends it to the manager's central queue, where the event loop executes
//! its operations back-to-back on the board. Atomicity is what keeps one
//! client's write→kernel→read sequence from interleaving with another
//! tenant's operations and corrupting results.

use bf_fpga::{BufferId, KernelInvocation};
use bf_model::VirtualTime;
use bf_rpc::{ClientId, DataRef, ShmSegment};

/// One operation inside a task, with the resolved board-level resources and
/// the client event tag to notify on completion.
#[derive(Debug, Clone)]
pub enum Operation {
    /// DMA data into a device buffer.
    Write {
        /// Client event tag.
        tag: u64,
        /// Resolved board buffer.
        buffer: BufferId,
        /// Destination offset.
        offset: u64,
        /// Payload reference (inline, shm region, or synthetic).
        data: DataRef,
        /// Content digest of the resolved payload when the session
        /// already computed one at staging time (caching enabled, inline
        /// or digest-addressed data), sparing the executor a second hash
        /// pass for device-tier residency tracking.
        digest: Option<u128>,
    },
    /// DMA data out of a device buffer.
    Read {
        /// Client event tag.
        tag: u64,
        /// Resolved board buffer.
        buffer: BufferId,
        /// Source offset.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// DDR-to-DDR copy between two device buffers.
    Copy {
        /// Client event tag.
        tag: u64,
        /// Resolved source buffer.
        src: BufferId,
        /// Resolved destination buffer.
        dst: BufferId,
        /// Source offset.
        src_offset: u64,
        /// Destination offset.
        dst_offset: u64,
        /// Bytes to copy.
        len: u64,
    },
    /// Launch a kernel.
    Kernel {
        /// Client event tag.
        tag: u64,
        /// Kernel name inside the configured bitstream.
        name: String,
        /// Snapshot of the launch (arguments resolved at enqueue time).
        invocation: KernelInvocation,
    },
}

impl Operation {
    /// The client event tag this operation notifies.
    pub fn tag(&self) -> u64 {
        match self {
            Operation::Write { tag, .. }
            | Operation::Read { tag, .. }
            | Operation::Copy { tag, .. }
            | Operation::Kernel { tag, .. } => *tag,
        }
    }
}

/// A sealed multi-operation task on the manager's central FIFO queue.
/// Completion notifications are routed back to the owning session by
/// `client` id.
#[derive(Debug)]
pub struct Task {
    /// Owning client session.
    pub client: ClientId,
    /// Function-instance name for utilization attribution.
    pub owner: String,
    /// Operations to execute back-to-back, in order.
    pub ops: Vec<Operation>,
    /// Virtual instant the task reached the manager (flush arrival).
    pub arrival: VirtualTime,
    /// The client's shared-memory segment, when the shm data path is used.
    pub shm: Option<ShmSegment>,
    /// When set, a `Finish` waits on this task: the worker sends a
    /// completion for this tag after the last operation.
    pub finish_tag: Option<u64>,
}

impl Task {
    /// Number of operations in the task.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the task carries no operations (a bare `Finish` fence).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_tags_are_extractable() {
        let w = Operation::Write {
            tag: 1,
            buffer: BufferId(1),
            offset: 0,
            data: DataRef::Synthetic(8),
            digest: None,
        };
        let r = Operation::Read {
            tag: 2,
            buffer: BufferId(1),
            offset: 0,
            len: 8,
        };
        let k = Operation::Kernel {
            tag: 3,
            name: "k".into(),
            invocation: KernelInvocation::new(vec![], 1),
        };
        assert_eq!(w.tag(), 1);
        assert_eq!(r.tag(), 2);
        assert_eq!(k.tag(), 3);
    }

    #[test]
    fn empty_task_is_a_fence() {
        let task = Task {
            client: ClientId(1),
            owner: "f".into(),
            ops: vec![],
            arrival: VirtualTime::ZERO,
            shm: None,
            finish_tag: Some(9),
        };
        assert!(task.is_empty());
        assert_eq!(task.len(), 0);
    }
}
