//! Generic kernel timing models.
//!
//! An FPGA accelerator's latency is a deterministic function of its launch
//! parameters (once the bitstream is fixed), so each workload attaches a
//! [`KernelTiming`] to its kernels. Workload crates fit the constants to the
//! paper's published single-node measurements (Fig. 4).

use serde::{Deserialize, Serialize};

use crate::time::VirtualDuration;

/// Deterministic kernel latency model evaluated against a work descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelTiming {
    /// A constant latency regardless of launch size.
    Fixed {
        /// The latency of every launch.
        latency: VirtualDuration,
    },
    /// `base + per_item * items`, e.g. a streaming kernel over pixels.
    LinearItems {
        /// Fixed launch overhead.
        base: VirtualDuration,
        /// Per-item cost in nanoseconds (fractional allowed).
        per_item_ns: f64,
    },
    /// `base + coeff * n^3`, e.g. dense matrix multiply on an `n × n` tile.
    CubicN {
        /// Fixed launch overhead.
        base: VirtualDuration,
        /// Cost per `n^3` unit, in nanoseconds.
        coeff_ns: f64,
    },
}

impl KernelTiming {
    /// Evaluates the model: `items` is interpreted per variant (ignored for
    /// `Fixed`, item count for `LinearItems`, the dimension `n` for
    /// `CubicN`).
    pub fn evaluate(&self, items: u64) -> VirtualDuration {
        match *self {
            KernelTiming::Fixed { latency } => latency,
            KernelTiming::LinearItems { base, per_item_ns } => {
                base + VirtualDuration::from_nanos((items as f64 * per_item_ns).round() as u64)
            }
            KernelTiming::CubicN { base, coeff_ns } => {
                let n = items as f64;
                base + VirtualDuration::from_nanos((n * n * n * coeff_ns).round() as u64)
            }
        }
    }

    /// Fits a `LinearItems` model through two measured points
    /// `(items_lo, t_lo)` and `(items_hi, t_hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the two item counts coincide or the fit would produce a
    /// negative per-item cost.
    pub fn fit_linear(
        items_lo: u64,
        t_lo: VirtualDuration,
        items_hi: u64,
        t_hi: VirtualDuration,
    ) -> Self {
        assert!(items_hi > items_lo, "need two distinct sizes to fit a line");
        let slope =
            (t_hi.as_nanos() as f64 - t_lo.as_nanos() as f64) / (items_hi - items_lo) as f64;
        assert!(slope >= 0.0, "latency must not decrease with size");
        let base_ns = t_lo.as_nanos() as f64 - slope * items_lo as f64;
        KernelTiming::LinearItems {
            base: VirtualDuration::from_nanos(base_ns.max(0.0) as u64),
            per_item_ns: slope,
        }
    }

    /// Fits a `CubicN` model through two measured points `(n_lo, t_lo)` and
    /// `(n_hi, t_hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the two dimensions coincide.
    pub fn fit_cubic(n_lo: u64, t_lo: VirtualDuration, n_hi: u64, t_hi: VirtualDuration) -> Self {
        assert!(n_hi > n_lo, "need two distinct sizes to fit a cubic");
        let cube = |n: u64| (n as f64).powi(3);
        let coeff = (t_hi.as_nanos() as f64 - t_lo.as_nanos() as f64) / (cube(n_hi) - cube(n_lo));
        let coeff = coeff.max(0.0);
        let base_ns = t_lo.as_nanos() as f64 - coeff * cube(n_lo);
        KernelTiming::CubicN {
            base: VirtualDuration::from_nanos(base_ns.max(0.0) as u64),
            coeff_ns: coeff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_items() {
        let t = KernelTiming::Fixed {
            latency: VirtualDuration::from_millis(3),
        };
        assert_eq!(t.evaluate(0), t.evaluate(1 << 30));
    }

    #[test]
    fn linear_fit_passes_through_both_points() {
        let lo = VirtualDuration::from_micros(270);
        let hi = VirtualDuration::from_micros(14_530);
        let fit = KernelTiming::fit_linear(100, lo, 2_073_600, hi);
        let got_lo = fit.evaluate(100);
        let got_hi = fit.evaluate(2_073_600);
        assert!((got_lo.as_nanos() as i64 - lo.as_nanos() as i64).abs() < 100);
        assert!((got_hi.as_nanos() as i64 - hi.as_nanos() as i64).abs() < 100);
    }

    #[test]
    fn cubic_fit_passes_through_both_points() {
        let lo = VirtualDuration::from_micros(450);
        let hi = VirtualDuration::from_secs_f64(3.571);
        let fit = KernelTiming::fit_cubic(16, lo, 4096, hi);
        let got_hi = fit.evaluate(4096);
        let err = (got_hi.as_secs_f64() - hi.as_secs_f64()).abs();
        assert!(err < 1e-3, "cubic fit error {err}");
    }

    #[test]
    fn cubic_grows_superlinearly() {
        let t = KernelTiming::CubicN {
            base: VirtualDuration::ZERO,
            coeff_ns: 1.0,
        };
        assert!(t.evaluate(200) > t.evaluate(100) * 4);
    }

    #[test]
    #[should_panic(expected = "distinct sizes")]
    fn degenerate_linear_fit_panics() {
        let _ = KernelTiming::fit_linear(
            10,
            VirtualDuration::ZERO,
            10,
            VirtualDuration::from_millis(1),
        );
    }
}
