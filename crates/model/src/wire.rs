//! Control-plane and serialization cost models for the API-remoting layer.
//!
//! The Remote OpenCL Library talks to Device Managers over a gRPC-like
//! protocol. Section IV-A of the paper attributes the remote data path's
//! overhead to (a) protobuf serialization, (b) extra buffer copies, and (c)
//! a roughly constant ~2 ms of control-signal round trips per OpenCL
//! operation pair. These models charge exactly those costs.

use serde::{Deserialize, Serialize};

use crate::link::MemcpyModel;
use crate::time::VirtualDuration;

/// Protobuf-like encode/decode cost: a fixed per-message cost plus a
/// per-byte cost for the payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SerializationModel {
    per_message: VirtualDuration,
    per_byte_ns: f64,
}

impl SerializationModel {
    /// Paper-calibrated protobuf cost: 20 µs per message plus ~0.16 ns per
    /// payload byte (~6 GB/s packed bytes-field encoding) — fitted so the
    /// full gRPC data path lands at Fig. 4(a)'s ~4x-native RTT at 2 GB.
    pub fn paper() -> Self {
        SerializationModel {
            per_message: VirtualDuration::from_micros(20),
            per_byte_ns: 0.16,
        }
    }

    /// Creates a custom serialization model.
    pub fn new(per_message: VirtualDuration, per_byte_ns: f64) -> Self {
        assert!(per_byte_ns >= 0.0, "per-byte cost cannot be negative");
        SerializationModel {
            per_message,
            per_byte_ns,
        }
    }

    /// Time to encode a message with a payload of `bytes` bytes.
    pub fn encode_time(&self, bytes: u64) -> VirtualDuration {
        self.per_message + VirtualDuration::from_nanos((bytes as f64 * self.per_byte_ns) as u64)
    }

    /// Time to decode a message with a payload of `bytes` bytes; decoding is
    /// charged the same as encoding.
    pub fn decode_time(&self, bytes: u64) -> VirtualDuration {
        self.encode_time(bytes)
    }
}

impl Default for SerializationModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// The gRPC control-plane latency between the Remote Library and a Device
/// Manager (request/response excluding bulk payload movement).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneModel {
    one_way: VirtualDuration,
}

impl ControlPlaneModel {
    /// The paper observes "~2 ms given by the gRPC control signals" per
    /// operation pair, i.e. ~1 ms each way (HTTP/2 framing, loopback or
    /// local-network stack, gRPC dispatch).
    pub fn paper() -> Self {
        ControlPlaneModel {
            one_way: VirtualDuration::from_micros(500),
        }
    }

    /// Creates a custom control-plane model with the given one-way latency.
    pub fn new(one_way: VirtualDuration) -> Self {
        ControlPlaneModel { one_way }
    }

    /// One-way control message latency.
    pub fn one_way(&self) -> VirtualDuration {
        self.one_way
    }

    /// Round-trip control latency.
    pub fn round_trip(&self) -> VirtualDuration {
        self.one_way * 2
    }
}

impl Default for ControlPlaneModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Which bulk-data path the Remote OpenCL Library uses to move buffer
/// contents to/from a Device Manager (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPathKind {
    /// Everything over gRPC: protobuf encode/decode plus three extra buffer
    /// copies relative to native (client marshal, server unmarshal, staging
    /// into the runtime's pinned buffer).
    Grpc,
    /// POSIX shared memory: the single copy retained for full OpenCL
    /// compatibility ("from four to one", §III-B).
    SharedMemory,
}

/// Aggregated cost model for one leg of a remote bulk-data movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPathModel {
    kind: DataPathKind,
    serialization: SerializationModel,
    memcpy: MemcpyModel,
    /// Extra copies on the gRPC path relative to native execution.
    grpc_extra_copies: u32,
}

impl DataPathModel {
    /// Paper-calibrated gRPC data path (3 extra copies + protobuf).
    pub fn grpc() -> Self {
        DataPathModel {
            kind: DataPathKind::Grpc,
            serialization: SerializationModel::paper(),
            memcpy: MemcpyModel::paper(),
            grpc_extra_copies: 3,
        }
    }

    /// Paper-calibrated shared-memory data path (exactly one copy).
    pub fn shared_memory() -> Self {
        DataPathModel {
            kind: DataPathKind::SharedMemory,
            serialization: SerializationModel::paper(),
            memcpy: MemcpyModel::paper(),
            grpc_extra_copies: 3,
        }
    }

    /// Builds the model for `kind` with paper calibration.
    pub fn for_kind(kind: DataPathKind) -> Self {
        match kind {
            DataPathKind::Grpc => Self::grpc(),
            DataPathKind::SharedMemory => Self::shared_memory(),
        }
    }

    /// The data path variant.
    pub fn kind(&self) -> DataPathKind {
        self.kind
    }

    /// Host-side cost of moving `bytes` payload bytes one way between the
    /// client function and the device manager (excluding the PCIe DMA that
    /// both native and remote execution pay, and excluding control-plane
    /// latency).
    pub fn payload_cost(&self, bytes: u64) -> VirtualDuration {
        match self.kind {
            DataPathKind::Grpc => {
                self.serialization.encode_time(bytes)
                    + self.serialization.decode_time(bytes)
                    + self.memcpy.copies_time(bytes, self.grpc_extra_copies)
            }
            DataPathKind::SharedMemory => self.memcpy.copy_time(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_round_trip_is_twice_one_way() {
        let c = ControlPlaneModel::paper();
        assert_eq!(c.round_trip(), c.one_way() * 2);
    }

    #[test]
    fn paper_control_rtt_is_about_one_ms() {
        let c = ControlPlaneModel::paper();
        assert!((c.round_trip().as_millis_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grpc_payload_cost_exceeds_shm() {
        let grpc = DataPathModel::grpc();
        let shm = DataPathModel::shared_memory();
        for bytes in [1u64 << 10, 1 << 20, 1 << 30] {
            assert!(
                grpc.payload_cost(bytes) > shm.payload_cost(bytes),
                "at {bytes} bytes"
            );
        }
    }

    #[test]
    fn shm_cost_is_a_single_copy() {
        let shm = DataPathModel::shared_memory();
        let copy = MemcpyModel::paper().copy_time(1 << 20);
        assert_eq!(shm.payload_cost(1 << 20), copy);
    }

    #[test]
    fn encode_and_decode_are_symmetric() {
        let s = SerializationModel::paper();
        assert_eq!(s.encode_time(12345), s.decode_time(12345));
    }

    #[test]
    fn serialization_grows_with_payload() {
        let s = SerializationModel::paper();
        assert!(s.encode_time(1 << 30) > s.encode_time(1 << 10));
    }
}
