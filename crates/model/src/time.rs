//! Virtual time primitives.
//!
//! Every latency reported by this repository is a *virtual-time* quantity:
//! the FPGA hardware, PCIe links and network of the paper's testbed are
//! simulated, so wall-clock time would be meaningless. [`VirtualTime`] is an
//! absolute instant (nanoseconds since the start of a scenario) and
//! [`VirtualDuration`] is a span between two instants.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the virtual timeline, in nanoseconds since the
/// start of the scenario.
///
/// ```
/// use bf_model::{VirtualDuration, VirtualTime};
///
/// let t = VirtualTime::ZERO + VirtualDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VirtualTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use bf_model::VirtualDuration;
///
/// let d = VirtualDuration::from_micros(1500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VirtualDuration(u64);

impl VirtualTime {
    /// The origin of the virtual timeline.
    pub const ZERO: VirtualTime = VirtualTime(0);
    /// The largest representable instant.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        VirtualTime(nanos)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub fn from_secs_f64(secs: f64) -> Self {
        VirtualTime((secs * 1e9).round().max(0.0) as u64)
    }

    /// Raw nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the origin as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.min(other.0))
    }
}

impl VirtualDuration {
    /// The zero-length span.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        VirtualDuration(nanos)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        VirtualDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        VirtualDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        VirtualDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, saturating negative values
    /// to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        VirtualDuration((secs * 1e9).round().max(0.0) as u64)
    }

    /// Creates a span from fractional milliseconds, saturating negative
    /// values to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The longer of two spans.
    pub fn max(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.min(other.0))
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float, saturating at zero.
    pub fn mul_f64(self, factor: f64) -> VirtualDuration {
        VirtualDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    fn sub(self, rhs: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for VirtualDuration {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for VirtualDuration {
    type Output = VirtualDuration;
    fn sub(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for VirtualDuration {
    fn sub_assign(&mut self, rhs: VirtualDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn mul(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn div(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 / rhs)
    }
}

impl Sum for VirtualDuration {
    fn sum<I: Iterator<Item = VirtualDuration>>(iter: I) -> Self {
        iter.fold(VirtualDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = VirtualTime::from_nanos(5_000);
        let d = VirtualDuration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 8_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(
            VirtualDuration::from_millis(2),
            VirtualDuration::from_micros(2_000)
        );
        assert_eq!(
            VirtualDuration::from_secs(1),
            VirtualDuration::from_millis(1_000)
        );
        assert_eq!(
            VirtualDuration::from_secs_f64(0.5),
            VirtualDuration::from_millis(500)
        );
        assert_eq!(
            VirtualDuration::from_millis_f64(1.5),
            VirtualDuration::from_micros(1_500)
        );
    }

    #[test]
    fn saturating_behaviour() {
        let early = VirtualTime::from_nanos(10);
        let late = VirtualTime::from_nanos(20);
        assert_eq!(early.saturating_since(late), VirtualDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_nanos(), 10);
        assert_eq!(early - late, VirtualDuration::ZERO);
        assert_eq!(
            VirtualDuration::from_nanos(1).saturating_sub(VirtualDuration::from_nanos(5)),
            VirtualDuration::ZERO
        );
    }

    #[test]
    fn negative_float_inputs_clamp_to_zero() {
        assert_eq!(VirtualDuration::from_secs_f64(-1.0), VirtualDuration::ZERO);
        assert_eq!(VirtualTime::from_secs_f64(-2.0), VirtualTime::ZERO);
        assert_eq!(
            VirtualDuration::from_millis(3).mul_f64(-1.0),
            VirtualDuration::ZERO
        );
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(VirtualDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(VirtualDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(VirtualDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(VirtualDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn min_max_behave() {
        let a = VirtualTime::from_nanos(1);
        let b = VirtualTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = VirtualDuration::from_nanos(1);
        let db = VirtualDuration::from_nanos(2);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }

    #[test]
    fn sum_of_durations() {
        let total: VirtualDuration = (1..=4).map(VirtualDuration::from_millis).sum();
        assert_eq!(total, VirtualDuration::from_millis(10));
    }
}
