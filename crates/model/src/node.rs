//! Node descriptions for the paper's three-machine cluster.
//!
//! * **Node A** (master): Xeon W3530 @ 2.80 GHz, DDR3, PCIe **gen2** x8 to
//!   its DE5a-Net board — the slowest machine; the paper observes it
//!   saturating first under high load.
//! * **Nodes B, C** (workers): Core i7-6700 @ 3.40 GHz, DDR4, PCIe **gen3**
//!   x8 — identical.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::link::{MemcpyModel, PcieGeneration, PcieLink};
use crate::time::VirtualDuration;

/// Identifier of a cluster node.
///
/// ```
/// use bf_model::NodeId;
///
/// let a = NodeId::new("A");
/// assert_eq!(a.to_string(), "A");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(String);

impl NodeId {
    /// Creates a node id from any string-like value.
    pub fn new(id: impl Into<String>) -> Self {
        NodeId(id.into())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> Self {
        NodeId::new(s)
    }
}

/// Static description of a cluster node: its host CPU/memory performance and
/// the PCIe link to its FPGA board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    id: NodeId,
    pcie: PcieLink,
    memcpy: MemcpyModel,
    /// Multiplier on host-side (CPU) processing costs relative to a worker
    /// node; >1 means slower.
    cpu_factor: f64,
    /// Base host-side request handling cost on this node (function wrapper +
    /// gateway fan-in), before the `cpu_factor` multiplier.
    base_host_overhead: VirtualDuration,
}

impl NodeSpec {
    /// Creates a node spec.
    ///
    /// # Panics
    ///
    /// Panics if `cpu_factor` is not strictly positive.
    pub fn new(
        id: NodeId,
        pcie: PcieLink,
        memcpy: MemcpyModel,
        cpu_factor: f64,
        base_host_overhead: VirtualDuration,
    ) -> Self {
        assert!(cpu_factor > 0.0, "cpu_factor must be positive");
        NodeSpec {
            id,
            pcie,
            memcpy,
            cpu_factor,
            base_host_overhead,
        }
    }

    /// The node id.
    pub fn id(&self) -> &NodeId {
        &self.id
    }

    /// The PCIe link to the node's FPGA board.
    pub fn pcie(&self) -> &PcieLink {
        &self.pcie
    }

    /// The node's host-memory copy model.
    pub fn memcpy(&self) -> &MemcpyModel {
        &self.memcpy
    }

    /// CPU slowness multiplier relative to a worker node.
    pub fn cpu_factor(&self) -> f64 {
        self.cpu_factor
    }

    /// Host-side request overhead (function wrapper + gateway processing)
    /// on this node, with the CPU factor applied.
    pub fn host_overhead(&self) -> VirtualDuration {
        self.base_host_overhead.mul_f64(self.cpu_factor)
    }

    /// Scales an arbitrary CPU-bound cost by this node's CPU factor.
    pub fn scale_cpu(&self, d: VirtualDuration) -> VirtualDuration {
        d.mul_f64(self.cpu_factor)
    }
}

/// The paper's master node A: gen2 x8 PCIe, DDR3, older Xeon.
pub fn node_a() -> NodeSpec {
    NodeSpec::new(
        NodeId::new("A"),
        PcieLink::new(PcieGeneration::Gen2, 8),
        MemcpyModel::new(8.0e9),
        2.2,
        VirtualDuration::from_millis_f64(3.5),
    )
}

/// The paper's worker node B: gen3 x8 PCIe, DDR4, i7-6700.
pub fn node_b() -> NodeSpec {
    worker_node("B")
}

/// The paper's worker node C: identical to B.
pub fn node_c() -> NodeSpec {
    worker_node("C")
}

fn worker_node(id: &str) -> NodeSpec {
    NodeSpec::new(
        NodeId::new(id),
        PcieLink::new(PcieGeneration::Gen3, 8),
        MemcpyModel::paper(),
        1.0,
        VirtualDuration::from_millis_f64(3.5),
    )
}

/// The full three-node testbed of Section IV, in the paper's order A, B, C.
pub fn paper_cluster() -> Vec<NodeSpec> {
    vec![node_a(), node_b(), node_c()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_has_one_master_and_two_workers() {
        let nodes = paper_cluster();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0].id().as_str(), "A");
        assert_eq!(nodes[0].pcie().generation(), PcieGeneration::Gen2);
        for n in &nodes[1..] {
            assert_eq!(n.pcie().generation(), PcieGeneration::Gen3);
            assert!((n.cpu_factor() - 1.0).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn node_a_is_slower_everywhere() {
        let a = node_a();
        let b = node_b();
        assert!(a.host_overhead() > b.host_overhead());
        assert!(a.pcie().effective_bandwidth() < b.pcie().effective_bandwidth());
        assert!(
            a.memcpy().copy_time(1 << 20) > b.memcpy().copy_time(1 << 20),
            "DDR3 should copy slower than DDR4"
        );
    }

    #[test]
    fn workers_are_identical_up_to_id() {
        let b = node_b();
        let c = node_c();
        assert_ne!(b.id(), c.id());
        assert_eq!(b.pcie(), c.pcie());
        assert_eq!(b.host_overhead(), c.host_overhead());
    }

    #[test]
    fn scale_cpu_applies_factor() {
        let a = node_a();
        let d = VirtualDuration::from_millis(10);
        assert_eq!(a.scale_cpu(d), d.mul_f64(a.cpu_factor()));
    }
}
