//! A shared, monotonically advancing virtual clock.
//!
//! In *direct mode* the BlastFunction components run on real threads while
//! latencies are computed on the virtual timeline. Each participant (client
//! application, device manager worker, …) observes completion timestamps and
//! advances a shared [`VirtualClock`]; the clock only ever moves forward, so
//! concurrent advances from several threads are safe and deterministic given
//! a deterministic set of observed timestamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{VirtualDuration, VirtualTime};

/// A thread-safe monotonic virtual clock.
///
/// Cloning a `VirtualClock` yields a handle to the *same* timeline.
///
/// ```
/// use bf_model::{VirtualClock, VirtualDuration};
///
/// let clock = VirtualClock::new();
/// let handle = clock.clone();
/// clock.advance_by(VirtualDuration::from_millis(5));
/// assert_eq!(handle.now().as_millis_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock positioned at the timeline origin.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock positioned at `start`.
    pub fn starting_at(start: VirtualTime) -> Self {
        VirtualClock {
            nanos: Arc::new(AtomicU64::new(start.as_nanos())),
        }
    }

    /// The current instant.
    pub fn now(&self) -> VirtualTime {
        VirtualTime::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    /// Moves the clock forward to `t` if `t` is later than the current
    /// instant; otherwise leaves it unchanged. Returns the new current
    /// instant.
    pub fn advance_to(&self, t: VirtualTime) -> VirtualTime {
        self.nanos.fetch_max(t.as_nanos(), Ordering::SeqCst);
        self.now()
    }

    /// Moves the clock forward by `d` relative to the instant observed at
    /// the start of the call and returns the new instant.
    ///
    /// Note that under concurrent use the clock may end up further ahead
    /// than `now + d` if another thread advanced it in the meantime; the
    /// clock never moves backwards.
    pub fn advance_by(&self, d: VirtualDuration) -> VirtualTime {
        let target = self.now() + d;
        self.advance_to(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = VirtualClock::new();
        clock.advance_to(VirtualTime::from_nanos(100));
        clock.advance_to(VirtualTime::from_nanos(50));
        assert_eq!(clock.now(), VirtualTime::from_nanos(100));
    }

    #[test]
    fn clones_share_the_timeline() {
        let clock = VirtualClock::new();
        let other = clock.clone();
        other.advance_by(VirtualDuration::from_micros(7));
        assert_eq!(clock.now(), VirtualTime::from_nanos(7_000));
    }

    #[test]
    fn starting_at_offsets_origin() {
        let clock = VirtualClock::starting_at(VirtualTime::from_nanos(42));
        assert_eq!(clock.now().as_nanos(), 42);
    }

    #[test]
    fn concurrent_advances_never_go_backwards() {
        let clock = VirtualClock::new();
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let c = clock.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..1_000u64 {
                    c.advance_to(VirtualTime::from_nanos(i * 1_000 + j));
                }
            }));
        }
        for h in handles {
            h.join().expect("thread panicked");
        }
        assert_eq!(clock.now(), VirtualTime::from_nanos(7_999));
    }
}
