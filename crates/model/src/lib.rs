#![forbid(unsafe_code)]

//! # bf-model — virtual time and calibrated cost models
//!
//! Foundation crate of the BlastFunction reproduction. Everything the rest
//! of the workspace measures is expressed on a *virtual timeline*
//! ([`VirtualTime`], [`VirtualDuration`], [`VirtualClock`]) and every
//! simulated hardware/infrastructure element charges time through one of
//! the cost models defined here:
//!
//! * [`PcieLink`] — the board's host connector (gen2 on node A, gen3 on B/C);
//! * [`MemcpyModel`] — host DRAM copies (shared-memory single copy, gRPC's
//!   extra copies);
//! * [`EthernetModel`] — the 1 Gb/s cluster fabric;
//! * [`SerializationModel`], [`ControlPlaneModel`], [`DataPathModel`] — the
//!   gRPC-like API-remoting costs of the Remote OpenCL Library;
//! * [`KernelTiming`] — per-accelerator latency models fitted to the
//!   paper's Fig. 4 measurements;
//! * [`NodeSpec`] / [`paper_cluster`] — the three-node testbed.
//!
//! ```
//! use bf_model::{paper_cluster, VirtualClock, VirtualDuration};
//!
//! let cluster = paper_cluster();
//! let clock = VirtualClock::new();
//! let write = cluster[1].pcie().transfer_time(8 << 20);
//! clock.advance_by(write);
//! assert!(clock.now().as_millis_f64() > 1.0);
//! ```

mod clock;
mod link;
mod node;
mod time;
mod timing;
mod wire;

pub use clock::VirtualClock;
pub use link::{EthernetModel, MemcpyModel, PcieGeneration, PcieLink};
pub use node::{node_a, node_b, node_c, paper_cluster, NodeId, NodeSpec};
pub use time::{VirtualDuration, VirtualTime};
pub use timing::KernelTiming;
pub use wire::{ControlPlaneModel, DataPathKind, DataPathModel, SerializationModel};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #[test]
        fn time_add_then_sub_is_identity(base in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
            let t = VirtualTime::from_nanos(base);
            let dur = VirtualDuration::from_nanos(d);
            prop_assert_eq!((t + dur) - t, dur);
        }

        #[test]
        fn pcie_transfer_time_is_monotonic(a in 0u64..1 << 34, b in 0u64..1 << 34) {
            let link = PcieLink::new(PcieGeneration::Gen3, 8);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(link.transfer_time(lo) <= link.transfer_time(hi));
        }

        #[test]
        fn grpc_always_costs_at_least_shm(bytes in 0u64..1 << 32) {
            let grpc = DataPathModel::grpc();
            let shm = DataPathModel::shared_memory();
            prop_assert!(grpc.payload_cost(bytes) >= shm.payload_cost(bytes));
        }

        #[test]
        fn clock_advance_never_goes_backwards(steps in proptest::collection::vec(0u64..1 << 40, 1..64)) {
            let clock = VirtualClock::new();
            let mut last = clock.now();
            for s in steps {
                let now = clock.advance_to(VirtualTime::from_nanos(s));
                prop_assert!(now >= last);
                last = now;
            }
        }

        #[test]
        fn linear_fit_interpolates_monotonically(
            lo in 1u64..1000,
            span in 1u64..1_000_000,
            t_lo in 0u64..10_000_000,
            extra in 0u64..10_000_000_000,
        ) {
            let hi = lo + span;
            let fit = KernelTiming::fit_linear(
                lo,
                VirtualDuration::from_nanos(t_lo),
                hi,
                VirtualDuration::from_nanos(t_lo + extra),
            );
            let mid = lo + span / 2;
            prop_assert!(fit.evaluate(lo) <= fit.evaluate(mid));
            prop_assert!(fit.evaluate(mid) <= fit.evaluate(hi));
        }
    }
}
