//! Data-movement cost models: PCI Express links, host memory copies and the
//! cluster Ethernet fabric.
//!
//! The constants are calibrated from the paper's own single-node
//! measurements (Section IV-A); see `DESIGN.md` for the derivation.

use serde::{Deserialize, Serialize};

use crate::time::VirtualDuration;

/// PCI Express generation of a board's host connector.
///
/// The paper's master node (node A) hosts its Terasic DE5a-Net behind a
/// gen2 x8 connector, the workers (B, C) behind gen3 x8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGeneration {
    /// PCIe 2.0: 500 MB/s raw per lane.
    Gen2,
    /// PCIe 3.0: ~985 MB/s raw per lane.
    Gen3,
}

impl PcieGeneration {
    /// Raw per-lane throughput in bytes/second.
    pub fn raw_lane_bytes_per_sec(self) -> f64 {
        match self {
            PcieGeneration::Gen2 => 500.0e6,
            PcieGeneration::Gen3 => 985.0e6,
        }
    }
}

/// A PCIe link between host memory and the FPGA board.
///
/// ```
/// use bf_model::{PcieGeneration, PcieLink};
///
/// let link = PcieLink::new(PcieGeneration::Gen3, 8);
/// let t = link.transfer_time(8 << 20); // 8 MiB DMA
/// assert!(t.as_millis_f64() > 1.0 && t.as_millis_f64() < 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieLink {
    generation: PcieGeneration,
    lanes: u8,
    /// Fraction of raw bandwidth achievable by the DMA engine (protocol
    /// overhead, TLP headers, alignment).
    efficiency: f64,
    /// Fixed DMA setup / doorbell cost per transfer.
    setup: VirtualDuration,
}

impl PcieLink {
    /// Creates a link with the default efficiency (76%) and DMA setup cost
    /// (100 µs) used throughout the reproduction.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(generation: PcieGeneration, lanes: u8) -> Self {
        assert!(lanes > 0, "a PCIe link needs at least one lane");
        PcieLink {
            generation,
            lanes,
            efficiency: 0.76,
            setup: VirtualDuration::from_micros(100),
        }
    }

    /// Overrides the achievable-bandwidth efficiency factor.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not within `(0, 1]`.
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        self.efficiency = efficiency;
        self
    }

    /// Overrides the fixed per-transfer setup cost.
    pub fn with_setup(mut self, setup: VirtualDuration) -> Self {
        self.setup = setup;
        self
    }

    /// The link generation.
    pub fn generation(&self) -> PcieGeneration {
        self.generation
    }

    /// The number of lanes.
    pub fn lanes(&self) -> u8 {
        self.lanes
    }

    /// Effective achievable bandwidth in bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.generation.raw_lane_bytes_per_sec() * f64::from(self.lanes) * self.efficiency
    }

    /// Time for one DMA of `bytes` bytes across the link.
    pub fn transfer_time(&self, bytes: u64) -> VirtualDuration {
        self.setup + VirtualDuration::from_secs_f64(bytes as f64 / self.effective_bandwidth())
    }
}

/// Host DRAM copy model (used for the single retained copy of the
/// shared-memory data path and for gRPC's extra buffer copies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemcpyModel {
    bytes_per_sec: f64,
}

impl MemcpyModel {
    /// The paper's shm overhead of 155 ms for a 2 GB transfer implies a
    /// ~13 GB/s single-threaded copy.
    pub const PAPER_BYTES_PER_SEC: f64 = 13.0e9;

    /// Creates a copy model with the paper-calibrated bandwidth.
    pub fn paper() -> Self {
        MemcpyModel {
            bytes_per_sec: Self::PAPER_BYTES_PER_SEC,
        }
    }

    /// Creates a copy model with an explicit bandwidth in bytes/second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "memcpy bandwidth must be positive");
        MemcpyModel { bytes_per_sec }
    }

    /// Time to copy `bytes` bytes once.
    pub fn copy_time(&self, bytes: u64) -> VirtualDuration {
        VirtualDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Time to copy `bytes` bytes `copies` times.
    pub fn copies_time(&self, bytes: u64, copies: u32) -> VirtualDuration {
        self.copy_time(bytes) * u64::from(copies)
    }
}

impl Default for MemcpyModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// The 1 Gb/s Ethernet fabric connecting the paper's three nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EthernetModel {
    bytes_per_sec: f64,
    one_way_latency: VirtualDuration,
}

impl EthernetModel {
    /// 1 Gb/s with a 150 µs one-way latency (switch + kernel stack), as in
    /// the paper's local network.
    pub fn paper() -> Self {
        EthernetModel {
            bytes_per_sec: 125.0e6,
            one_way_latency: VirtualDuration::from_micros(150),
        }
    }

    /// Creates a custom fabric model.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn new(bytes_per_sec: f64, one_way_latency: VirtualDuration) -> Self {
        assert!(bytes_per_sec > 0.0, "network bandwidth must be positive");
        EthernetModel {
            bytes_per_sec,
            one_way_latency,
        }
    }

    /// One-way message latency excluding payload serialization time.
    pub fn one_way_latency(&self) -> VirtualDuration {
        self.one_way_latency
    }

    /// Time for a one-way transfer of `bytes` payload bytes.
    pub fn transfer_time(&self, bytes: u64) -> VirtualDuration {
        self.one_way_latency + VirtualDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }
}

impl Default for EthernetModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_is_about_twice_gen2() {
        let g2 = PcieLink::new(PcieGeneration::Gen2, 8);
        let g3 = PcieLink::new(PcieGeneration::Gen3, 8);
        let ratio = g3.effective_bandwidth() / g2.effective_bandwidth();
        assert!((ratio - 1.97).abs() < 0.05, "ratio was {ratio}");
    }

    #[test]
    fn transfer_time_is_monotonic_in_size() {
        let link = PcieLink::new(PcieGeneration::Gen3, 8);
        let mut prev = VirtualDuration::ZERO;
        for bytes in [0u64, 1 << 10, 1 << 20, 1 << 30] {
            let t = link.transfer_time(bytes);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn small_transfers_are_dominated_by_setup() {
        let link = PcieLink::new(PcieGeneration::Gen3, 8);
        let t = link.transfer_time(1 << 10);
        assert!((t.as_millis_f64() - 0.1).abs() < 0.01, "got {t}");
    }

    #[test]
    fn memcpy_paper_calibration_matches_155ms_for_2gb() {
        let m = MemcpyModel::paper();
        let t = m.copy_time(2 << 30);
        assert!((t.as_millis_f64() - 165.0).abs() < 15.0, "got {t}");
    }

    #[test]
    fn memcpy_multiple_copies_scale_linearly() {
        let m = MemcpyModel::new(1e9);
        assert_eq!(m.copies_time(1_000, 3), m.copy_time(1_000) * 3);
    }

    #[test]
    fn ethernet_large_payload_bound_by_bandwidth() {
        let net = EthernetModel::paper();
        let t = net.transfer_time(125_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01, "got {t}");
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lane_link_is_rejected() {
        let _ = PcieLink::new(PcieGeneration::Gen3, 0);
    }
}
