#![forbid(unsafe_code)]

//! # bf-cluster — the Kubernetes substrate
//!
//! The Accelerators Registry integrates with a cloud orchestrator
//! (Kubernetes in the paper) to intercept function-instance creation,
//! patch the instance (environment variables, shared-memory volumes,
//! forced host allocation) and migrate instances between nodes with
//! Kubernetes' create-before-delete semantics. This crate provides exactly
//! that surface:
//!
//! * [`Cluster`] — nodes plus the instance store;
//! * a **mutating admission hook** ([`Cluster::set_admission_hook`]) called
//!   synchronously on every creation, which is how the registry's
//!   allocation algorithm patches instances;
//! * **watch streams** ([`Cluster::watch`]) delivering
//!   [`WatchEvent`]s;
//! * [`Cluster::replace_instance`] — the migration primitive: the
//!   replacement is created (and re-admitted, hence re-allocated) *before*
//!   the old instance is deleted.
//!
//! ```
//! use bf_cluster::{Cluster, InstanceTemplate};
//! use bf_model::paper_cluster;
//!
//! # fn main() -> Result<(), bf_cluster::ClusterError> {
//! let cluster = Cluster::new(paper_cluster());
//! let mut events = cluster.watch();
//! let inst = cluster.create_instance(InstanceTemplate::new("sobel-1"))?;
//! assert!(inst.node.is_some(), "the scheduler places every instance");
//! assert!(matches!(
//!     events.try_next(),
//!     Some(bf_cluster::WatchEvent::Created(_))
//! ));
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bf_model::{NodeId, NodeSpec};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Identifier of a function instance (pod).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pod-{}", self.0)
    }
}

/// Errors raised by the cluster API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The instance id is unknown (deleted or never created).
    UnknownInstance(InstanceId),
    /// A node name did not match any cluster node.
    UnknownNode(String),
    /// The admission hook rejected the instance.
    AdmissionDenied(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownInstance(id) => write!(f, "instance {id} not found"),
            ClusterError::UnknownNode(n) => write!(f, "node {n:?} not in the cluster"),
            ClusterError::AdmissionDenied(m) => write!(f, "admission denied: {m}"),
        }
    }
}

impl Error for ClusterError {}

/// What a deployment asks for: the pod template of a function instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstanceTemplate {
    /// Function (deployment) name, e.g. `"sobel-1"`.
    pub function: String,
    /// Requested environment.
    pub env: BTreeMap<String, String>,
    /// Labels/annotations (the registry reads the device query from here).
    pub labels: BTreeMap<String, String>,
}

impl InstanceTemplate {
    /// A template for `function` with empty env/labels.
    pub fn new(function: impl Into<String>) -> Self {
        InstanceTemplate {
            function: function.into(),
            ..Default::default()
        }
    }

    /// Adds a label.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(key.into(), value.into());
        self
    }

    /// Adds an environment variable.
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.insert(key.into(), value.into());
        self
    }
}

/// A scheduled (or about-to-be-scheduled) function instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceSpec {
    /// Unique id.
    pub id: InstanceId,
    /// Function (deployment) name.
    pub function: String,
    /// Host allocation; the admission hook may force it, otherwise the
    /// scheduler fills it in.
    pub node: Option<NodeId>,
    /// Environment (the registry injects `DEVICE_MANAGER_ADDRESS` here).
    pub env: BTreeMap<String, String>,
    /// Mounted volumes (the registry injects the shared-memory volume).
    pub volumes: Vec<String>,
    /// Labels/annotations.
    pub labels: BTreeMap<String, String>,
}

/// Events delivered on watch streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchEvent {
    /// An instance was created (post-admission, post-scheduling).
    Created(InstanceSpec),
    /// An instance was patched.
    Patched(InstanceSpec),
    /// An instance was deleted.
    Deleted(InstanceId),
}

/// The mutating admission hook: may patch the instance (env, volumes,
/// forced node) or reject it with a message.
pub type AdmissionHook = Arc<dyn Fn(&mut InstanceSpec) -> Result<(), String> + Send + Sync>;

/// Deterministic counters for watch-path work, used by the scale harness
/// to quantify delivery cost: `deliveries / events` is the per-event
/// channel-send amplification across watchers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchStats {
    /// Lifecycle events generated by cluster mutations.
    pub events: u64,
    /// Channel sends performed to deliver them (one per watcher per
    /// event without coalescing; one per watcher per *batch* with it).
    pub deliveries: u64,
}

/// A consumer's end of a watch stream (see [`Cluster::watch`]).
///
/// Events are delivered strictly in mutation order. Delivery is by
/// batch: with coalescing ([`Cluster::with_watch_coalescing`]) many
/// events share one channel send, and the stream unpacks them here, so
/// consumers keep a per-event API either way.
#[derive(Debug)]
pub struct WatchStream {
    rx: Receiver<Vec<WatchEvent>>,
    buf: VecDeque<WatchEvent>,
}

impl WatchStream {
    /// Pops the next pending event, or `None` when nothing is pending.
    pub fn try_next(&mut self) -> Option<WatchEvent> {
        loop {
            if let Some(event) = self.buf.pop_front() {
                return Some(event);
            }
            match self.rx.try_recv() {
                Ok(batch) => self.buf.extend(batch),
                Err(_) => return None,
            }
        }
    }

    /// Blocks for the next event; `None` means the cluster was dropped.
    pub fn next_blocking(&mut self) -> Option<WatchEvent> {
        loop {
            if let Some(event) = self.buf.pop_front() {
                return Some(event);
            }
            match self.rx.recv() {
                Ok(batch) => self.buf.extend(batch),
                Err(_) => return None,
            }
        }
    }
}

struct ClusterInner {
    nodes: Vec<NodeSpec>,
    instances: BTreeMap<InstanceId, InstanceSpec>,
    watchers: Vec<Sender<Vec<WatchEvent>>>,
    admission: Option<AdmissionHook>,
    next_id: u64,
    round_robin: usize,
    watch_stats: WatchStats,
    /// Watch-delivery coalescing window (events per delivery); 1 means
    /// one delivery per event.
    watch_coalesce: usize,
    /// Events generated but not yet delivered (< one coalescing window).
    pending: Vec<WatchEvent>,
}

/// The cluster control plane.
///
/// Cloning yields another handle to the same cluster.
#[derive(Clone)]
pub struct Cluster {
    cluster_state: Arc<Mutex<ClusterInner>>,
}

impl Cluster {
    /// Creates a cluster over `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty — a cluster needs somewhere to schedule.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        Cluster {
            cluster_state: Arc::new(Mutex::new(ClusterInner {
                nodes,
                instances: BTreeMap::new(),
                watchers: Vec::new(),
                admission: None,
                next_id: 1,
                round_robin: 0,
                watch_stats: WatchStats::default(),
                watch_coalesce: 1,
                pending: Vec::new(),
            })),
        }
    }

    /// The cluster's nodes.
    pub fn nodes(&self) -> Vec<NodeSpec> {
        self.cluster_state.lock().nodes.clone()
    }

    /// Looks a node up by id.
    pub fn node(&self, id: &NodeId) -> Option<NodeSpec> {
        self.cluster_state
            .lock()
            .nodes
            .iter()
            .find(|n| n.id() == id)
            .cloned()
    }

    /// Installs the mutating admission hook (the registry's interception
    /// point). Replaces any previous hook.
    pub fn set_admission_hook(&self, hook: AdmissionHook) {
        self.cluster_state.lock().admission = Some(hook);
    }

    /// Opens a watch stream; events from now on are delivered in order.
    pub fn watch(&self) -> WatchStream {
        // bf-lint: allow(unbounded_channel): control-plane watch stream —
        // event volume is bounded by deployment churn, not the data path,
        // and a bounded queue would let one stalled watcher drop or block
        // cluster events for every other consumer.
        let (tx, rx) = unbounded();
        let mut inner = self.cluster_state.lock();
        // Flush first so a pending coalescing window never leaks events
        // from before this subscription into the new stream.
        flush(&mut inner);
        inner.watchers.push(tx);
        WatchStream {
            rx,
            buf: VecDeque::new(),
        }
    }

    /// Watch-path work counters accumulated since construction.
    pub fn watch_stats(&self) -> WatchStats {
        self.cluster_state.lock().watch_stats
    }

    /// Sets the watch-delivery coalescing window: up to `n` events share
    /// one delivery per watcher. A window of 1 (the default) delivers
    /// per event.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_watch_coalescing(self, n: usize) -> Self {
        assert!(n > 0, "coalescing window must be at least 1");
        self.cluster_state.lock().watch_coalesce = n;
        self
    }

    /// Delivers any coalesced-pending watch events immediately.
    /// Consumers that drain on a cadence call this first, so the events
    /// they observe are independent of the coalescing window.
    pub fn flush_watch(&self) {
        flush(&mut self.cluster_state.lock());
    }

    /// Creates an instance from `template`: runs admission, schedules it
    /// onto a node (round robin unless admission forced one), stores it and
    /// notifies watchers.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::AdmissionDenied`] when the hook rejects, or
    /// [`ClusterError::UnknownNode`] when admission forced a bogus node.
    pub fn create_instance(
        &self,
        template: InstanceTemplate,
    ) -> Result<InstanceSpec, ClusterError> {
        // Run admission without holding the lock (the hook may call back).
        let (mut spec, hook) = {
            let mut inner = self.cluster_state.lock();
            let id = InstanceId(inner.next_id);
            inner.next_id += 1;
            (
                InstanceSpec {
                    id,
                    function: template.function,
                    node: None,
                    env: template.env,
                    volumes: Vec::new(),
                    labels: template.labels,
                },
                inner.admission.clone(),
            )
        };
        if let Some(hook) = hook {
            hook(&mut spec).map_err(ClusterError::AdmissionDenied)?;
        }
        let mut inner = self.cluster_state.lock();
        match &spec.node {
            Some(node) => {
                if !inner.nodes.iter().any(|n| n.id() == node) {
                    return Err(ClusterError::UnknownNode(node.to_string()));
                }
            }
            None => {
                let idx = inner.round_robin % inner.nodes.len();
                inner.round_robin += 1;
                spec.node = Some(inner.nodes[idx].id().clone());
            }
        }
        inner.instances.insert(spec.id, spec.clone());
        notify(&mut inner, WatchEvent::Created(spec.clone()));
        Ok(spec)
    }

    /// Deletes an instance and notifies watchers.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInstance`] if it does not exist.
    pub fn delete_instance(&self, id: InstanceId) -> Result<(), ClusterError> {
        let mut inner = self.cluster_state.lock();
        inner
            .instances
            .remove(&id)
            .ok_or(ClusterError::UnknownInstance(id))?;
        notify(&mut inner, WatchEvent::Deleted(id));
        Ok(())
    }

    /// Applies `patch` to an instance and notifies watchers.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInstance`] if it does not exist.
    pub fn patch_instance(
        &self,
        id: InstanceId,
        patch: impl FnOnce(&mut InstanceSpec),
    ) -> Result<InstanceSpec, ClusterError> {
        let mut inner = self.cluster_state.lock();
        let spec = inner
            .instances
            .get_mut(&id)
            .ok_or(ClusterError::UnknownInstance(id))?;
        patch(spec);
        let spec = spec.clone();
        notify(&mut inner, WatchEvent::Patched(spec.clone()));
        Ok(spec)
    }

    /// Fetches an instance.
    pub fn instance(&self, id: InstanceId) -> Option<InstanceSpec> {
        self.cluster_state.lock().instances.get(&id).cloned()
    }

    /// All instances, ordered by id.
    pub fn instances(&self) -> Vec<InstanceSpec> {
        self.cluster_state
            .lock()
            .instances
            .values()
            .cloned()
            .collect()
    }

    /// Instances scheduled on `node`.
    pub fn instances_on(&self, node: &NodeId) -> Vec<InstanceSpec> {
        self.cluster_state
            .lock()
            .instances
            .values()
            .filter(|i| i.node.as_ref() == Some(node))
            .cloned()
            .collect()
    }

    /// Migrates an instance with Kubernetes' create-before-delete
    /// semantics: a replacement with the same template is created (running
    /// admission again, so the registry can re-allocate and force a new
    /// node) and only then is the old instance deleted.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownInstance`] for stale ids, or any
    /// admission failure for the replacement.
    pub fn replace_instance(&self, id: InstanceId) -> Result<InstanceSpec, ClusterError> {
        let old = self.instance(id).ok_or(ClusterError::UnknownInstance(id))?;
        let template = InstanceTemplate {
            function: old.function.clone(),
            env: BTreeMap::new(), // registry-injected env is re-derived at admission
            labels: old.labels.clone(),
        };
        let replacement = self.create_instance(template)?;
        self.delete_instance(id)?;
        Ok(replacement)
    }
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.cluster_state.lock();
        f.debug_struct("Cluster")
            .field("nodes", &inner.nodes.len())
            .field("instances", &inner.instances.len())
            .finish()
    }
}

fn notify(inner: &mut ClusterInner, event: WatchEvent) {
    inner.watch_stats.events += 1;
    if inner.watchers.is_empty() {
        // Nobody to deliver to: match the unbuffered behaviour and drop
        // the event instead of accumulating an unbounded pending buffer.
        inner.pending.clear();
        return;
    }
    inner.pending.push(event);
    if inner.pending.len() >= inner.watch_coalesce {
        flush(inner);
    }
}

/// Delivers the pending batch to every live watcher: one channel send
/// per watcher per *batch*, which is the amplification coalescing cuts.
fn flush(inner: &mut ClusterInner) {
    if inner.pending.is_empty() {
        return;
    }
    let batch = std::mem::take(&mut inner.pending);
    let mut delivered = 0;
    inner.watchers.retain(|w| {
        let ok = w.send(batch.clone()).is_ok();
        if ok {
            delivered += 1;
        }
        ok
    });
    inner.watch_stats.deliveries += delivered;
}

#[cfg(test)]
mod tests {
    use bf_model::paper_cluster;

    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(paper_cluster())
    }

    #[test]
    fn scheduler_round_robins_without_admission() {
        let c = cluster();
        let nodes: Vec<_> = (0..6)
            .map(|i| {
                c.create_instance(InstanceTemplate::new(format!("f{i}")))
                    .expect("create")
                    .node
                    .expect("scheduled")
            })
            .collect();
        assert_eq!(nodes[0], nodes[3]);
        assert_eq!(nodes[1], nodes[4]);
        assert_eq!(nodes[2], nodes[5]);
        assert_ne!(nodes[0], nodes[1]);
    }

    #[test]
    fn admission_hook_patches_and_forces_node() {
        let c = cluster();
        c.set_admission_hook(Arc::new(|spec| {
            spec.env
                .insert("DEVICE_MANAGER_ADDRESS".into(), "fpga-b".into());
            spec.volumes.push("/dev/shm/bf".into());
            spec.node = Some(NodeId::new("B"));
            Ok(())
        }));
        let inst = c
            .create_instance(InstanceTemplate::new("sobel-1"))
            .expect("create");
        assert_eq!(inst.node, Some(NodeId::new("B")));
        assert_eq!(
            inst.env.get("DEVICE_MANAGER_ADDRESS").map(String::as_str),
            Some("fpga-b")
        );
        assert_eq!(inst.volumes, vec!["/dev/shm/bf".to_string()]);
    }

    #[test]
    fn admission_can_reject() {
        let c = cluster();
        c.set_admission_hook(Arc::new(|_spec| Err("no device available".to_string())));
        let err = c
            .create_instance(InstanceTemplate::new("f"))
            .expect_err("denied");
        assert_eq!(
            err,
            ClusterError::AdmissionDenied("no device available".to_string())
        );
        assert!(c.instances().is_empty());
    }

    #[test]
    fn admission_forcing_unknown_node_fails() {
        let c = cluster();
        c.set_admission_hook(Arc::new(|spec| {
            spec.node = Some(NodeId::new("Z"));
            Ok(())
        }));
        let err = c
            .create_instance(InstanceTemplate::new("f"))
            .expect_err("bad node");
        assert_eq!(err, ClusterError::UnknownNode("Z".to_string()));
    }

    #[test]
    fn watch_delivers_lifecycle_events() {
        let c = cluster();
        let mut rx = c.watch();
        let inst = c
            .create_instance(InstanceTemplate::new("f"))
            .expect("create");
        c.patch_instance(inst.id, |s| {
            s.env.insert("K".into(), "V".into());
        })
        .expect("patch");
        c.delete_instance(inst.id).expect("delete");
        assert!(matches!(rx.try_next(), Some(WatchEvent::Created(_))));
        assert!(matches!(rx.try_next(), Some(WatchEvent::Patched(_))));
        assert_eq!(rx.try_next(), Some(WatchEvent::Deleted(inst.id)));
        assert_eq!(rx.try_next(), None);
    }

    #[test]
    fn replace_creates_before_deleting() {
        let c = cluster();
        let mut rx = c.watch();
        let inst = c
            .create_instance(InstanceTemplate::new("f"))
            .expect("create");
        let _ = rx.try_next();
        let replacement = c.replace_instance(inst.id).expect("replace");
        assert_ne!(replacement.id, inst.id);
        // Create-before-delete ordering on the watch stream:
        assert!(
            matches!(rx.try_next(), Some(WatchEvent::Created(spec)) if spec.id == replacement.id)
        );
        assert_eq!(rx.try_next(), Some(WatchEvent::Deleted(inst.id)));
        assert!(c.instance(inst.id).is_none());
        assert!(c.instance(replacement.id).is_some());
    }

    #[test]
    fn watch_stats_count_events_and_per_watcher_deliveries() {
        let c = cluster();
        let _a = c.watch();
        let _b = c.watch();
        let inst = c
            .create_instance(InstanceTemplate::new("f"))
            .expect("create");
        c.delete_instance(inst.id).expect("delete");
        let stats = c.watch_stats();
        assert_eq!(stats.events, 2);
        assert_eq!(stats.deliveries, 4, "one send per watcher per event");
    }

    #[test]
    fn coalescing_amortizes_deliveries_and_preserves_order() {
        let c = cluster().with_watch_coalescing(3);
        let mut rx = c.watch();
        let a = c.create_instance(InstanceTemplate::new("a")).expect("a");
        let b = c.create_instance(InstanceTemplate::new("b")).expect("b");
        // Two events pending, below the window: nothing delivered yet.
        assert_eq!(rx.try_next(), None);
        assert_eq!(c.watch_stats().deliveries, 0);
        // The third event fills the window and flushes all three.
        c.delete_instance(a.id).expect("delete");
        assert!(matches!(rx.try_next(), Some(WatchEvent::Created(s)) if s.id == a.id));
        assert!(matches!(rx.try_next(), Some(WatchEvent::Created(s)) if s.id == b.id));
        assert_eq!(rx.try_next(), Some(WatchEvent::Deleted(a.id)));
        let stats = c.watch_stats();
        assert_eq!((stats.events, stats.deliveries), (3, 1));
    }

    #[test]
    fn flush_watch_delivers_a_partial_window() {
        let c = cluster().with_watch_coalescing(64);
        let mut rx = c.watch();
        c.create_instance(InstanceTemplate::new("a")).expect("a");
        assert_eq!(rx.try_next(), None, "held by the coalescing window");
        c.flush_watch();
        assert!(matches!(rx.try_next(), Some(WatchEvent::Created(_))));
        assert_eq!(c.watch_stats().deliveries, 1);
    }

    #[test]
    fn new_watcher_never_sees_events_from_before_subscription() {
        let c = cluster().with_watch_coalescing(64);
        let mut early = c.watch();
        c.create_instance(InstanceTemplate::new("a")).expect("a");
        // Subscribing flushes the pending window to the early watcher
        // only; the late watcher starts clean.
        let mut late = c.watch();
        assert!(matches!(early.try_next(), Some(WatchEvent::Created(_))));
        assert_eq!(late.try_next(), None);
        c.create_instance(InstanceTemplate::new("b")).expect("b");
        c.flush_watch();
        assert!(matches!(late.try_next(), Some(WatchEvent::Created(s)) if s.function == "b"));
    }

    #[test]
    fn instances_on_filters_by_node() {
        let c = cluster();
        let a = c
            .create_instance(InstanceTemplate::new("f1"))
            .expect("create");
        let _b = c
            .create_instance(InstanceTemplate::new("f2"))
            .expect("create");
        let node = a.node.clone().expect("scheduled");
        let on_node = c.instances_on(&node);
        assert_eq!(on_node.len(), 1);
        assert_eq!(on_node[0].id, a.id);
    }

    #[test]
    fn stale_ids_error() {
        let c = cluster();
        assert_eq!(
            c.delete_instance(InstanceId(42)),
            Err(ClusterError::UnknownInstance(InstanceId(42)))
        );
        assert!(c.patch_instance(InstanceId(42), |_| {}).is_err());
        assert!(c.replace_instance(InstanceId(42)).is_err());
    }
}
