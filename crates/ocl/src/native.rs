//! The native backend: direct PCIe access to a board, as in the paper's
//! "Native" baseline (one function per device, no sharing layer).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use bf_fpga::{Board, KernelArg, KernelInvocation, Payload};
use bf_model::{NodeSpec, VirtualClock, VirtualTime};
use parking_lot::Mutex;

use crate::backend::Backend;
use crate::error::{ClError, ClResult};
use crate::event::{CommandType, Event};
use crate::types::{
    ArgValue, BitstreamCatalog, ContextId, DeviceInfo, KernelId, MemId, NdRange, ProgramId, QueueId,
};

#[derive(Debug, Default)]
struct KernelState {
    name: String,
    args: BTreeMap<u32, ArgValue>,
}

#[derive(Debug)]
struct BufferState {
    fpga: bf_fpga::BufferId,
    len: u64,
}

#[derive(Debug, Default)]
struct QueueState {
    last_end: VirtualTime,
}

#[derive(Debug, Default)]
struct State {
    next_id: u64,
    contexts: HashSet<u64>,
    programs: HashMap<u64, String>,
    kernels: HashMap<u64, KernelState>,
    buffers: HashMap<u64, BufferState>,
    queues: HashMap<u64, QueueState>,
}

impl State {
    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }
}

/// Direct (unshared) access to a [`Board`], used by the paper's Native
/// baseline and internally by the Device Manager's executor.
///
/// Commands are timed eagerly on the virtual timeline: the board resolves
/// start/end instants immediately, the returned [`Event`] is already
/// terminal, and the host [`VirtualClock`] advances only on blocking calls
/// and `finish` — which models host/device overlap exactly for a
/// single-threaded client.
pub struct NativeBackend {
    node: NodeSpec,
    board: Arc<Mutex<Board>>,
    clock: VirtualClock,
    catalog: BitstreamCatalog,
    owner: String,
    state: Mutex<State>,
}

impl NativeBackend {
    /// Creates a backend fronting `board` on `node`, resolving program
    /// builds against `catalog`. `owner` labels busy time for utilization
    /// attribution.
    pub fn new(
        node: NodeSpec,
        board: Arc<Mutex<Board>>,
        catalog: BitstreamCatalog,
        clock: VirtualClock,
        owner: impl Into<String>,
    ) -> Self {
        NativeBackend {
            node,
            board,
            clock,
            catalog,
            owner: owner.into(),
            state: Mutex::new(State::default()),
        }
    }

    /// The board behind this backend (shared with other components).
    pub fn board(&self) -> &Arc<Mutex<Board>> {
        &self.board
    }

    /// The node the board is attached to.
    pub fn node(&self) -> &NodeSpec {
        &self.node
    }

    fn queue_touch(&self, queue: QueueId, end: VirtualTime) -> ClResult<()> {
        let mut state = self.state.lock();
        let q = state
            .queues
            .get_mut(&queue.0)
            .ok_or(ClError::InvalidQueue)?;
        q.last_end = q.last_end.max(end);
        Ok(())
    }

    fn resolve_buffer(&self, buffer: MemId) -> ClResult<(bf_fpga::BufferId, u64)> {
        let state = self.state.lock();
        let b = state.buffers.get(&buffer.0).ok_or(ClError::InvalidBuffer)?;
        Ok((b.fpga, b.len))
    }

    fn snapshot_invocation(&self, kernel: KernelId, work: NdRange) -> ClResult<KernelInvocation> {
        let state = self.state.lock();
        let k = state.kernels.get(&kernel.0).ok_or(ClError::InvalidKernel)?;
        let max_index = k.args.keys().next_back().copied();
        let mut args = Vec::new();
        if let Some(max) = max_index {
            // bf-taint: sanitized(set_kernel_arg rejects indices >= MAX_KERNEL_ARGS, capping the highest key at 256)
            for i in 0..=max {
                let v = k.args.get(&i).ok_or(ClError::MissingKernelArg(i))?;
                args.push(match *v {
                    ArgValue::Buffer(mem) => {
                        let b = state.buffers.get(&mem.0).ok_or(ClError::InvalidBuffer)?;
                        KernelArg::Buffer(b.fpga)
                    }
                    ArgValue::U32(v) => KernelArg::U32(v),
                    ArgValue::I32(v) => KernelArg::I32(v),
                    ArgValue::U64(v) => KernelArg::U64(v),
                    ArgValue::F32(v) => KernelArg::F32(v),
                });
            }
        }
        Ok(KernelInvocation {
            args,
            global_work: work.0,
        })
    }
}

impl std::fmt::Debug for NativeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeBackend")
            .field("node", self.node.id())
            .field("owner", &self.owner)
            .finish_non_exhaustive()
    }
}

impl Backend for NativeBackend {
    fn device_info(&self) -> DeviceInfo {
        let board = self.board.lock();
        DeviceInfo {
            name: board.spec().model.clone(),
            vendor: "Intel".to_string(),
            platform: "Intel(R) FPGA SDK for OpenCL(TM)".to_string(),
            memory_bytes: board.spec().memory_bytes,
            node: self.node.id().clone(),
            bitstream: board.bitstream_id().map(str::to_string),
        }
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn create_context(&self) -> ClResult<ContextId> {
        let mut state = self.state.lock();
        let id = state.fresh_id();
        state.contexts.insert(id);
        Ok(ContextId(id))
    }

    fn build_program(&self, ctx: ContextId, bitstream: &str) -> ClResult<ProgramId> {
        {
            let state = self.state.lock();
            if !state.contexts.contains(&ctx.0) {
                return Err(ClError::InvalidContext);
            }
        }
        let image = self.catalog.get(bitstream).ok_or_else(|| {
            ClError::BuildProgramFailure(format!("unknown bitstream {bitstream:?}"))
        })?;
        {
            let mut board = self.board.lock();
            if board.bitstream_id() != Some(bitstream) {
                // clBuildProgram blocks while the board is (re)programmed.
                let timing = board.program(image, self.clock.now(), &self.owner);
                self.clock.advance_to(timing.ended_at);
            }
        }
        let mut state = self.state.lock();
        let id = state.fresh_id();
        state.programs.insert(id, bitstream.to_string());
        Ok(ProgramId(id))
    }

    fn create_kernel(&self, program: ProgramId, name: &str) -> ClResult<KernelId> {
        let mut state = self.state.lock();
        let bitstream = state
            .programs
            .get(&program.0)
            .ok_or(ClError::InvalidProgram)?
            .clone();
        let image = self
            .catalog
            .get(&bitstream)
            .ok_or_else(|| ClError::BuildProgramFailure(format!("bitstream {bitstream:?} gone")))?;
        if image.kernel(name).is_none() {
            return Err(ClError::BuildProgramFailure(format!(
                "kernel {name:?} not in bitstream {bitstream:?}"
            )));
        }
        let id = state.fresh_id();
        state.kernels.insert(
            id,
            KernelState {
                name: name.to_string(),
                args: BTreeMap::new(),
            },
        );
        Ok(KernelId(id))
    }

    fn set_kernel_arg(&self, kernel: KernelId, index: u32, arg: ArgValue) -> ClResult<()> {
        // Same bound the device-manager session enforces on the wire:
        // launch materializes slots positionally, so an unchecked index
        // would buy `index` iterations of launch-time work.
        if index >= bf_fpga::MAX_KERNEL_ARGS {
            return Err(ClError::InvalidKernelLaunch(format!(
                "kernel argument index {index} exceeds the per-kernel \
                 limit of {}",
                bf_fpga::MAX_KERNEL_ARGS
            )));
        }
        let mut state = self.state.lock();
        let k = state
            .kernels
            .get_mut(&kernel.0)
            .ok_or(ClError::InvalidKernel)?;
        k.args.insert(index, arg);
        Ok(())
    }

    fn create_buffer(&self, ctx: ContextId, len: u64) -> ClResult<MemId> {
        {
            let state = self.state.lock();
            if !state.contexts.contains(&ctx.0) {
                return Err(ClError::InvalidContext);
            }
        }
        let fpga = self.board.lock().alloc_buffer(len)?;
        let mut state = self.state.lock();
        let id = state.fresh_id();
        state.buffers.insert(id, BufferState { fpga, len });
        Ok(MemId(id))
    }

    fn release_buffer(&self, buffer: MemId) -> ClResult<()> {
        let fpga = {
            let mut state = self.state.lock();
            let b = state
                .buffers
                .remove(&buffer.0)
                .ok_or(ClError::InvalidBuffer)?;
            b.fpga
        };
        self.board.lock().free_buffer(fpga)?;
        Ok(())
    }

    fn create_queue(&self, ctx: ContextId) -> ClResult<QueueId> {
        let mut state = self.state.lock();
        if !state.contexts.contains(&ctx.0) {
            return Err(ClError::InvalidContext);
        }
        let id = state.fresh_id();
        state.queues.insert(id, QueueState::default());
        Ok(QueueId(id))
    }

    fn enqueue_write(
        &self,
        queue: QueueId,
        buffer: MemId,
        offset: u64,
        payload: Payload,
        blocking: bool,
    ) -> ClResult<Event> {
        let (fpga, _) = self.resolve_buffer(buffer)?;
        let now = self.clock.now();
        let event = Event::new(CommandType::WriteBuffer, now);
        event.attach_clock(self.clock.clone());
        let timing = {
            let mut board = self.board.lock();
            board.write_buffer(fpga, offset, &payload, now, &self.owner)
        };
        match timing {
            Ok(t) => {
                event.mark_submitted(now);
                event.complete(t.started_at, t.ended_at, None);
                self.queue_touch(queue, t.ended_at)?;
                if blocking {
                    self.clock.advance_to(t.ended_at);
                }
                Ok(event)
            }
            Err(e) => {
                let cl: ClError = e.into();
                event.fail(cl.clone());
                Err(cl)
            }
        }
    }

    fn enqueue_read(
        &self,
        queue: QueueId,
        buffer: MemId,
        offset: u64,
        len: u64,
        blocking: bool,
    ) -> ClResult<Event> {
        let (fpga, _) = self.resolve_buffer(buffer)?;
        let now = self.clock.now();
        let event = Event::new(CommandType::ReadBuffer, now);
        event.attach_clock(self.clock.clone());
        let result = {
            let mut board = self.board.lock();
            board.read_buffer(fpga, offset, len, now, &self.owner)
        };
        match result {
            Ok((t, payload)) => {
                event.mark_submitted(now);
                event.complete(t.started_at, t.ended_at, Some(payload));
                self.queue_touch(queue, t.ended_at)?;
                if blocking {
                    self.clock.advance_to(t.ended_at);
                }
                Ok(event)
            }
            Err(e) => {
                let cl: ClError = e.into();
                event.fail(cl.clone());
                Err(cl)
            }
        }
    }

    fn enqueue_kernel(&self, queue: QueueId, kernel: KernelId, work: NdRange) -> ClResult<Event> {
        let invocation = self.snapshot_invocation(kernel, work)?;
        let name = {
            let state = self.state.lock();
            state
                .kernels
                .get(&kernel.0)
                .ok_or(ClError::InvalidKernel)?
                .name
                .clone()
        };
        let now = self.clock.now();
        let event = Event::new(CommandType::NdRangeKernel, now);
        event.attach_clock(self.clock.clone());
        let timing = {
            let mut board = self.board.lock();
            board.launch_kernel(&name, &invocation, now, &self.owner)
        };
        match timing {
            Ok(t) => {
                event.mark_submitted(now);
                event.complete(t.started_at, t.ended_at, None);
                self.queue_touch(queue, t.ended_at)?;
                Ok(event)
            }
            Err(e) => {
                let cl: ClError = e.into();
                event.fail(cl.clone());
                Err(cl)
            }
        }
    }

    fn enqueue_copy(
        &self,
        queue: QueueId,
        src: MemId,
        dst: MemId,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
    ) -> ClResult<Event> {
        let (src_fpga, _) = self.resolve_buffer(src)?;
        let (dst_fpga, _) = self.resolve_buffer(dst)?;
        let now = self.clock.now();
        let event = Event::new(CommandType::CopyBuffer, now);
        event.attach_clock(self.clock.clone());
        let timing = {
            let mut board = self.board.lock();
            board.copy_buffer(
                src_fpga,
                dst_fpga,
                src_offset,
                dst_offset,
                len,
                now,
                &self.owner,
            )
        };
        match timing {
            Ok(t) => {
                event.mark_submitted(now);
                event.complete(t.started_at, t.ended_at, None);
                self.queue_touch(queue, t.ended_at)?;
                Ok(event)
            }
            Err(e) => {
                let cl: ClError = e.into();
                event.fail(cl.clone());
                Err(cl)
            }
        }
    }

    fn enqueue_marker(&self, queue: QueueId) -> ClResult<Event> {
        // Native commands are executed eagerly, so the marker's completion
        // is simply the queue's current drain point.
        let last_end = {
            let state = self.state.lock();
            state
                .queues
                .get(&queue.0)
                .ok_or(ClError::InvalidQueue)?
                .last_end
        };
        let now = self.clock.now();
        let event = Event::new(CommandType::Marker, now);
        event.attach_clock(self.clock.clone());
        event.mark_submitted(now);
        event.complete(last_end.max(now), last_end.max(now), None);
        Ok(event)
    }

    fn enqueue_barrier(&self, queue: QueueId) -> ClResult<Event> {
        // In-order eager execution: a barrier is equivalent to a marker.
        self.enqueue_marker(queue)
    }

    fn flush(&self, queue: QueueId) -> ClResult<()> {
        // Native commands are submitted eagerly; flush only validates.
        let state = self.state.lock();
        state
            .queues
            .get(&queue.0)
            .map(|_| ())
            .ok_or(ClError::InvalidQueue)
    }

    fn finish(&self, queue: QueueId) -> ClResult<()> {
        let last_end = {
            let state = self.state.lock();
            state
                .queues
                .get(&queue.0)
                .ok_or(ClError::InvalidQueue)?
                .last_end
        };
        self.clock.advance_to(last_end);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use bf_fpga::{Bitstream, BoardSpec, FnKernel, KernelDescriptor};
    use bf_model::{node_b, PcieGeneration, PcieLink, VirtualDuration};

    use super::*;

    fn backend() -> NativeBackend {
        let board = Arc::new(Mutex::new(Board::new(
            BoardSpec::de5a_net(),
            PcieLink::new(PcieGeneration::Gen3, 8),
        )));
        let double = FnKernel::new(
            |_inv: &KernelInvocation| VirtualDuration::from_micros(100),
            |inv: &KernelInvocation, mem: &mut bf_fpga::DeviceMemory| {
                let buf = inv.arg(0)?.as_buffer()?;
                for b in mem.bytes_mut(buf)? {
                    *b = b.wrapping_mul(2);
                }
                Ok(())
            },
        );
        let mut catalog = BitstreamCatalog::new();
        catalog.register(Arc::new(Bitstream::new(
            "double",
            vec![KernelDescriptor::new("double", Arc::new(double))],
        )));
        NativeBackend::new(node_b(), board, catalog, VirtualClock::new(), "test")
    }

    #[test]
    fn full_native_round_trip() {
        let be = backend();
        let ctx = be.create_context().expect("ctx");
        let prog = be.build_program(ctx, "double").expect("program");
        let kernel = be.create_kernel(prog, "double").expect("kernel");
        let buf = be.create_buffer(ctx, 4).expect("buffer");
        let q = be.create_queue(ctx).expect("queue");
        be.enqueue_write(q, buf, 0, Payload::Data(vec![1, 2, 3, 4].into()), true)
            .expect("write");
        be.set_kernel_arg(kernel, 0, ArgValue::Buffer(buf))
            .expect("arg");
        be.enqueue_kernel(q, kernel, NdRange::d1(4))
            .expect("kernel");
        be.finish(q).expect("finish");
        let ev = be.enqueue_read(q, buf, 0, 4, true).expect("read");
        assert_eq!(
            ev.take_payload().expect("payload"),
            Payload::Data(vec![2, 4, 6, 8].into())
        );
    }

    /// Regression: argument slots materialize positionally at launch
    /// (`0..=max`), so an unchecked index would buy `index` iterations of
    /// launch-time work. The backend enforces the same cap the
    /// device-manager session enforces on the wire.
    #[test]
    fn kernel_arg_index_is_capped() {
        let be = backend();
        let ctx = be.create_context().expect("ctx");
        let prog = be.build_program(ctx, "double").expect("program");
        let kernel = be.create_kernel(prog, "double").expect("kernel");
        for index in [bf_fpga::MAX_KERNEL_ARGS, u32::MAX] {
            match be.set_kernel_arg(kernel, index, ArgValue::U32(1)) {
                Err(ClError::InvalidKernelLaunch(msg)) => {
                    assert!(msg.contains("exceeds"), "index {index}: {msg}");
                }
                other => panic!("index {index} accepted: {other:?}"),
            }
        }
        be.set_kernel_arg(kernel, bf_fpga::MAX_KERNEL_ARGS - 1, ArgValue::U32(1))
            .expect("highest legal index");
    }

    #[test]
    fn blocking_ops_advance_the_clock() {
        let be = backend();
        let ctx = be.create_context().expect("ctx");
        let buf = be.create_buffer(ctx, 1 << 20).expect("buffer");
        let q = be.create_queue(ctx).expect("queue");
        let t0 = be.clock().now();
        be.enqueue_write(q, buf, 0, Payload::Synthetic(1 << 20), true)
            .expect("write");
        assert!(be.clock().now() > t0, "blocking write must advance time");
    }

    #[test]
    fn async_ops_do_not_advance_until_finish() {
        let be = backend();
        let ctx = be.create_context().expect("ctx");
        let buf = be.create_buffer(ctx, 1 << 20).expect("buffer");
        let q = be.create_queue(ctx).expect("queue");
        let t0 = be.clock().now();
        let ev = be
            .enqueue_write(q, buf, 0, Payload::Synthetic(1 << 20), false)
            .expect("write");
        assert_eq!(
            be.clock().now(),
            t0,
            "async write must not advance host time"
        );
        be.finish(q).expect("finish");
        assert_eq!(Some(be.clock().now()), ev.profile().ended);
    }

    #[test]
    fn build_program_reconfigures_once() {
        let be = backend();
        let ctx = be.create_context().expect("ctx");
        be.build_program(ctx, "double").expect("first build");
        let reconfigs = be.board().lock().reconfigurations();
        be.build_program(ctx, "double").expect("second build");
        assert_eq!(
            be.board().lock().reconfigurations(),
            reconfigs,
            "no reprogram when same"
        );
    }

    #[test]
    fn unknown_bitstream_is_a_build_failure() {
        let be = backend();
        let ctx = be.create_context().expect("ctx");
        assert!(matches!(
            be.build_program(ctx, "missing"),
            Err(ClError::BuildProgramFailure(_))
        ));
    }

    #[test]
    fn missing_kernel_arg_fails_launch() {
        let be = backend();
        let ctx = be.create_context().expect("ctx");
        let prog = be.build_program(ctx, "double").expect("program");
        let kernel = be.create_kernel(prog, "double").expect("kernel");
        let q = be.create_queue(ctx).expect("queue");
        be.set_kernel_arg(kernel, 1, ArgValue::U32(3))
            .expect("arg 1");
        assert!(matches!(
            be.enqueue_kernel(q, kernel, NdRange::d1(1)),
            Err(ClError::MissingKernelArg(0))
        ));
    }

    #[test]
    fn stale_handles_are_rejected() {
        let be = backend();
        assert_eq!(
            be.create_buffer(ContextId(99), 4),
            Err(ClError::InvalidContext)
        );
        assert_eq!(be.release_buffer(MemId(99)), Err(ClError::InvalidBuffer));
        assert_eq!(be.flush(QueueId(99)), Err(ClError::InvalidQueue));
        assert_eq!(be.finish(QueueId(99)), Err(ClError::InvalidQueue));
    }
}
