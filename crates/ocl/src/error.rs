//! OpenCL-style error codes.

use std::error::Error;
use std::fmt;

use bf_fpga::FpgaError;

/// Result alias used across the OpenCL-style API.
pub type ClResult<T> = Result<T, ClError>;

/// Errors surfaced by the OpenCL-style host API, mirroring the error codes
/// host code would see from a real runtime (`CL_INVALID_CONTEXT`,
/// `CL_OUT_OF_RESOURCES`, …) plus remoting-specific failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClError {
    /// No device matched the requested platform/device query.
    DeviceNotFound,
    /// The context handle is stale or foreign.
    InvalidContext,
    /// The program handle is stale or foreign.
    InvalidProgram,
    /// The kernel handle is stale or foreign.
    InvalidKernel,
    /// The buffer handle is stale, foreign, or owned by another client.
    InvalidBuffer,
    /// The command-queue handle is stale or foreign.
    InvalidQueue,
    /// A kernel launch was attempted with unset arguments.
    MissingKernelArg(u32),
    /// Program build (bitstream lookup / board programming) failed.
    BuildProgramFailure(String),
    /// Device resources (DDR) exhausted.
    OutOfResources(String),
    /// A transfer touched bytes outside a buffer.
    OutOfBounds(String),
    /// The kernel rejected its launch configuration.
    InvalidKernelLaunch(String),
    /// The remoting layer failed (connection dropped, manager gone).
    TransportFailure(String),
    /// The device manager refused the session or operation.
    AccessDenied(String),
    /// An asynchronous command failed; the original failure is embedded.
    EventFailed(String),
    /// Catch-all for operations invalid in the current state.
    InvalidOperation(String),
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::DeviceNotFound => write!(f, "no matching device found"),
            ClError::InvalidContext => write!(f, "invalid context handle"),
            ClError::InvalidProgram => write!(f, "invalid program handle"),
            ClError::InvalidKernel => write!(f, "invalid kernel handle"),
            ClError::InvalidBuffer => write!(f, "invalid buffer handle"),
            ClError::InvalidQueue => write!(f, "invalid command-queue handle"),
            ClError::MissingKernelArg(i) => write!(f, "kernel argument {i} was never set"),
            ClError::BuildProgramFailure(m) => write!(f, "program build failure: {m}"),
            ClError::OutOfResources(m) => write!(f, "out of device resources: {m}"),
            ClError::OutOfBounds(m) => write!(f, "buffer access out of bounds: {m}"),
            ClError::InvalidKernelLaunch(m) => write!(f, "invalid kernel launch: {m}"),
            ClError::TransportFailure(m) => write!(f, "transport failure: {m}"),
            ClError::AccessDenied(m) => write!(f, "access denied: {m}"),
            ClError::EventFailed(m) => write!(f, "asynchronous command failed: {m}"),
            ClError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl Error for ClError {}

impl From<FpgaError> for ClError {
    fn from(e: FpgaError) -> Self {
        match e {
            FpgaError::BufferNotFound(_) => ClError::InvalidBuffer,
            FpgaError::OutOfMemory { .. } => ClError::OutOfResources(e.to_string()),
            FpgaError::OutOfBounds { .. } => ClError::OutOfBounds(e.to_string()),
            FpgaError::NoBitstream => {
                ClError::BuildProgramFailure("no bitstream configured".to_string())
            }
            FpgaError::KernelNotFound(name) => {
                ClError::BuildProgramFailure(format!("kernel {name:?} not in bitstream"))
            }
            FpgaError::InvalidKernelArgs(m) => ClError::InvalidKernelLaunch(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_errors_map_to_cl_codes() {
        assert_eq!(
            ClError::from(FpgaError::BufferNotFound(1)),
            ClError::InvalidBuffer
        );
        assert!(matches!(
            ClError::from(FpgaError::OutOfMemory {
                requested: 1,
                available: 0
            }),
            ClError::OutOfResources(_)
        ));
        assert!(matches!(
            ClError::from(FpgaError::KernelNotFound("k".into())),
            ClError::BuildProgramFailure(_)
        ));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<ClError>();
    }
}
