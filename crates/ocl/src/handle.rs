//! Ergonomic, RAII-ish wrappers over a [`Backend`] — what application host
//! code actually uses.

use std::sync::Arc;

use bf_fpga::Payload;
use bf_model::VirtualClock;

use crate::backend::Backend;
use crate::error::{ClError, ClResult};
use crate::event::Event;
use crate::types::{ArgValue, ContextId, DeviceInfo, KernelId, MemId, NdRange, ProgramId, QueueId};

/// A platform groups the devices reachable through one runtime — the
/// analogue of `clGetPlatformIDs` returning the vendor ICD (native) or the
/// Remote OpenCL Library's router.
#[derive(Clone)]
pub struct Platform {
    name: String,
    devices: Vec<Device>,
}

impl Platform {
    /// Creates a platform from its devices.
    pub fn new(name: impl Into<String>, devices: Vec<Device>) -> Self {
        Platform {
            name: name.into(),
            devices,
        }
    }

    /// Platform display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All devices on the platform.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The `index`-th device.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::DeviceNotFound`] when the index is out of range.
    pub fn device(&self, index: usize) -> ClResult<Device> {
        self.devices
            .get(index)
            .cloned()
            .ok_or(ClError::DeviceNotFound)
    }
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("name", &self.name)
            .field("devices", &self.devices.len())
            .finish()
    }
}

/// A device handle: an `Arc` around whichever [`Backend`] fronts it.
#[derive(Clone)]
pub struct Device {
    backend: Arc<dyn Backend>,
}

impl Device {
    /// Wraps a backend.
    pub fn new(backend: Arc<dyn Backend>) -> Self {
        Device { backend }
    }

    /// `clGetDeviceInfo`.
    pub fn info(&self) -> DeviceInfo {
        self.backend.device_info()
    }

    /// The virtual clock of this device's host thread.
    pub fn clock(&self) -> &VirtualClock {
        self.backend.clock()
    }

    /// The raw backend (for runtime integration).
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// `clCreateContext`.
    ///
    /// # Errors
    ///
    /// Propagates backend session errors.
    pub fn create_context(&self) -> ClResult<Context> {
        let id = self.backend.create_context()?;
        Ok(Context {
            backend: self.backend.clone(),
            id,
        })
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("info", &self.info().name)
            .finish()
    }
}

/// An OpenCL context.
#[derive(Clone)]
pub struct Context {
    backend: Arc<dyn Backend>,
    id: ContextId,
}

impl Context {
    /// The raw context id.
    pub fn id(&self) -> ContextId {
        self.id
    }

    /// `clCreateProgramWithBinary` + `clBuildProgram` for a named
    /// bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::BuildProgramFailure`] for unknown bitstreams.
    pub fn build_program(&self, bitstream: &str) -> ClResult<Program> {
        let id = self.backend.build_program(self.id, bitstream)?;
        Ok(Program {
            backend: self.backend.clone(),
            id,
        })
    }

    /// `clCreateBuffer` of `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::OutOfResources`] when device memory is exhausted.
    pub fn create_buffer(&self, len: u64) -> ClResult<Buffer> {
        let id = self.backend.create_buffer(self.id, len)?;
        Ok(Buffer {
            backend: self.backend.clone(),
            id,
            len,
        })
    }

    /// `clCreateCommandQueue`.
    ///
    /// # Errors
    ///
    /// Fails on stale contexts.
    pub fn create_queue(&self) -> ClResult<Queue> {
        let id = self.backend.create_queue(self.id)?;
        Ok(Queue {
            backend: self.backend.clone(),
            id,
        })
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context").field("id", &self.id).finish()
    }
}

/// A built program (configured bitstream).
#[derive(Clone)]
pub struct Program {
    backend: Arc<dyn Backend>,
    id: ProgramId,
}

impl Program {
    /// The raw program id.
    pub fn id(&self) -> ProgramId {
        self.id
    }

    /// `clCreateKernel`.
    ///
    /// # Errors
    ///
    /// Fails when the kernel is absent from the bitstream.
    pub fn create_kernel(&self, name: &str) -> ClResult<Kernel> {
        let id = self.backend.create_kernel(self.id, name)?;
        Ok(Kernel {
            backend: self.backend.clone(),
            id,
        })
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program").field("id", &self.id).finish()
    }
}

/// A kernel handle with `clSetKernelArg`-style mutable argument state.
#[derive(Clone)]
pub struct Kernel {
    backend: Arc<dyn Backend>,
    id: KernelId,
}

impl Kernel {
    /// The raw kernel id.
    pub fn id(&self) -> KernelId {
        self.id
    }

    /// `clSetKernelArg`.
    ///
    /// # Errors
    ///
    /// Fails on stale kernel handles.
    pub fn set_arg(&self, index: u32, arg: ArgValue) -> ClResult<()> {
        self.backend.set_kernel_arg(self.id, index, arg)
    }

    /// Sets a buffer argument.
    ///
    /// # Errors
    ///
    /// Fails on stale kernel handles.
    pub fn set_arg_buffer(&self, index: u32, buffer: &Buffer) -> ClResult<()> {
        self.set_arg(index, ArgValue::Buffer(buffer.mem_id()))
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("id", &self.id).finish()
    }
}

/// A device buffer. Dropping the handle releases the device allocation
/// (best effort — release errors in `Drop` are ignored, per the OpenCL
/// reference-counting model; call [`Buffer::release`] to observe them).
pub struct Buffer {
    backend: Arc<dyn Backend>,
    id: MemId,
    len: u64,
}

impl Buffer {
    /// The raw mem-object id.
    pub fn mem_id(&self) -> MemId {
        self.id
    }

    /// Allocated size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Explicitly releases the buffer, surfacing any error.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidBuffer`] if the handle was already stale.
    pub fn release(self) -> ClResult<()> {
        let result = self.backend.release_buffer(self.id);
        std::mem::forget(self);
        result
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        let _ = self.backend.release_buffer(self.id);
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buffer")
            .field("id", &self.id)
            .field("len", &self.len)
            .finish()
    }
}

/// An in-order command queue.
#[derive(Clone)]
pub struct Queue {
    backend: Arc<dyn Backend>,
    id: QueueId,
}

impl Queue {
    /// The raw queue id.
    pub fn id(&self) -> QueueId {
        self.id
    }

    /// Blocking `clEnqueueWriteBuffer` of the whole payload at offset 0.
    ///
    /// # Errors
    ///
    /// Fails on invalid handles or out-of-bounds writes.
    pub fn write(&self, buffer: &Buffer, payload: impl Into<Payload>) -> ClResult<()> {
        self.backend
            .enqueue_write(self.id, buffer.mem_id(), 0, payload.into(), true)?;
        Ok(())
    }

    /// Non-blocking `clEnqueueWriteBuffer`.
    ///
    /// # Errors
    ///
    /// Fails synchronously on invalid handles.
    pub fn write_async(
        &self,
        buffer: &Buffer,
        offset: u64,
        payload: impl Into<Payload>,
    ) -> ClResult<Event> {
        self.backend
            .enqueue_write(self.id, buffer.mem_id(), offset, payload.into(), false)
    }

    /// Blocking whole-buffer read returning real bytes.
    ///
    /// # Errors
    ///
    /// Fails on invalid handles, or with [`ClError::InvalidOperation`] when
    /// the buffer was never materialized (timing-only runs).
    pub fn read_vec(&self, buffer: &Buffer) -> ClResult<Vec<u8>> {
        let ev = self
            .backend
            .enqueue_read(self.id, buffer.mem_id(), 0, buffer.len(), true)?;
        ev.wait()?;
        match ev.take_payload()? {
            // `into_vec` recovers the buffer in place when this event holds
            // the sole reference; a view still shared with the datapath is
            // copied out (the client-boundary copy, reported to accounting).
            payload @ Payload::Data(_) => Ok(payload.into_vec().unwrap_or_default()),
            Payload::Synthetic(_) => Err(ClError::InvalidOperation(
                "buffer holds no materialized data (timing-only run)".to_string(),
            )),
        }
    }

    /// Blocking whole-buffer read returning the payload (synthetic allowed).
    ///
    /// # Errors
    ///
    /// Fails on invalid handles.
    pub fn read_payload(&self, buffer: &Buffer) -> ClResult<Payload> {
        let ev = self
            .backend
            .enqueue_read(self.id, buffer.mem_id(), 0, buffer.len(), true)?;
        ev.wait()?;
        ev.take_payload()
    }

    /// Non-blocking `clEnqueueReadBuffer`; bytes arrive on the event.
    ///
    /// # Errors
    ///
    /// Fails synchronously on invalid handles.
    pub fn read_async(&self, buffer: &Buffer, offset: u64, len: u64) -> ClResult<Event> {
        self.backend
            .enqueue_read(self.id, buffer.mem_id(), offset, len, false)
    }

    /// `clEnqueueNDRangeKernel`.
    ///
    /// # Errors
    ///
    /// Fails when kernel arguments are missing or handles are stale.
    pub fn launch(&self, kernel: &Kernel, work: NdRange) -> ClResult<Event> {
        self.backend.enqueue_kernel(self.id, kernel.id(), work)
    }

    /// `clEnqueueCopyBuffer`: device-to-device copy (no PCIe traversal).
    ///
    /// # Errors
    ///
    /// Fails on invalid handles or out-of-bounds regions.
    pub fn copy(&self, src: &Buffer, dst: &Buffer, len: u64) -> ClResult<Event> {
        self.backend
            .enqueue_copy(self.id, src.mem_id(), dst.mem_id(), 0, 0, len)
    }

    /// `clEnqueueCopyBuffer` with explicit offsets.
    ///
    /// # Errors
    ///
    /// Fails on invalid handles or out-of-bounds regions.
    pub fn copy_region(
        &self,
        src: &Buffer,
        dst: &Buffer,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
    ) -> ClResult<Event> {
        self.backend.enqueue_copy(
            self.id,
            src.mem_id(),
            dst.mem_id(),
            src_offset,
            dst_offset,
            len,
        )
    }

    /// `clEnqueueMarker`: an event that completes when everything enqueued
    /// so far has completed.
    ///
    /// # Errors
    ///
    /// Fails on stale queue handles.
    pub fn enqueue_marker(&self) -> ClResult<Event> {
        self.backend.enqueue_marker(self.id)
    }

    /// `clEnqueueBarrier`: a synchronization point that also seals the
    /// current multi-operation task on the remote backend.
    ///
    /// # Errors
    ///
    /// Fails on stale queue handles.
    pub fn enqueue_barrier(&self) -> ClResult<Event> {
        self.backend.enqueue_barrier(self.id)
    }

    /// `clFlush`.
    ///
    /// # Errors
    ///
    /// Fails on stale queue handles.
    pub fn flush(&self) -> ClResult<()> {
        self.backend.flush(self.id)
    }

    /// `clFinish`.
    ///
    /// # Errors
    ///
    /// Fails on stale queue handles or when a queued command failed.
    pub fn finish(&self) -> ClResult<()> {
        self.backend.finish(self.id)
    }
}

impl std::fmt::Debug for Queue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Queue").field("id", &self.id).finish()
    }
}
