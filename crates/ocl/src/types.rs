//! Handle ids, launch descriptors and device information.

use std::collections::HashMap;
use std::sync::Arc;

use bf_fpga::Bitstream;
use bf_model::NodeId;

macro_rules! handle_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

handle_id!(
    /// Backend-scoped context handle.
    ContextId
);
handle_id!(
    /// Backend-scoped program handle.
    ProgramId
);
handle_id!(
    /// Backend-scoped kernel handle.
    KernelId
);
handle_id!(
    /// Backend-scoped buffer handle (distinct from the board's internal
    /// buffer ids).
    MemId
);
handle_id!(
    /// Backend-scoped command-queue handle.
    QueueId
);

/// A kernel launch argument as passed through `clSetKernelArg`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// A device buffer.
    Buffer(MemId),
    /// 32-bit unsigned scalar.
    U32(u32),
    /// 32-bit signed scalar.
    I32(i32),
    /// 64-bit unsigned scalar.
    U64(u64),
    /// 32-bit float scalar.
    F32(f32),
}

/// An OpenCL NDRange (up to three dimensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NdRange(pub [u64; 3]);

impl NdRange {
    /// One-dimensional range.
    pub fn d1(x: u64) -> Self {
        NdRange([x, 1, 1])
    }

    /// Two-dimensional range.
    pub fn d2(x: u64, y: u64) -> Self {
        NdRange([x, y, 1])
    }

    /// Three-dimensional range.
    pub fn d3(x: u64, y: u64, z: u64) -> Self {
        NdRange([x, y, z])
    }

    /// Total work items.
    pub fn items(&self) -> u64 {
        self.0.iter().product()
    }
}

/// Information about the device behind a backend (`clGetDeviceInfo`).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceInfo {
    /// Device (board) name.
    pub name: String,
    /// Vendor string.
    pub vendor: String,
    /// Platform string (e.g. "Intel(R) FPGA SDK for OpenCL(TM)").
    pub platform: String,
    /// On-board memory in bytes.
    pub memory_bytes: u64,
    /// The cluster node hosting the device.
    pub node: NodeId,
    /// Currently configured bitstream id, if any.
    pub bitstream: Option<String>,
}

/// The set of synthesized bitstream binaries available to host code — the
/// stand-in for the `.aocx` files `clCreateProgramWithBinary` loads.
#[derive(Debug, Clone, Default)]
pub struct BitstreamCatalog {
    images: HashMap<String, Arc<Bitstream>>,
}

impl BitstreamCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a bitstream under its own id.
    pub fn register(&mut self, bitstream: Arc<Bitstream>) -> &mut Self {
        self.images.insert(bitstream.id().to_string(), bitstream);
        self
    }

    /// Looks a bitstream up by id.
    pub fn get(&self, id: &str) -> Option<Arc<Bitstream>> {
        self.images.get(id).cloned()
    }

    /// Ids of all registered bitstreams.
    pub fn ids(&self) -> impl Iterator<Item = &str> {
        self.images.keys().map(String::as_str)
    }

    /// Number of registered bitstreams.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndrange_items_multiply() {
        assert_eq!(NdRange::d1(5).items(), 5);
        assert_eq!(NdRange::d2(4, 3).items(), 12);
        assert_eq!(NdRange::d3(2, 3, 4).items(), 24);
    }

    #[test]
    fn handle_ids_display() {
        assert_eq!(MemId(7).to_string(), "MemId(7)");
        assert_eq!(QueueId(1).to_string(), "QueueId(1)");
    }

    #[test]
    fn catalog_round_trip() {
        let mut cat = BitstreamCatalog::new();
        assert!(cat.is_empty());
        cat.register(Arc::new(Bitstream::new("sobel", vec![])));
        assert_eq!(cat.len(), 1);
        assert_eq!(
            cat.get("sobel").map(|b| b.id().to_string()),
            Some("sobel".to_string())
        );
        assert!(cat.get("missing").is_none());
    }
}
