//! OpenCL events with the standard status lifecycle.
//!
//! Every enqueued command yields an [`Event`] whose status moves through
//! `Queued → Submitted → Running → Complete` (or to `Failed`). Statuses are
//! monotonic — an event never moves backwards — matching the OpenCL
//! execution-status model that the Remote Library's state machines update
//! (paper Fig. 2, step 6).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bf_fpga::Payload;
use bf_model::{VirtualClock, VirtualTime};
use parking_lot::{Condvar, Mutex};

use crate::error::{ClError, ClResult};

/// The kind of command an event tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandType {
    /// `clEnqueueWriteBuffer`.
    WriteBuffer,
    /// `clEnqueueReadBuffer`.
    ReadBuffer,
    /// `clEnqueueNDRangeKernel`.
    NdRangeKernel,
    /// `clEnqueueCopyBuffer`.
    CopyBuffer,
    /// Internal marker (barriers, flush fences).
    Marker,
}

/// OpenCL execution status of a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventStatus {
    /// Command is in the host command queue.
    Queued,
    /// Command has been submitted to the device (manager).
    Submitted,
    /// Command is executing on the device.
    Running,
    /// Command finished successfully.
    Complete,
    /// Command failed; details in the event's error.
    Failed,
}

impl EventStatus {
    /// Whether the status is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, EventStatus::Complete | EventStatus::Failed)
    }
}

/// Device-side profiling timestamps (as `clGetEventProfilingInfo` reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventProfile {
    /// `CL_PROFILING_COMMAND_QUEUED`.
    pub queued: Option<VirtualTime>,
    /// `CL_PROFILING_COMMAND_SUBMIT`.
    pub submitted: Option<VirtualTime>,
    /// `CL_PROFILING_COMMAND_START`.
    pub started: Option<VirtualTime>,
    /// `CL_PROFILING_COMMAND_END`.
    pub ended: Option<VirtualTime>,
}

/// A completion callback (`clSetEventCallback`): invoked exactly once with
/// the terminal status.
pub type EventCallback = Box<dyn FnOnce(EventStatus) + Send>;

struct EventState {
    status: EventStatus,
    profile: EventProfile,
    payload: Option<Payload>,
    error: Option<ClError>,
    /// When the *host* observes completion (device end + return hop for
    /// remoted commands); used to advance the attached clock on `wait`.
    observed: Option<VirtualTime>,
    clock: Option<VirtualClock>,
    callbacks: Vec<EventCallback>,
}

impl std::fmt::Debug for EventState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventState")
            .field("status", &self.status)
            .field("profile", &self.profile)
            .field("callbacks", &self.callbacks.len())
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct EventInner {
    id: u64,
    command: CommandType,
    state: Mutex<EventState>,
    cond: Condvar,
}

static NEXT_EVENT_ID: AtomicU64 = AtomicU64::new(1);

/// A handle to an asynchronous command's status, shared between the
/// application thread and the runtime (native executor or the Remote
/// Library's connection thread).
#[derive(Debug, Clone)]
pub struct Event {
    inner: Arc<EventInner>,
}

impl Event {
    /// Creates a fresh event in the `Queued` state.
    pub fn new(command: CommandType, queued_at: VirtualTime) -> Self {
        Event {
            inner: Arc::new(EventInner {
                id: NEXT_EVENT_ID.fetch_add(1, Ordering::Relaxed),
                command,
                state: Mutex::new(EventState {
                    status: EventStatus::Queued,
                    profile: EventProfile {
                        queued: Some(queued_at),
                        ..EventProfile::default()
                    },
                    payload: None,
                    error: None,
                    observed: None,
                    clock: None,
                    callbacks: Vec::new(),
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Unique event id (the "tag" the Remote Library sends on the wire).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The command this event tracks.
    pub fn command(&self) -> CommandType {
        self.inner.command
    }

    /// Current execution status (`clGetEventInfo`).
    pub fn status(&self) -> EventStatus {
        self.inner.state.lock().status
    }

    /// Profiling timestamps recorded so far.
    pub fn profile(&self) -> EventProfile {
        self.inner.state.lock().profile
    }

    /// Attaches the host clock this event should advance when the
    /// application blocks on it (runtime-internal).
    pub fn attach_clock(&self, clock: VirtualClock) {
        self.inner.state.lock().clock = Some(clock);
    }

    /// Registers a completion callback (`clSetEventCallback`): invoked
    /// exactly once with the terminal status. If the event is already
    /// terminal the callback runs immediately on the calling thread;
    /// otherwise it runs on the thread that completes the event (the
    /// connection thread for remoted commands — keep it short, as the
    /// OpenCL specification also demands).
    pub fn on_complete(&self, callback: impl FnOnce(EventStatus) + Send + 'static) {
        let mut callback = Some(Box::new(callback) as EventCallback);
        let immediate = {
            let mut state = self.inner.state.lock();
            if state.status.is_terminal() {
                Some(state.status)
            } else {
                if let Some(cb) = callback.take() {
                    state.callbacks.push(cb);
                }
                None
            }
        };
        if let (Some(status), Some(cb)) = (immediate, callback.take()) {
            cb(status);
        }
    }

    /// The instant the host observes completion (device end plus the return
    /// hop for remoted commands), once terminal.
    pub fn observed_at(&self) -> Option<VirtualTime> {
        self.inner.state.lock().observed
    }

    /// Blocks the calling thread until the event reaches a terminal status
    /// (`clWaitForEvents`), advancing the attached host clock to the
    /// observed completion instant.
    ///
    /// # Errors
    ///
    /// Returns the command's failure if the event ends in `Failed`.
    pub fn wait(&self) -> ClResult<()> {
        let mut state = self.inner.state.lock();
        while !state.status.is_terminal() {
            self.inner.cond.wait(&mut state);
        }
        if let (Some(clock), Some(observed)) = (&state.clock, state.observed) {
            clock.advance_to(observed);
        }
        match &state.error {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Takes the read payload out of a completed `ReadBuffer` event.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::InvalidOperation`] if the event is not complete
    /// or carries no payload (wrong command type, or payload already taken).
    pub fn take_payload(&self) -> ClResult<Payload> {
        let mut state = self.inner.state.lock();
        if state.status != EventStatus::Complete {
            return Err(ClError::InvalidOperation(
                "payload is only available on completed read events".to_string(),
            ));
        }
        state
            .payload
            .take()
            .ok_or_else(|| ClError::InvalidOperation("event carries no payload".to_string()))
    }

    // ---- runtime-side transitions -------------------------------------
    // These are called by backends (native executor, Remote Library state
    // machines), not by applications; statuses only move forward.

    /// Marks the command submitted to the device manager.
    pub fn mark_submitted(&self, at: VirtualTime) {
        self.transition(EventStatus::Submitted, |s| s.profile.submitted = Some(at));
    }

    /// Marks the command running on the device.
    pub fn mark_running(&self, at: VirtualTime) {
        self.transition(EventStatus::Running, |s| s.profile.started = Some(at));
    }

    /// Completes the command, optionally attaching a read payload. The host
    /// observes completion at the device end instant (local execution).
    pub fn complete(&self, started: VirtualTime, ended: VirtualTime, payload: Option<Payload>) {
        self.complete_at(started, ended, ended, payload);
    }

    /// Completes the command with an explicit host-observed instant
    /// (`observed >= ended`: device end plus the return hop and any
    /// client-side payload copy for remoted commands).
    pub fn complete_at(
        &self,
        started: VirtualTime,
        ended: VirtualTime,
        observed: VirtualTime,
        payload: Option<Payload>,
    ) {
        self.transition(EventStatus::Complete, |s| {
            s.profile.started.get_or_insert(started);
            s.profile.ended = Some(ended);
            s.observed = Some(observed);
            if payload.is_some() {
                s.payload = payload;
            }
        });
    }

    /// Fails the command.
    pub fn fail(&self, error: ClError) {
        self.transition(EventStatus::Failed, |s| s.error = Some(error));
    }

    fn transition(&self, to: EventStatus, update: impl FnOnce(&mut EventState)) {
        let callbacks = {
            let mut state = self.inner.state.lock();
            if state.status.is_terminal() || to <= state.status {
                return; // statuses are monotonic; late/duplicate updates are dropped
            }
            state.status = to;
            update(&mut state);
            if to.is_terminal() {
                self.inner.cond.notify_all();
                std::mem::take(&mut state.callbacks)
            } else {
                Vec::new()
            }
        };
        // Callbacks run outside the lock so they may inspect the event.
        for cb in callbacks {
            cb(to);
        }
    }
}

/// Blocks until every event in `events` is terminal (`clWaitForEvents`).
///
/// # Errors
///
/// Returns the first failure encountered, after all events are terminal.
pub fn wait_for_events(events: &[Event]) -> ClResult<()> {
    let mut first_err = None;
    for e in events {
        if let Err(err) = e.wait() {
            first_err.get_or_insert(err);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> VirtualTime {
        VirtualTime::from_nanos(ns)
    }

    #[test]
    fn lifecycle_progresses_forward() {
        let e = Event::new(CommandType::WriteBuffer, t(0));
        assert_eq!(e.status(), EventStatus::Queued);
        e.mark_submitted(t(1));
        assert_eq!(e.status(), EventStatus::Submitted);
        e.mark_running(t(2));
        e.complete(t(2), t(5), None);
        assert_eq!(e.status(), EventStatus::Complete);
        let p = e.profile();
        assert_eq!(p.queued, Some(t(0)));
        assert_eq!(p.submitted, Some(t(1)));
        assert_eq!(p.started, Some(t(2)));
        assert_eq!(p.ended, Some(t(5)));
    }

    #[test]
    fn statuses_never_move_backwards() {
        let e = Event::new(CommandType::NdRangeKernel, t(0));
        e.mark_running(t(2));
        e.mark_submitted(t(1)); // late: dropped
        assert_eq!(e.status(), EventStatus::Running);
        e.complete(t(2), t(3), None);
        e.mark_running(t(9)); // after terminal: dropped
        assert_eq!(e.status(), EventStatus::Complete);
    }

    #[test]
    fn wait_returns_failure() {
        let e = Event::new(CommandType::ReadBuffer, t(0));
        e.fail(ClError::InvalidBuffer);
        assert_eq!(e.wait(), Err(ClError::InvalidBuffer));
        assert_eq!(e.status(), EventStatus::Failed);
    }

    #[test]
    fn wait_blocks_until_completion_across_threads() {
        let e = Event::new(CommandType::WriteBuffer, t(0));
        let e2 = e.clone();
        let handle = std::thread::spawn(move || e2.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        e.complete(t(0), t(1), None);
        handle.join().expect("join").expect("wait ok");
    }

    #[test]
    fn payload_round_trip() {
        let e = Event::new(CommandType::ReadBuffer, t(0));
        assert!(e.take_payload().is_err(), "no payload before completion");
        e.complete(t(0), t(1), Some(Payload::Data(vec![1, 2].into())));
        assert_eq!(e.take_payload(), Ok(Payload::Data(vec![1, 2].into())));
        assert!(e.take_payload().is_err(), "payload can only be taken once");
    }

    #[test]
    fn wait_for_events_reports_first_failure() {
        let ok = Event::new(CommandType::Marker, t(0));
        ok.complete(t(0), t(0), None);
        let bad = Event::new(CommandType::Marker, t(0));
        bad.fail(ClError::InvalidQueue);
        assert_eq!(wait_for_events(&[ok, bad]), Err(ClError::InvalidQueue));
    }

    #[test]
    fn callbacks_fire_once_on_completion() {
        let e = Event::new(CommandType::WriteBuffer, t(0));
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        e.on_complete(move |status| {
            assert_eq!(status, EventStatus::Complete);
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 0, "not before completion");
        e.complete(t(0), t(1), None);
        e.complete(t(0), t(2), None); // duplicate terminal: no second firing
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn callbacks_on_terminal_events_run_immediately() {
        let e = Event::new(CommandType::Marker, t(0));
        e.fail(ClError::InvalidQueue);
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        e.on_complete(move |status| {
            assert_eq!(status, EventStatus::Failed);
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn event_ids_are_unique() {
        let a = Event::new(CommandType::Marker, t(0));
        let b = Event::new(CommandType::Marker, t(0));
        assert_ne!(a.id(), b.id());
    }
}
