//! The pluggable runtime behind the OpenCL-style API.
//!
//! BlastFunction's headline property is *transparency*: the same host code
//! runs against a directly attached board or against a remote shared board,
//! with only the platform selection changing. [`Backend`] is the seam that
//! makes this true in the reproduction — `bf-ocl` ships the native
//! implementation and the `bf-remote` crate ships the Remote OpenCL Library
//! implementation of the same trait.

use bf_fpga::Payload;
use bf_model::VirtualClock;

use crate::error::ClResult;
use crate::event::Event;
use crate::types::{ArgValue, ContextId, DeviceInfo, KernelId, MemId, NdRange, ProgramId, QueueId};

/// Object-safe runtime interface implemented by the native executor and by
/// the Remote OpenCL Library.
pub trait Backend: Send + Sync {
    /// `clGetDeviceInfo` for the device this backend fronts.
    fn device_info(&self) -> DeviceInfo;

    /// The virtual clock on which this backend's host thread lives.
    fn clock(&self) -> &VirtualClock;

    /// `clCreateContext`.
    ///
    /// # Errors
    ///
    /// Backends may reject new contexts when the session was refused.
    fn create_context(&self) -> ClResult<ContextId>;

    /// `clCreateProgramWithBinary` + `clBuildProgram`: resolves `bitstream`
    /// and (re)programs the board when it is configured differently.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::BuildProgramFailure`] for unknown bitstreams.
    ///
    /// [`ClError::BuildProgramFailure`]: crate::ClError::BuildProgramFailure
    fn build_program(&self, ctx: ContextId, bitstream: &str) -> ClResult<ProgramId>;

    /// `clCreateKernel`.
    ///
    /// # Errors
    ///
    /// Fails when the kernel is absent from the program's bitstream.
    fn create_kernel(&self, program: ProgramId, name: &str) -> ClResult<KernelId>;

    /// `clSetKernelArg`.
    ///
    /// # Errors
    ///
    /// Fails on stale kernel handles.
    fn set_kernel_arg(&self, kernel: KernelId, index: u32, arg: ArgValue) -> ClResult<()>;

    /// `clCreateBuffer`.
    ///
    /// # Errors
    ///
    /// Fails when device memory is exhausted.
    fn create_buffer(&self, ctx: ContextId, len: u64) -> ClResult<MemId>;

    /// `clReleaseMemObject`.
    ///
    /// # Errors
    ///
    /// Fails on stale or foreign buffer handles.
    fn release_buffer(&self, buffer: MemId) -> ClResult<()>;

    /// `clCreateCommandQueue`.
    ///
    /// # Errors
    ///
    /// Fails on stale context handles.
    fn create_queue(&self, ctx: ContextId) -> ClResult<QueueId>;

    /// `clEnqueueWriteBuffer`. Blocking calls return with the event already
    /// terminal and the host clock advanced past the transfer.
    ///
    /// # Errors
    ///
    /// Fails synchronously on invalid handles; asynchronous failures are
    /// reported through the returned [`Event`].
    fn enqueue_write(
        &self,
        queue: QueueId,
        buffer: MemId,
        offset: u64,
        payload: Payload,
        blocking: bool,
    ) -> ClResult<Event>;

    /// `clEnqueueReadBuffer`. The read bytes travel on the completed event
    /// ([`Event::take_payload`]).
    ///
    /// # Errors
    ///
    /// Fails synchronously on invalid handles; asynchronous failures are
    /// reported through the returned [`Event`].
    fn enqueue_read(
        &self,
        queue: QueueId,
        buffer: MemId,
        offset: u64,
        len: u64,
        blocking: bool,
    ) -> ClResult<Event>;

    /// `clEnqueueNDRangeKernel` with the arguments set so far.
    ///
    /// # Errors
    ///
    /// Fails when arguments are missing or handles are stale.
    fn enqueue_kernel(&self, queue: QueueId, kernel: KernelId, work: NdRange) -> ClResult<Event>;

    /// `clEnqueueCopyBuffer`: DDR-to-DDR copy between two device buffers
    /// (no PCIe traversal).
    ///
    /// # Errors
    ///
    /// Fails synchronously on invalid handles; asynchronous failures are
    /// reported through the returned [`Event`].
    fn enqueue_copy(
        &self,
        queue: QueueId,
        src: MemId,
        dst: MemId,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
    ) -> ClResult<Event>;

    /// `clEnqueueMarker`: returns an event that completes once every
    /// command enqueued so far on `queue` has completed.
    ///
    /// # Errors
    ///
    /// Fails on stale queue handles.
    fn enqueue_marker(&self, queue: QueueId) -> ClResult<Event>;

    /// `clEnqueueBarrier`: a synchronization point. On the remote backend
    /// this *seals the current multi-operation task* — the paper lists
    /// `clEnqueueBarrier` alongside `clFinish`/`clFlush` as a task
    /// boundary (§III-B).
    ///
    /// # Errors
    ///
    /// Fails on stale queue handles.
    fn enqueue_barrier(&self, queue: QueueId) -> ClResult<Event>;

    /// `clFlush`: submits buffered commands to the device (for the remote
    /// backend this closes the current multi-operation task).
    ///
    /// # Errors
    ///
    /// Fails on stale queue handles.
    fn flush(&self, queue: QueueId) -> ClResult<()>;

    /// `clFinish`: flushes and blocks until every command in the queue has
    /// completed, advancing the host clock.
    ///
    /// # Errors
    ///
    /// Fails on stale queue handles or when a queued command failed.
    fn finish(&self, queue: QueueId) -> ClResult<()>;
}
