#![forbid(unsafe_code)]

//! # bf-ocl — an OpenCL-style host API with pluggable backends
//!
//! BlastFunction's *transparency* contribution is that accelerated host
//! code written against the OpenCL host API runs unchanged whether the
//! board is directly attached or time-shared behind a Device Manager. This
//! crate is that API surface:
//!
//! * handle types mirroring the OpenCL object model — [`Platform`],
//!   [`Device`], [`Context`], [`Program`], [`Kernel`], [`Buffer`],
//!   [`Queue`];
//! * [`Event`]s with the standard `Queued → Submitted → Running → Complete`
//!   status lifecycle, [`wait_for_events`] and profiling timestamps;
//! * the [`Backend`] trait — the seam between the API and a runtime — and
//!   the [`NativeBackend`] (direct PCIe access, the paper's baseline). The
//!   Remote OpenCL Library in `bf-remote` implements the same trait.
//!
//! ```
//! use std::sync::Arc;
//! use bf_fpga::{Bitstream, Board, BoardSpec, FnKernel, KernelDescriptor, KernelInvocation};
//! use bf_model::{node_b, PcieGeneration, PcieLink, VirtualClock, VirtualDuration};
//! use bf_ocl::{BitstreamCatalog, Device, NativeBackend, NdRange};
//! use parking_lot::Mutex;
//!
//! # fn main() -> Result<(), bf_ocl::ClError> {
//! let negate = FnKernel::new(
//!     |_inv: &KernelInvocation| VirtualDuration::from_micros(30),
//!     |inv, mem| {
//!         let buf = inv.arg(0)?.as_buffer()?;
//!         for b in mem.bytes_mut(buf)? { *b = !*b; }
//!         Ok(())
//!     },
//! );
//! let mut catalog = BitstreamCatalog::new();
//! catalog.register(Arc::new(Bitstream::new(
//!     "negate",
//!     vec![KernelDescriptor::new("negate", Arc::new(negate))],
//! )));
//! let board = Arc::new(Mutex::new(Board::new(
//!     BoardSpec::de5a_net(),
//!     PcieLink::new(PcieGeneration::Gen3, 8),
//! )));
//! let device = Device::new(Arc::new(NativeBackend::new(
//!     node_b(), board, catalog, VirtualClock::new(), "quickstart",
//! )));
//!
//! // Plain OpenCL-looking host code:
//! let ctx = device.create_context()?;
//! let program = ctx.build_program("negate")?;
//! let kernel = program.create_kernel("negate")?;
//! let buf = ctx.create_buffer(4)?;
//! let queue = ctx.create_queue()?;
//! queue.write(&buf, vec![0x0Fu8; 4])?;
//! kernel.set_arg_buffer(0, &buf)?;
//! queue.launch(&kernel, NdRange::d1(4))?;
//! queue.finish()?;
//! assert_eq!(queue.read_vec(&buf)?, vec![0xF0u8; 4]);
//! # Ok(())
//! # }
//! ```

mod backend;
mod error;
mod event;
mod handle;
mod native;
mod types;

pub use backend::Backend;
pub use error::{ClError, ClResult};
pub use event::{wait_for_events, CommandType, Event, EventCallback, EventProfile, EventStatus};
pub use handle::{Buffer, Context, Device, Kernel, Platform, Program, Queue};
pub use native::NativeBackend;
pub use types::{
    ArgValue, BitstreamCatalog, ContextId, DeviceInfo, KernelId, MemId, NdRange, ProgramId, QueueId,
};

#[cfg(test)]
mod proptests {
    use bf_model::VirtualTime;
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Whatever order runtime transitions arrive in, an event's status
        /// sequence observed through the API is monotone.
        #[test]
        fn event_status_is_monotone(transitions in proptest::collection::vec(0u8..4, 0..12)) {
            let ev = Event::new(CommandType::Marker, VirtualTime::ZERO);
            let mut observed = vec![ev.status()];
            for t in transitions {
                match t {
                    0 => ev.mark_submitted(VirtualTime::from_nanos(1)),
                    1 => ev.mark_running(VirtualTime::from_nanos(2)),
                    2 => ev.complete(VirtualTime::from_nanos(2), VirtualTime::from_nanos(3), None),
                    _ => ev.fail(ClError::InvalidQueue),
                }
                observed.push(ev.status());
            }
            for pair in observed.windows(2) {
                prop_assert!(pair[0] <= pair[1], "status went backwards: {observed:?}");
            }
        }

        /// Profiling timestamps, when present, are ordered
        /// queued <= submitted <= started <= ended.
        #[test]
        fn profiling_timestamps_are_ordered(
            submit in 0u64..100,
            start_extra in 0u64..100,
            run in 0u64..100,
        ) {
            let ev = Event::new(CommandType::NdRangeKernel, VirtualTime::ZERO);
            let submit_t = VirtualTime::from_nanos(submit);
            let start_t = submit_t + bf_model::VirtualDuration::from_nanos(start_extra);
            let end_t = start_t + bf_model::VirtualDuration::from_nanos(run);
            ev.mark_submitted(submit_t);
            ev.mark_running(start_t);
            ev.complete(start_t, end_t, None);
            let p = ev.profile();
            prop_assert!(p.queued <= p.submitted);
            prop_assert!(p.submitted <= p.started);
            prop_assert!(p.started <= p.ended);
        }
    }
}
