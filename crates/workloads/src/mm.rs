//! The Spector Matrix-Multiply kernel (paper §IV).
//!
//! Synthesized configuration (the best design the paper reports from the
//! Spector exploration): 1 compute unit, 8 work items per unit, fully
//! unrolled 16×16 blocks. Matrices are square `n × n` of `f32`.
//!
//! The timing model is cubic in `n`, fitted to the paper's native
//! measurements (Fig. 4c): 0.45 ms RTT at 16×16 and 3.571 s at 4096×4096,
//! after subtracting PCIe transfer time.

use std::sync::Arc;

use bf_fpga::{
    Bitstream, DeviceMemory, FpgaError, KernelBehavior, KernelDescriptor, KernelInvocation,
};
use bf_model::{KernelTiming, VirtualDuration};

use crate::profile::{OpProfile, RequestProfile, TaskProfile};

/// Bitstream id for the MM image.
pub const MM_BITSTREAM: &str = "spector-mm-1cu-8wi-b16x16";
/// Kernel name inside the bitstream.
pub const MM_KERNEL: &str = "mm";

/// Spector design-point parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmConfig {
    /// Compute units.
    pub compute_units: u32,
    /// Work items per unit.
    pub work_items: u32,
    /// Fully-unrolled block edge.
    pub block: u32,
}

impl MmConfig {
    /// The paper's best design point.
    pub fn paper() -> Self {
        MmConfig {
            compute_units: 1,
            work_items: 8,
            block: 16,
        }
    }
}

/// Calibrated kernel latency as a function of the matrix dimension `n`.
pub fn kernel_timing() -> KernelTiming {
    // RTT(16)   = 0.45 ms − 3 transfers ≈ 0.3 ms → kernel ≈ 0.15 ms
    // RTT(4096) = 3.571 s − transfers ≈ 32 ms    → kernel ≈ 3.539 s
    KernelTiming::fit_cubic(
        16,
        VirtualDuration::from_micros(150),
        4096,
        VirtualDuration::from_millis_f64(3_539.0),
    )
}

/// Kernel duration for an `n × n` multiply.
pub fn kernel_time(n: u32) -> VirtualDuration {
    kernel_timing().evaluate(u64::from(n))
}

/// Bytes of one `n × n` `f32` matrix.
pub fn matrix_bytes(n: u32) -> u64 {
    u64::from(n) * u64::from(n) * 4
}

/// Host-side reference GEMM: `C = A × B` for row-major `n × n` matrices.
///
/// # Panics
///
/// Panics when the slices are not `n * n` long.
pub fn reference(a: &[f32], b: &[f32], n: u32) -> Vec<f32> {
    let n = n as usize;
    assert_eq!(a.len(), n * n, "A must be n*n");
    assert_eq!(b.len(), n * n, "B must be n*n");
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Packs `f32`s into little-endian device bytes.
pub fn pack_f32(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Unpacks little-endian device bytes into `f32`s.
///
/// # Panics
///
/// Panics if `bytes` is not a multiple of 4.
pub fn unpack_f32(bytes: &[u8]) -> Vec<f32> {
    assert_eq!(bytes.len() % 4, 0, "f32 buffers are 4-byte aligned");
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

struct MmKernel;

impl KernelBehavior for MmKernel {
    fn duration(&self, invocation: &KernelInvocation) -> VirtualDuration {
        // global_work[0] carries n.
        kernel_timing().evaluate(invocation.global_work[0])
    }

    fn execute(
        &self,
        invocation: &KernelInvocation,
        memory: &mut DeviceMemory,
    ) -> Result<(), FpgaError> {
        let a = invocation.arg(0)?.as_buffer()?;
        let b = invocation.arg(1)?.as_buffer()?;
        let c = invocation.arg(2)?.as_buffer()?;
        let n = invocation.arg(3)?.as_u32()?;
        let bytes = matrix_bytes(n);
        for (name, buf) in [("A", a), ("B", b), ("C", c)] {
            if memory.len_of(buf)? < bytes {
                return Err(FpgaError::InvalidKernelArgs(format!(
                    "matrix {name} buffer smaller than {n}x{n}"
                )));
            }
        }
        let a_host = unpack_f32(
            &memory
                .bytes(a)?
                .ok_or_else(|| FpgaError::InvalidKernelArgs("A not materialized".into()))?
                [..bytes as usize],
        );
        let b_host = unpack_f32(
            &memory
                .bytes(b)?
                .ok_or_else(|| FpgaError::InvalidKernelArgs("B not materialized".into()))?
                [..bytes as usize],
        );
        let result = reference(&a_host, &b_host, n);
        memory.bytes_mut(c)?[..bytes as usize].copy_from_slice(&pack_f32(&result));
        Ok(())
    }
}

/// Builds the MM bitstream.
pub fn bitstream() -> Arc<Bitstream> {
    Arc::new(Bitstream::new(
        MM_BITSTREAM,
        vec![KernelDescriptor::new(MM_KERNEL, Arc::new(MmKernel))],
    ))
}

/// The per-request structure of the MM cloud function: one atomic task
/// `write A → write B → mm → read C`.
pub fn request_profile(n: u32) -> RequestProfile {
    let bytes = matrix_bytes(n);
    RequestProfile::new(
        "mm",
        vec![TaskProfile::new(vec![
            OpProfile::Write { bytes },
            OpProfile::Write { bytes },
            OpProfile::Kernel {
                duration: kernel_time(n),
            },
            OpProfile::Read { bytes },
        ])],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_matches_paper_fit_points() {
        assert!((kernel_time(16).as_millis_f64() - 0.15).abs() < 0.01);
        assert!((kernel_time(4096).as_secs_f64() - 3.539).abs() < 0.01);
        // 512 lands where Table III's service times need it (~7 ms).
        let t512 = kernel_time(512).as_millis_f64();
        assert!((6.0..9.0).contains(&t512), "kernel(512) = {t512} ms");
    }

    #[test]
    fn reference_matches_identity() {
        let n = 4u32;
        let mut eye = vec![0.0f32; 16];
        for i in 0..4 {
            eye[i * 4 + i] = 1.0;
        }
        let m: Vec<f32> = (0..16).map(|i| i as f32).collect();
        assert_eq!(reference(&eye, &m, n), m);
        assert_eq!(reference(&m, &eye, n), m);
    }

    #[test]
    fn reference_matches_hand_computed_2x2() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(reference(&a, &b, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let v = vec![0.0f32, -1.5, 3.25, f32::MAX];
        assert_eq!(unpack_f32(&pack_f32(&v)), v);
    }

    #[test]
    fn profile_moves_three_matrices() {
        let p = request_profile(512);
        assert_eq!(p.sync_points(), 1);
        assert_eq!(p.bytes_moved(), 3 * matrix_bytes(512));
        assert_eq!(p.op_count(), 4);
    }
}
