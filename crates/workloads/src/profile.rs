//! Request profiles: the per-request OpenCL operation structure of a
//! workload, consumed by the discrete-event cluster simulation.
//!
//! A profile captures what one HTTP request makes the function's host code
//! do: which transfers and kernel launches, grouped into the
//! multi-operation *tasks* that a flush/blocking call seals. Task
//! boundaries are what cost control round trips on the remote path and
//! what bounds interleaving between tenants on a shared device.

use bf_model::{NodeSpec, VirtualDuration};

/// One device operation inside a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpProfile {
    /// Host → device transfer of `bytes`.
    Write {
        /// Payload size.
        bytes: u64,
    },
    /// Device → host transfer of `bytes`.
    Read {
        /// Payload size.
        bytes: u64,
    },
    /// A kernel launch of known duration.
    Kernel {
        /// The launch's calibrated duration.
        duration: VirtualDuration,
    },
}

/// A group of operations executed atomically (one sealed task).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskProfile {
    /// Operations in issue order.
    pub ops: Vec<OpProfile>,
}

impl TaskProfile {
    /// A task from a list of operations.
    pub fn new(ops: Vec<OpProfile>) -> Self {
        TaskProfile { ops }
    }

    /// Total kernel time inside the task.
    pub fn kernel_time(&self) -> VirtualDuration {
        self.ops
            .iter()
            .filter_map(|op| match op {
                OpProfile::Kernel { duration } => Some(*duration),
                _ => None,
            })
            .sum()
    }

    /// Total bytes written to the device.
    pub fn bytes_written(&self) -> u64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                OpProfile::Write { bytes } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Total bytes read from the device.
    pub fn bytes_read(&self) -> u64 {
        self.ops
            .iter()
            .filter_map(|op| match op {
                OpProfile::Read { bytes } => Some(*bytes),
                _ => None,
            })
            .sum()
    }
}

/// The complete per-request structure of one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestProfile {
    /// Workload name (`"sobel"`, `"mm"`, `"pipecnn-alexnet"`).
    pub name: String,
    /// Tasks in order; each boundary is a host synchronization point
    /// (costing a control round trip on the remote path).
    pub tasks: Vec<TaskProfile>,
}

impl RequestProfile {
    /// Builds a profile.
    pub fn new(name: impl Into<String>, tasks: Vec<TaskProfile>) -> Self {
        RequestProfile {
            name: name.into(),
            tasks,
        }
    }

    /// Number of host synchronization points per request.
    pub fn sync_points(&self) -> usize {
        self.tasks.len()
    }

    /// Total kernel time per request.
    pub fn kernel_time(&self) -> VirtualDuration {
        self.tasks.iter().map(TaskProfile::kernel_time).sum()
    }

    /// Total bytes moved per request (both directions).
    pub fn bytes_moved(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| t.bytes_written() + t.bytes_read())
            .sum()
    }

    /// Total operation count per request.
    pub fn op_count(&self) -> usize {
        self.tasks.iter().map(|t| t.ops.len()).sum()
    }

    /// The uncontended device-side service time of one request on `node`:
    /// every transfer at the node's calibrated PCIe bandwidth plus every
    /// kernel launch at its profiled duration. This is the per-item cost a
    /// batching gateway amortizes its fixed dispatch overhead over.
    pub fn service_time(&self, node: &NodeSpec) -> VirtualDuration {
        self.tasks
            .iter()
            .flat_map(|t| t.ops.iter())
            .map(|op| match op {
                OpProfile::Write { bytes } | OpProfile::Read { bytes } => {
                    node.pcie().transfer_time(*bytes)
                }
                OpProfile::Kernel { duration } => *duration,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_over_tasks() {
        let profile = RequestProfile::new(
            "t",
            vec![
                TaskProfile::new(vec![
                    OpProfile::Write { bytes: 100 },
                    OpProfile::Kernel {
                        duration: VirtualDuration::from_millis(2),
                    },
                ]),
                TaskProfile::new(vec![
                    OpProfile::Kernel {
                        duration: VirtualDuration::from_millis(3),
                    },
                    OpProfile::Read { bytes: 50 },
                ]),
            ],
        );
        assert_eq!(profile.sync_points(), 2);
        assert_eq!(profile.kernel_time(), VirtualDuration::from_millis(5));
        assert_eq!(profile.bytes_moved(), 150);
        assert_eq!(profile.op_count(), 4);
    }

    #[test]
    fn service_time_charges_transfers_and_kernels() {
        let node = bf_model::node_b();
        let profile = RequestProfile::new(
            "t",
            vec![TaskProfile::new(vec![
                OpProfile::Write { bytes: 1 << 20 },
                OpProfile::Kernel {
                    duration: VirtualDuration::from_millis(2),
                },
                OpProfile::Read { bytes: 1 << 20 },
            ])],
        );
        let expected = node.pcie().transfer_time(1 << 20) * 2 + VirtualDuration::from_millis(2);
        assert_eq!(profile.service_time(&node), expected);
        // A kernel-only profile is node-independent.
        let compute = RequestProfile::new(
            "k",
            vec![TaskProfile::new(vec![OpProfile::Kernel {
                duration: VirtualDuration::from_millis(7),
            }])],
        );
        assert_eq!(compute.service_time(&node), VirtualDuration::from_millis(7));
    }
}
