//! PipeCNN running AlexNet (paper §IV).
//!
//! PipeCNN is an OpenCL FPGA accelerator for CNN inference whose host code
//! "calls several kernels iteratively" — each layer runs as a small group
//! of kernel invocations (memory-read, compute core, memory-write) with a
//! host synchronization in between. That per-layer synchronization is what
//! makes the remote path's control round trips visible in Table IV
//! (132.89 ms vs 94.29 ms native at medium load).
//!
//! The timing model is calibrated so a full AlexNet inference keeps the
//! board busy ≈ 81 ms (from Table IV's utilization/throughput ratios); the
//! functional path runs a real (simplified) forward pass with
//! deterministically generated weights.

use std::sync::Arc;

use bf_fpga::{
    Bitstream, DeviceMemory, FpgaError, KernelBehavior, KernelDescriptor, KernelInvocation,
};
use bf_model::VirtualDuration;

use crate::profile::{OpProfile, RequestProfile, TaskProfile};

/// Bitstream id for the PipeCNN/AlexNet image.
pub const PIPECNN_BITSTREAM: &str = "pipecnn-alexnet";
/// The per-layer compute kernel name.
pub const LAYER_KERNEL: &str = "cnn_layer";

/// Calibrated compute throughput of the PipeCNN core (ns per MAC).
const MAC_NS: f64 = 0.1077;
/// On-chip streaming bandwidth for the memrd/memwr kernels.
const STREAM_BYTES_PER_SEC: f64 = 15.0e9;

/// One network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layer {
    /// Grouped 2-D convolution + ReLU.
    Conv {
        /// Output channels.
        out_ch: u32,
        /// Square kernel edge.
        kernel: u32,
        /// Stride.
        stride: u32,
        /// Zero padding.
        pad: u32,
        /// Filter groups (AlexNet uses 2 on conv2/4/5).
        groups: u32,
    },
    /// Max pooling.
    Pool {
        /// Square window edge.
        kernel: u32,
        /// Stride.
        stride: u32,
    },
    /// Local response normalization.
    Lrn,
    /// Fully connected (+ ReLU unless final).
    Fc {
        /// Output dimension.
        out_dim: u32,
        /// Whether ReLU follows (false on the classifier layer).
        relu: bool,
    },
}

/// A CNN as PipeCNN sees it: an input shape and a layer list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnnNetwork {
    /// Network name.
    pub name: String,
    /// Input shape `(channels, height, width)`.
    pub input: (u32, u32, u32),
    /// The layers in order.
    pub layers: Vec<Layer>,
}

/// Shape of a layer's output: `(channels, height, width)`; FC layers
/// produce `(dim, 1, 1)`.
pub type Shape = (u32, u32, u32);

impl CnnNetwork {
    /// Standard AlexNet (227×227×3 input, 1000 classes), as synthesized by
    /// the paper.
    pub fn alexnet() -> Self {
        CnnNetwork {
            name: "alexnet".to_string(),
            input: (3, 227, 227),
            layers: vec![
                Layer::Conv {
                    out_ch: 96,
                    kernel: 11,
                    stride: 4,
                    pad: 0,
                    groups: 1,
                },
                Layer::Lrn,
                Layer::Pool {
                    kernel: 3,
                    stride: 2,
                },
                Layer::Conv {
                    out_ch: 256,
                    kernel: 5,
                    stride: 1,
                    pad: 2,
                    groups: 2,
                },
                Layer::Lrn,
                Layer::Pool {
                    kernel: 3,
                    stride: 2,
                },
                Layer::Conv {
                    out_ch: 384,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    groups: 1,
                },
                Layer::Conv {
                    out_ch: 384,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    groups: 2,
                },
                Layer::Conv {
                    out_ch: 256,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    groups: 2,
                },
                Layer::Pool {
                    kernel: 3,
                    stride: 2,
                },
                Layer::Fc {
                    out_dim: 4096,
                    relu: true,
                },
                Layer::Fc {
                    out_dim: 4096,
                    relu: true,
                },
                Layer::Fc {
                    out_dim: 1000,
                    relu: false,
                },
            ],
        }
    }

    /// A miniature network for functional tests and examples (full AlexNet
    /// is timing-accurate but too slow to run functionally in unit tests).
    pub fn tiny() -> Self {
        CnnNetwork {
            name: "tiny-cnn".to_string(),
            input: (3, 8, 8),
            layers: vec![
                Layer::Conv {
                    out_ch: 4,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    groups: 1,
                },
                Layer::Pool {
                    kernel: 2,
                    stride: 2,
                },
                Layer::Fc {
                    out_dim: 10,
                    relu: false,
                },
            ],
        }
    }

    /// Output shapes after each layer.
    pub fn shapes(&self) -> Vec<Shape> {
        let mut shapes = Vec::with_capacity(self.layers.len());
        let mut cur = self.input;
        for layer in &self.layers {
            cur = match *layer {
                Layer::Conv {
                    out_ch,
                    kernel,
                    stride,
                    pad,
                    ..
                } => {
                    let h = (cur.1 + 2 * pad - kernel) / stride + 1;
                    let w = (cur.2 + 2 * pad - kernel) / stride + 1;
                    (out_ch, h, w)
                }
                Layer::Pool { kernel, stride } => {
                    let h = (cur.1 - kernel) / stride + 1;
                    let w = (cur.2 - kernel) / stride + 1;
                    (cur.0, h, w)
                }
                Layer::Lrn => cur,
                Layer::Fc { out_dim, .. } => (out_dim, 1, 1),
            };
            shapes.push(cur);
        }
        shapes
    }

    /// Multiply-accumulates performed by layer `idx`.
    pub fn layer_macs(&self, idx: usize) -> u64 {
        let input = if idx == 0 {
            self.input
        } else {
            self.shapes()[idx - 1]
        };
        let output = self.shapes()[idx];
        match self.layers[idx] {
            Layer::Conv {
                out_ch,
                kernel,
                groups,
                ..
            } => {
                let in_per_group = u64::from(input.0 / groups);
                u64::from(output.1)
                    * u64::from(output.2)
                    * u64::from(out_ch)
                    * u64::from(kernel)
                    * u64::from(kernel)
                    * in_per_group
            }
            Layer::Fc { out_dim, .. } => {
                u64::from(input.0) * u64::from(input.1) * u64::from(input.2) * u64::from(out_dim)
            }
            Layer::Pool { .. } | Layer::Lrn => 0,
        }
    }

    /// Total MACs per inference.
    pub fn total_macs(&self) -> u64 {
        (0..self.layers.len()).map(|i| self.layer_macs(i)).sum()
    }

    /// Bytes of the network input (f32 CHW).
    pub fn input_bytes(&self) -> u64 {
        let (c, h, w) = self.input;
        u64::from(c) * u64::from(h) * u64::from(w) * 4
    }

    /// Bytes of a layer's output (f32).
    pub fn layer_output_bytes(&self, idx: usize) -> u64 {
        let (c, h, w) = self.shapes()[idx];
        u64::from(c) * u64::from(h) * u64::from(w) * 4
    }

    /// Bytes of the final output.
    pub fn output_bytes(&self) -> u64 {
        self.layer_output_bytes(self.layers.len() - 1)
    }

    /// The kernel invocations PipeCNN's host loop issues for layer `idx`:
    /// conv/fc layers run as memrd → core → memwr, pool/LRN as one kernel.
    /// Returns each invocation's calibrated duration.
    pub fn layer_invocations(&self, idx: usize) -> Vec<VirtualDuration> {
        let in_bytes = if idx == 0 {
            self.input_bytes()
        } else {
            self.layer_output_bytes(idx - 1)
        };
        let out_bytes = self.layer_output_bytes(idx);
        let stream = |bytes: u64| {
            VirtualDuration::from_micros(50)
                + VirtualDuration::from_secs_f64(bytes as f64 / STREAM_BYTES_PER_SEC)
        };
        match self.layers[idx] {
            Layer::Conv { .. } | Layer::Fc { .. } => {
                let core = VirtualDuration::from_micros(150)
                    + VirtualDuration::from_nanos((self.layer_macs(idx) as f64 * MAC_NS) as u64);
                vec![stream(in_bytes), core, stream(out_bytes)]
            }
            Layer::Pool { .. } | Layer::Lrn => {
                let elems = out_bytes / 4;
                vec![
                    VirtualDuration::from_micros(80)
                        + VirtualDuration::from_nanos((elems as f64 * 0.5) as u64),
                ]
            }
        }
    }

    /// Whole-layer duration (sum of its invocations) — what the fused
    /// functional kernel charges.
    pub fn layer_duration(&self, idx: usize) -> VirtualDuration {
        self.layer_invocations(idx).into_iter().sum()
    }

    /// Device-busy time of one full inference.
    pub fn inference_busy_time(&self) -> VirtualDuration {
        (0..self.layers.len()).map(|i| self.layer_duration(i)).sum()
    }

    /// Total kernel invocations per inference (what multiplies the remote
    /// path's control overhead in Table IV).
    pub fn kernel_invocations(&self) -> usize {
        (0..self.layers.len())
            .map(|i| self.layer_invocations(i).len())
            .sum()
    }

    /// Reference forward pass on the host (f32 CHW input).
    ///
    /// # Panics
    ///
    /// Panics when `input` does not match the network's input shape.
    pub fn reference_forward(&self, input: &[f32]) -> Vec<f32> {
        let (c, h, w) = self.input;
        assert_eq!(input.len(), (c * h * w) as usize, "input shape mismatch");
        // Double-buffered: each layer reads the front buffer (the raw
        // input on layer 0 — no up-front copy) and writes into the back
        // buffer, then the pair swaps. Two allocations amortized over the
        // whole pass instead of a fresh activation buffer per layer.
        let shapes = self.shapes();
        let mut front = Vec::new();
        let mut back = Vec::new();
        let mut cur_shape = self.input;
        for (idx, layer) in self.layers.iter().enumerate() {
            let src: &[f32] = if idx == 0 { input } else { &front };
            forward_layer_into(layer, idx, src, cur_shape, &mut back);
            std::mem::swap(&mut front, &mut back);
            cur_shape = shapes[idx];
        }
        front
    }

    /// Builds the PipeCNN bitstream: one fused per-layer kernel
    /// (`cnn_layer`) carrying the network description.
    pub fn bitstream(&self) -> Arc<Bitstream> {
        let id = format!("pipecnn-{}", self.name);
        let behavior = LayerKernel {
            network: Arc::new(self.clone()),
        };
        Arc::new(Bitstream::new(
            id,
            vec![KernelDescriptor::new(LAYER_KERNEL, Arc::new(behavior))],
        ))
    }

    /// A hypothetical batched profile (everything in one task, a single
    /// host synchronization): what PipeCNN's host code *could* do if it did
    /// not synchronize per layer. Used by the task-granularity ablation to
    /// quantify how much of Table IV's remote overhead the per-layer syncs
    /// cost.
    pub fn request_profile_batched(&self) -> RequestProfile {
        let mut ops = vec![OpProfile::Write {
            bytes: self.input_bytes(),
        }];
        for idx in 0..self.layers.len() {
            for duration in self.layer_invocations(idx) {
                ops.push(OpProfile::Kernel { duration });
            }
        }
        ops.push(OpProfile::Read {
            bytes: self.output_bytes(),
        });
        RequestProfile::new(
            format!("pipecnn-{}-batched", self.name),
            vec![TaskProfile::new(ops)],
        )
    }

    /// The per-request structure for the cluster simulation: write input,
    /// then each kernel invocation as its own synchronized task (PipeCNN's
    /// host loop), then read the classifier output.
    pub fn request_profile(&self) -> RequestProfile {
        let mut tasks = vec![TaskProfile::new(vec![OpProfile::Write {
            bytes: self.input_bytes(),
        }])];
        for idx in 0..self.layers.len() {
            for duration in self.layer_invocations(idx) {
                tasks.push(TaskProfile::new(vec![OpProfile::Kernel { duration }]));
            }
        }
        tasks.push(TaskProfile::new(vec![OpProfile::Read {
            bytes: self.output_bytes(),
        }]));
        RequestProfile::new(format!("pipecnn-{}", self.name), tasks)
    }
}

/// Deterministic pseudo-random weight in `[-0.1, 0.1]` (hardware weights
/// are fixed at synthesis time; any deterministic set works for the
/// reproduction).
fn weight(seed: u64) -> f32 {
    let h = seed
        .wrapping_add(0x9E37_79B9)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (((h >> 40) & 0xFF_FFFF) as f32 / 16_777_216.0 - 0.5) * 0.2
}

fn forward_layer(layer: &Layer, idx: usize, input: &[f32], shape: Shape) -> Vec<f32> {
    let mut out = Vec::new();
    forward_layer_into(layer, idx, input, shape, &mut out);
    out
}

/// Runs one layer, writing the activations into `out` (cleared and resized
/// in place so a caller can reuse the same buffer across layers).
fn forward_layer_into(layer: &Layer, idx: usize, input: &[f32], shape: Shape, out: &mut Vec<f32>) {
    let (ic, ih, iw) = (shape.0 as usize, shape.1 as usize, shape.2 as usize);
    let lseed = (idx as u64) << 48;
    out.clear();
    match *layer {
        Layer::Conv {
            out_ch,
            kernel,
            stride,
            pad,
            groups,
        } => {
            let (oc, k, s, p, g) = (
                out_ch as usize,
                kernel as usize,
                stride as usize,
                pad as usize,
                groups as usize,
            );
            let oh = (ih + 2 * p - k) / s + 1;
            let ow = (iw + 2 * p - k) / s + 1;
            let icg = ic / g;
            let ocg = oc / g;
            out.resize(oc * oh * ow, 0.0);
            for o in 0..oc {
                let group = o / ocg;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = weight(lseed | (o as u64) << 24 | 0xB1A5);
                        for i in 0..icg {
                            let in_ch = group * icg + i;
                            for ky in 0..k {
                                let y = (oy * s + ky) as isize - p as isize;
                                if y < 0 || y >= ih as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let x = (ox * s + kx) as isize - p as isize;
                                    if x < 0 || x >= iw as isize {
                                        continue;
                                    }
                                    let wv = weight(
                                        lseed
                                            | (o as u64) << 24
                                            | (i as u64) << 12
                                            | (ky * k + kx) as u64,
                                    );
                                    acc +=
                                        wv * input[in_ch * ih * iw + y as usize * iw + x as usize];
                                }
                            }
                        }
                        out[o * oh * ow + oy * ow + ox] = acc.max(0.0); // ReLU
                    }
                }
            }
        }
        Layer::Pool { kernel, stride } => {
            let (k, s) = (kernel as usize, stride as usize);
            let oh = (ih - k) / s + 1;
            let ow = (iw - k) / s + 1;
            out.resize(ic * oh * ow, 0.0);
            for c in 0..ic {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::MIN;
                        for ky in 0..k {
                            for kx in 0..k {
                                best =
                                    best.max(input[c * ih * iw + (oy * s + ky) * iw + ox * s + kx]);
                            }
                        }
                        out[c * oh * ow + oy * ow + ox] = best;
                    }
                }
            }
        }
        Layer::Lrn => {
            // Across-channel LRN with AlexNet's standard parameters.
            let (alpha, beta, n) = (1e-4f32, 0.75f32, 5usize);
            let hw = ih * iw;
            out.resize(input.len(), 0.0);
            for c in 0..ic {
                let lo = c.saturating_sub(n / 2);
                let hi = (c + n / 2).min(ic - 1);
                for i in 0..hw {
                    let mut sum = 0.0f32;
                    for cc in lo..=hi {
                        let v = input[cc * hw + i];
                        sum += v * v;
                    }
                    out[c * hw + i] = input[c * hw + i] / (1.0 + alpha / n as f32 * sum).powf(beta);
                }
            }
        }
        Layer::Fc { out_dim, relu } => {
            let in_dim = ic * ih * iw;
            out.resize(out_dim as usize, 0.0);
            for (o, slot) in out.iter_mut().enumerate() {
                let mut acc = weight(lseed | (o as u64) << 24 | 0xB1A5);
                for (i, v) in input.iter().enumerate().take(in_dim) {
                    acc += weight(lseed | (o as u64) << 24 | i as u64) * v;
                }
                *slot = if relu { acc.max(0.0) } else { acc };
            }
        }
    }
}

struct LayerKernel {
    network: Arc<CnnNetwork>,
}

impl KernelBehavior for LayerKernel {
    fn duration(&self, invocation: &KernelInvocation) -> VirtualDuration {
        let idx = invocation
            .arg(2)
            .and_then(|a| a.as_u32())
            .map(|v| v as usize)
            .unwrap_or(0)
            .min(self.network.layers.len().saturating_sub(1));
        self.network.layer_duration(idx)
    }

    fn execute(
        &self,
        invocation: &KernelInvocation,
        memory: &mut DeviceMemory,
    ) -> Result<(), FpgaError> {
        let input = invocation.arg(0)?.as_buffer()?;
        let output = invocation.arg(1)?.as_buffer()?;
        let idx = invocation.arg(2)?.as_u32()? as usize;
        if idx >= self.network.layers.len() {
            return Err(FpgaError::InvalidKernelArgs(format!(
                "layer {idx} out of range"
            )));
        }
        let in_shape = if idx == 0 {
            self.network.input
        } else {
            self.network.shapes()[idx - 1]
        };
        let in_len = (in_shape.0 * in_shape.1 * in_shape.2) as usize * 4;
        let raw = memory
            .bytes(input)?
            .ok_or_else(|| FpgaError::InvalidKernelArgs("layer input not materialized".into()))?;
        if raw.len() < in_len {
            return Err(FpgaError::InvalidKernelArgs(
                "layer input buffer too small".into(),
            ));
        }
        let in_host: Vec<f32> = raw[..in_len]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let result = forward_layer(&self.network.layers[idx], idx, &in_host, in_shape);
        let bytes: Vec<u8> = result.iter().flat_map(|v| v.to_le_bytes()).collect();
        let out_mem = memory.bytes_mut(output)?;
        if out_mem.len() < bytes.len() {
            return Err(FpgaError::InvalidKernelArgs(
                "layer output buffer too small".into(),
            ));
        }
        out_mem[..bytes.len()].copy_from_slice(&bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_has_the_canonical_shapes() {
        let net = CnnNetwork::alexnet();
        let shapes = net.shapes();
        assert_eq!(shapes[0], (96, 55, 55), "conv1");
        assert_eq!(shapes[2], (96, 27, 27), "pool1");
        assert_eq!(shapes[3], (256, 27, 27), "conv2");
        assert_eq!(shapes[9], (256, 6, 6), "pool5");
        assert_eq!(shapes[12], (1000, 1, 1), "fc8");
    }

    #[test]
    fn alexnet_macs_are_about_724m() {
        let macs = CnnNetwork::alexnet().total_macs();
        let m = macs as f64 / 1e6;
        assert!((m - 724.0).abs() < 15.0, "total MACs {m}M");
    }

    #[test]
    fn inference_busy_time_matches_table_iv_calibration() {
        let busy = CnnNetwork::alexnet().inference_busy_time().as_millis_f64();
        assert!((75.0..90.0).contains(&busy), "busy {busy} ms");
    }

    #[test]
    fn kernel_invocations_explain_the_remote_latency_gap() {
        // Table IV: BlastFunction adds ≈ 33–39 ms over native; at ~1 ms of
        // control RTT per synchronized invocation that needs ≈ 30 sync
        // points per inference.
        let n = CnnNetwork::alexnet().kernel_invocations();
        assert!((25..35).contains(&n), "invocations {n}");
    }

    #[test]
    fn tiny_network_forward_pass_is_deterministic_and_sane() {
        let net = CnnNetwork::tiny();
        let input: Vec<f32> = (0..net.input_bytes() / 4)
            .map(|i| (i % 17) as f32 / 16.0)
            .collect();
        let out1 = net.reference_forward(&input);
        let out2 = net.reference_forward(&input);
        assert_eq!(out1, out2, "deterministic");
        assert_eq!(out1.len(), 10);
        assert!(out1.iter().all(|v| v.is_finite()));
        assert!(out1.iter().any(|v| *v != 0.0), "non-degenerate output");
    }

    #[test]
    fn double_buffered_forward_matches_per_layer_allocation() {
        let net = CnnNetwork::tiny();
        let input: Vec<f32> = (0..net.input_bytes() / 4)
            .map(|i| ((i * 7) % 23) as f32 / 22.0 - 0.5)
            .collect();
        // Reference: the straightforward fresh-buffer-per-layer pass.
        let mut cur = input.clone();
        let mut shape = net.input;
        for (idx, layer) in net.layers.iter().enumerate() {
            cur = forward_layer(layer, idx, &cur, shape);
            shape = net.shapes()[idx];
        }
        assert_eq!(net.reference_forward(&input), cur);
    }

    #[test]
    fn profile_has_one_task_per_invocation_plus_io() {
        let net = CnnNetwork::alexnet();
        let p = net.request_profile();
        assert_eq!(p.sync_points(), net.kernel_invocations() + 2);
        assert_eq!(p.kernel_time(), net.inference_busy_time());
    }

    #[test]
    fn batched_profile_has_one_sync_but_identical_work() {
        let net = CnnNetwork::alexnet();
        let layered = net.request_profile();
        let batched = net.request_profile_batched();
        assert_eq!(batched.sync_points(), 1);
        assert_eq!(batched.kernel_time(), layered.kernel_time());
        assert_eq!(batched.bytes_moved(), layered.bytes_moved());
        assert_eq!(batched.op_count(), layered.op_count());
    }

    #[test]
    fn weights_are_bounded() {
        for seed in 0..10_000u64 {
            let w = weight(seed);
            assert!((-0.1..=0.1).contains(&w), "weight({seed}) = {w}");
        }
    }
}
