//! The Spector Sobel edge detector (paper §IV).
//!
//! Synthesized configuration (best-latency design point from the Spector
//! suite, as the paper selects): 32×8 blocks, 4×1 window, no SIMD, one
//! compute unit. Pixels are 32-bit RGBA words — the paper's 10×10 image
//! moves "800 bytes sent and received" (400 each way) and the 1920×1080
//! image ~8 MB per direction.
//!
//! The timing model is fitted to the paper's native round-trip
//! measurements (Fig. 4b): 0.27 ms at 10×10 and 14.53 ms at 1920×1080,
//! after subtracting the PCIe transfer component so only kernel time
//! remains.

use std::sync::Arc;

use bf_fpga::{
    Bitstream, DeviceMemory, FpgaError, KernelBehavior, KernelDescriptor, KernelInvocation,
};
use bf_model::{KernelTiming, VirtualDuration};

use crate::profile::{OpProfile, RequestProfile, TaskProfile};

/// Bitstream id for the Sobel image.
pub const SOBEL_BITSTREAM: &str = "spector-sobel-b32x8-w4x1";
/// Kernel name inside the bitstream.
pub const SOBEL_KERNEL: &str = "sobel";
/// Bytes per pixel (RGBA).
pub const BYTES_PER_PIXEL: u64 = 4;

/// Spector design-point parameters (informational; they fix the timing
/// model below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SobelConfig {
    /// Block width of the tiled pipeline.
    pub block_w: u32,
    /// Block height of the tiled pipeline.
    pub block_h: u32,
    /// Sliding-window width.
    pub window_w: u32,
    /// Sliding-window height.
    pub window_h: u32,
    /// SIMD lanes.
    pub simd: u32,
    /// Compute units.
    pub compute_units: u32,
}

impl SobelConfig {
    /// The paper's best-latency design point.
    pub fn paper() -> Self {
        SobelConfig {
            block_w: 32,
            block_h: 8,
            window_w: 4,
            window_h: 1,
            simd: 1,
            compute_units: 1,
        }
    }
}

/// Calibrated kernel latency as a function of pixel count.
pub fn kernel_timing() -> KernelTiming {
    // Native RTT(10x10)   = 0.27 ms; transfers 2 × (0.1 ms setup + 400 B)  ≈ 0.20 ms → kernel ≈ 70 µs
    // Native RTT(1920x1080) = 14.53 ms; transfers 2 × ~1.48 ms ≈ 2.97 ms → kernel ≈ 11.56 ms
    KernelTiming::fit_linear(
        100,
        VirtualDuration::from_micros(70),
        1920 * 1080,
        VirtualDuration::from_micros(11_560),
    )
}

/// Kernel duration for a `width × height` image.
pub fn kernel_time(width: u32, height: u32) -> VirtualDuration {
    kernel_timing().evaluate(u64::from(width) * u64::from(height))
}

/// Image payload size per direction for a `width × height` frame.
pub fn frame_bytes(width: u32, height: u32) -> u64 {
    u64::from(width) * u64::from(height) * BYTES_PER_PIXEL
}

/// Host-side reference implementation: Sobel gradient magnitude over the
/// luminance of RGBA pixels, zero at the border, result replicated into an
/// RGBA grayscale pixel.
pub fn reference(input: &[u32], width: u32, height: u32) -> Vec<u32> {
    let (w, h) = (width as usize, height as usize);
    assert_eq!(input.len(), w * h, "input must be width*height pixels");
    let luma = |p: u32| -> i32 {
        let r = (p & 0xff) as i32;
        let g = ((p >> 8) & 0xff) as i32;
        let b = ((p >> 16) & 0xff) as i32;
        (r * 77 + g * 151 + b * 28) >> 8
    };
    let mut out = vec![0u32; w * h];
    if w < 3 || h < 3 {
        return out;
    }
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let l = |dx: isize, dy: isize| {
                let xi = (x as isize + dx) as usize;
                let yi = (y as isize + dy) as usize;
                luma(input[yi * w + xi])
            };
            let gx = -l(-1, -1) - 2 * l(-1, 0) - l(-1, 1) + l(1, -1) + 2 * l(1, 0) + l(1, 1);
            let gy = -l(-1, -1) - 2 * l(0, -1) - l(1, -1) + l(-1, 1) + 2 * l(0, 1) + l(1, 1);
            let mag = (((gx * gx + gy * gy) as f64).sqrt() as u32).min(255);
            out[y * w + x] = mag | (mag << 8) | (mag << 16) | 0xff00_0000;
        }
    }
    out
}

/// Packs pixels into the little-endian byte layout device buffers use.
pub fn pack_pixels(pixels: &[u32]) -> Vec<u8> {
    pixels.iter().flat_map(|p| p.to_le_bytes()).collect()
}

/// Unpacks device bytes into pixels.
///
/// # Panics
///
/// Panics if `bytes` is not a multiple of 4.
pub fn unpack_pixels(bytes: &[u8]) -> Vec<u32> {
    assert_eq!(bytes.len() % 4, 0, "pixel buffers are 4-byte aligned");
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

struct SobelKernel;

impl KernelBehavior for SobelKernel {
    fn duration(&self, invocation: &KernelInvocation) -> VirtualDuration {
        kernel_timing().evaluate(invocation.work_items())
    }

    fn execute(
        &self,
        invocation: &KernelInvocation,
        memory: &mut DeviceMemory,
    ) -> Result<(), FpgaError> {
        let input = invocation.arg(0)?.as_buffer()?;
        let output = invocation.arg(1)?.as_buffer()?;
        let width = invocation.arg(2)?.as_u32()?;
        let height = invocation.arg(3)?.as_u32()?;
        let expected = frame_bytes(width, height);
        if memory.len_of(input)? < expected || memory.len_of(output)? < expected {
            return Err(FpgaError::InvalidKernelArgs(format!(
                "buffers too small for a {width}x{height} frame"
            )));
        }
        let in_bytes = memory
            .bytes(input)?
            .ok_or_else(|| FpgaError::InvalidKernelArgs("input not materialized".into()))?;
        let pixels = unpack_pixels(&in_bytes[..expected as usize]);
        let result = reference(&pixels, width, height);
        let out_bytes = pack_pixels(&result);
        memory.bytes_mut(output)?[..expected as usize].copy_from_slice(&out_bytes);
        Ok(())
    }
}

/// Builds the Sobel bitstream (one kernel, one compute unit).
pub fn bitstream() -> Arc<Bitstream> {
    Arc::new(Bitstream::new(
        SOBEL_BITSTREAM,
        vec![KernelDescriptor::new(SOBEL_KERNEL, Arc::new(SobelKernel))],
    ))
}

/// The per-request structure of the Sobel cloud function: one atomic task
/// `write frame → sobel → read frame` (the host code pipelines the three
/// calls and synchronizes once).
pub fn request_profile(width: u32, height: u32) -> RequestProfile {
    let bytes = frame_bytes(width, height);
    RequestProfile::new(
        "sobel",
        vec![TaskProfile::new(vec![
            OpProfile::Write { bytes },
            OpProfile::Kernel {
                duration: kernel_time(width, height),
            },
            OpProfile::Read { bytes },
        ])],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_matches_paper_fit_points() {
        let t_small = kernel_time(10, 10);
        let t_large = kernel_time(1920, 1080);
        assert!(
            (t_small.as_millis_f64() - 0.07).abs() < 0.01,
            "small {t_small}"
        );
        assert!(
            (t_large.as_millis_f64() - 11.56).abs() < 0.05,
            "large {t_large}"
        );
    }

    #[test]
    fn frame_bytes_match_paper_numbers() {
        assert_eq!(
            frame_bytes(10, 10),
            400,
            "10x10 sends 400 B each way (800 total)"
        );
        let big = frame_bytes(1920, 1080);
        assert!(
            (7..9).contains(&(big >> 20)),
            "1080p is ~8 MB per direction, got {big}"
        );
    }

    #[test]
    fn reference_detects_an_edge() {
        // Left half black, right half white: strong vertical edge.
        let (w, h) = (8u32, 8u32);
        let input: Vec<u32> = (0..h * w)
            .map(|i| {
                if i % w < w / 2 {
                    0xff00_0000
                } else {
                    0xffff_ffff
                }
            })
            .collect();
        let out = reference(&input, w, h);
        let edge = out[(h / 2 * w + w / 2 - 1) as usize] & 0xff;
        let flat = out[(h / 2 * w + 1) as usize] & 0xff;
        assert!(edge > 200, "edge magnitude {edge}");
        assert_eq!(flat, 0, "flat region stays black");
        // Border is zeroed.
        assert_eq!(out[0], 0);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let pixels = vec![0x0102_0304, 0xffff_ffff, 0];
        assert_eq!(unpack_pixels(&pack_pixels(&pixels)), pixels);
    }

    #[test]
    fn profile_is_one_atomic_task() {
        let p = request_profile(1920, 1080);
        assert_eq!(p.sync_points(), 1);
        assert_eq!(p.op_count(), 3);
        assert_eq!(p.bytes_moved(), 2 * frame_bytes(1920, 1080));
    }

    #[test]
    fn tiny_images_are_all_border() {
        let out = reference(&[0xffff_ffff; 4], 2, 2);
        assert!(out.iter().all(|&p| p == 0));
    }
}
