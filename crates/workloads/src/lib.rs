#![forbid(unsafe_code)]

//! # bf-workloads — the paper's accelerated cloud functions
//!
//! The evaluation (paper §IV) uses three accelerators from the literature:
//!
//! * [`sobel`] — the **Spector Sobel edge detector** (32×8 blocks, 4×1
//!   window, 1 CU: the best-latency design point);
//! * [`mm`] — the **Spector matrix multiply** (1 CU, 8 work items, fully
//!   unrolled 16×16 blocks);
//! * [`pipecnn`] — **PipeCNN running AlexNet**, a multi-kernel inference
//!   pipeline whose host code synchronizes per layer.
//!
//! Each module provides a functional [`KernelBehavior`] (real math, so
//! end-to-end results are verifiable), a latency model *fitted to the
//! paper's own Fig. 4 measurements*, a bitstream constructor, a host-side
//! reference implementation, and a [`RequestProfile`] describing the
//! per-request task structure for the cluster simulation.
//!
//! [`KernelBehavior`]: bf_fpga::KernelBehavior

pub mod mm;
pub mod pipecnn;
pub mod profile;
pub mod sobel;

pub use pipecnn::CnnNetwork;
pub use profile::{OpProfile, RequestProfile, TaskProfile};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// GEMM distributes over addition: A×(B+C) = A×B + A×C.
        #[test]
        fn mm_is_bilinear(
            n in 2u32..8,
            seed in any::<u64>(),
        ) {
            let len = (n * n) as usize;
            let gen = |salt: u64| -> Vec<f32> {
                (0..len)
                    .map(|i| {
                        let h = (seed ^ salt)
                            .wrapping_add(i as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
                    })
                    .collect()
            };
            let a = gen(1);
            let b = gen(2);
            let c = gen(3);
            let bc: Vec<f32> = b.iter().zip(&c).map(|(x, y)| x + y).collect();
            let lhs = mm::reference(&a, &bc, n);
            let ab = mm::reference(&a, &b, n);
            let ac = mm::reference(&a, &c, n);
            for i in 0..len {
                let rhs = ab[i] + ac[i];
                prop_assert!((lhs[i] - rhs).abs() < 1e-3, "index {i}: {} vs {rhs}", lhs[i]);
            }
        }

        /// A constant image has zero gradient everywhere.
        #[test]
        fn sobel_of_constant_image_is_zero(
            w in 3u32..24,
            h in 3u32..24,
            pixel in any::<u32>(),
        ) {
            let input = vec![pixel; (w * h) as usize];
            let out = sobel::reference(&input, w, h);
            prop_assert!(out.iter().all(|&p| p & 0x00ff_ffff == 0), "non-zero gradient");
        }

        /// Sobel kernel timing is monotone in image size.
        #[test]
        fn sobel_timing_is_monotone(a in 1u64..1 << 22, b in 1u64..1 << 22) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let t = sobel::kernel_timing();
            prop_assert!(t.evaluate(lo) <= t.evaluate(hi));
        }

        /// CNN layer shape propagation never produces a zero dimension for
        /// valid configurations.
        #[test]
        fn tiny_cnn_shapes_are_positive(_x in 0u8..1) {
            for net in [CnnNetwork::tiny(), CnnNetwork::alexnet()] {
                for (c, h, w) in net.shapes() {
                    prop_assert!(c > 0 && h > 0 && w > 0);
                }
            }
        }
    }
}
