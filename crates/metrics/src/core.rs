//! Counter, gauge and histogram primitives plus a named registry with the
//! Prometheus text exposition format.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

/// A label set attached to a metric series, kept sorted for a canonical
/// exposition order.
pub type Labels = BTreeMap<String, String>;

/// A monotonically increasing counter.
///
/// ```
/// use bf_metrics::Counter;
///
/// let c = Counter::new();
/// c.inc();
/// c.inc_by(2.5);
/// assert_eq!(c.value(), 3.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<Mutex<f64>>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.inc_by(1.0);
    }

    /// Adds `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative — counters only go up.
    pub fn inc_by(&self, v: f64) {
        assert!(v >= 0.0, "counters are monotonic; got increment {v}");
        *self.value.lock() += v;
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        *self.value.lock()
    }
}

/// A gauge that can move in either direction.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<Mutex<f64>>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        *self.value.lock() = v;
    }

    /// Adds `v` (may be negative).
    pub fn add(&self, v: f64) {
        *self.value.lock() += v;
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        *self.value.lock()
    }
}

/// A fixed-bucket cumulative histogram (Prometheus semantics: each bucket
/// counts observations `<=` its upper bound, plus `+Inf`).
#[derive(Debug, Clone)]
pub struct Histogram {
    histogram: Arc<Mutex<HistogramInner>>,
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            histogram: Arc::new(Mutex::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
                sum: 0.0,
                total: 0,
            })),
        }
    }

    /// Default latency buckets (milliseconds): sub-ms to multi-second.
    pub fn latency_ms() -> Self {
        Histogram::new(&[
            0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0,
        ])
    }

    /// Batch-size buckets (powers of two up to 64) for the gateway's
    /// per-function dispatched-batch-size series.
    pub fn batch_size() -> Self {
        Histogram::new(&[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let mut inner = self.histogram.lock();
        let idx = inner
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(inner.bounds.len());
        // bf-taint: sanitized(idx <= bounds.len() by construction; counts always has bounds.len() + 1 slots)
        inner.counts[idx] += 1;
        inner.sum += v;
        inner.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.histogram.lock().total
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.histogram.lock().sum
    }

    /// Mean of observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let inner = self.histogram.lock();
        (inner.total > 0).then(|| inner.sum / inner.total as f64)
    }

    /// Approximate quantile via linear interpolation within the matched
    /// bucket, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let inner = self.histogram.lock();
        if inner.total == 0 {
            return None;
        }
        let rank = q * inner.total as f64;
        let mut seen = 0u64;
        for (i, c) in inner.counts.iter().enumerate() {
            seen += c;
            if seen as f64 >= rank {
                let hi = inner.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                let lo = if i == 0 { 0.0 } else { inner.bounds[i - 1] };
                if hi.is_infinite() {
                    return Some(lo);
                }
                let in_bucket = *c;
                if in_bucket == 0 {
                    return Some(hi);
                }
                let before = seen - in_bucket;
                let frac = (rank - before as f64) / in_bucket as f64;
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
        }
        inner.bounds.last().copied()
    }

    fn snapshot(&self) -> (Vec<f64>, Vec<u64>, f64, u64) {
        let inner = self.histogram.lock();
        (
            inner.bounds.clone(),
            inner.counts.clone(),
            inner.sum,
            inner.total,
        )
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

/// Number of lock shards the series map is split across. Sharding keeps
/// the per-update critical section proportional to `series / SHARDS`
/// instead of the whole catalog: at the scale harness's 10k-function
/// point a single map would put ~9k series behind one lock on the
/// completion hot path.
const SHARDS: usize = 32;

/// A named collection of metric series, scrapeable in the Prometheus text
/// exposition format — the stand-in for the Prometheus service the paper's
/// Metrics Gatherer reads from.
///
/// Internally the series map is split across [`SHARDS`] locks keyed by a
/// deterministic FNV-1a hash of the series identity, so hot-path lookups
/// on different series contend on different locks; [`MetricsRegistry::scrape`]
/// merges the shards back into one canonically ordered exposition.
///
/// ```
/// use bf_metrics::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let c = reg.counter("bf_requests_total", &[("function", "sobel-1")]);
/// c.inc();
/// let text = reg.scrape();
/// assert!(text.contains("bf_requests_total{function=\"sobel-1\"} 1"));
/// ```
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    shards: Arc<[Mutex<BTreeMap<SeriesKey, Metric>>; SHARDS]>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            shards: Arc::new(std::array::from_fn(|_| Mutex::new(BTreeMap::new()))),
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Deterministic shard pick: FNV-1a over the series identity (never a
    /// randomized hasher — shard assignment must be identical across runs
    /// so the scale harness's work counters replay exactly).
    fn shard(&self, key: &SeriesKey) -> &Mutex<BTreeMap<SeriesKey, Metric>> {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(key.name.as_bytes());
        for (k, v) in &key.labels {
            eat(&[0xFF]);
            eat(k.as_bytes());
            eat(&[0xFE]);
            eat(v.as_bytes());
        }
        // bf-flow: allow(hot_panic): the modulo keeps the index within
        // the fixed SHARDS-length array
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Returns (registering on first use) the counter series
    /// `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different metric type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = Self::key(name, labels);
        let mut series = self.shard(&key).lock();
        match series
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Returns (registering on first use) the gauge series `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different metric type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = Self::key(name, labels);
        let mut series = self.shard(&key).lock();
        match series
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Returns (registering on first use) a latency histogram series.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different metric type.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, labels, Histogram::latency_ms)
    }

    /// Returns (registering on first use) a histogram series with custom
    /// buckets: `make` builds the histogram on first registration (e.g.
    /// [`Histogram::batch_size`]); later lookups return the existing
    /// series regardless of `make`.
    ///
    /// # Panics
    ///
    /// Panics if the series already exists with a different metric type.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Histogram,
    ) -> Histogram {
        let key = Self::key(name, labels);
        let mut series = self.shard(&key).lock();
        match series
            .entry(key)
            .or_insert_with(|| Metric::Histogram(make()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Number of registered series.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Number of internal shards the series map is split across.
    pub fn shard_count(&self) -> usize {
        SHARDS
    }

    /// Series behind the most loaded shard's lock — the worst-case
    /// critical-section footprint a single hot-path update contends with.
    pub fn max_shard_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().len())
            .max()
            .unwrap_or(0)
    }

    /// Reads a gauge value if the series exists and is a gauge.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = Self::key(name, labels);
        let series = self.shard(&key).lock();
        match series.get(&key) {
            Some(Metric::Gauge(g)) => Some(g.value()),
            _ => None,
        }
    }

    /// Reads a counter value if the series exists and is a counter.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = Self::key(name, labels);
        let series = self.shard(&key).lock();
        match series.get(&key) {
            Some(Metric::Counter(c)) => Some(c.value()),
            _ => None,
        }
    }

    /// Renders every series in the Prometheus text exposition format,
    /// merging the shards back into one canonically ordered document.
    pub fn scrape(&self) -> String {
        let mut series: BTreeMap<SeriesKey, Metric> = BTreeMap::new();
        for shard in self.shards.iter() {
            for (key, metric) in shard.lock().iter() {
                series.insert(key.clone(), metric.clone());
            }
        }
        let mut out = String::new();
        for (key, metric) in series.iter() {
            let labels = render_labels(&key.labels);
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", key.name, labels, fmt_f64(c.value()));
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", key.name, labels, fmt_f64(g.value()));
                }
                Metric::Histogram(h) => {
                    let (bounds, counts, sum, total) = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, bound) in bounds.iter().enumerate() {
                        cumulative += counts[i];
                        let le = merge_labels(&key.labels, "le", &fmt_f64(*bound));
                        let _ = writeln!(out, "{}_bucket{} {}", key.name, le, cumulative);
                    }
                    cumulative += counts[bounds.len()];
                    let le = merge_labels(&key.labels, "le", "+Inf");
                    let _ = writeln!(out, "{}_bucket{} {}", key.name, le, cumulative);
                    let _ = writeln!(out, "{}_sum{} {}", key.name, labels, fmt_f64(sum));
                    let _ = writeln!(out, "{}_count{} {}", key.name, labels, total);
                }
            }
        }
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

fn merge_labels(labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((key.to_string(), value.to_string()));
    all.sort();
    render_labels(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.inc_by(4.0);
        assert_eq!(c.value(), 5.0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn counter_rejects_negative_increment() {
        Counter::new().inc_by(-1.0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10.0);
        g.add(-3.0);
        assert_eq!(g.value(), 7.0);
    }

    #[test]
    fn histogram_mean_and_count() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(138.875));
    }

    #[test]
    fn histogram_quantile_is_ordered() {
        let h = Histogram::latency_ms();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        let p95 = h.quantile(0.95).expect("non-empty");
        assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        assert!(p50 > 20.0 && p50 < 100.0, "p50 {p50}");
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::latency_ms();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.9), None);
    }

    #[test]
    fn registry_reuses_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", &[("k", "v")]);
        let b = reg.counter("x_total", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(reg.counter_value("x_total", &[("k", "v")]), Some(2.0));
    }

    #[test]
    fn registry_distinguishes_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total", &[("k", "1")]).inc();
        reg.counter("x_total", &[("k", "2")]).inc_by(2.0);
        assert_eq!(reg.counter_value("x_total", &[("k", "1")]), Some(1.0));
        assert_eq!(reg.counter_value("x_total", &[("k", "2")]), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn registry_rejects_type_confusion() {
        let reg = MetricsRegistry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn scrape_renders_prometheus_text() {
        let reg = MetricsRegistry::new();
        reg.gauge("bf_fpga_utilization", &[("device", "fpga-b")])
            .set(0.42);
        reg.histogram("bf_latency_ms", &[]).observe(3.0);
        let text = reg.scrape();
        assert!(
            text.contains("bf_fpga_utilization{device=\"fpga-b\"} 0.42"),
            "{text}"
        );
        assert!(text.contains("bf_latency_ms_bucket{le=\"5\"} 1"), "{text}");
        assert!(text.contains("bf_latency_ms_count 1"), "{text}");
    }

    #[test]
    fn sharding_spreads_series_and_scrape_stays_canonically_ordered() {
        let reg = MetricsRegistry::new();
        // Register in descending order: the merged scrape must still come
        // out ascending (BTreeMap canonical order across shards).
        for i in (0..200).rev() {
            reg.counter("bf_shard_total", &[("f", &format!("{i:03}"))])
                .inc();
        }
        assert_eq!(reg.series_count(), 200);
        assert_eq!(reg.shard_count(), SHARDS);
        let max = reg.max_shard_len();
        assert!(
            max < 200 && max >= 200 / SHARDS,
            "200 series over {SHARDS} shards, max {max}"
        );
        let text = reg.scrape();
        let lines: Vec<&str> = text.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "scrape order must be canonical");
        assert_eq!(lines.len(), 200);
    }

    #[test]
    fn histogram_bucket_counts_are_cumulative_in_scrape() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ms", &[]);
        h.observe(0.4);
        h.observe(1.5);
        h.observe(900.0);
        let text = reg.scrape();
        assert!(text.contains("lat_ms_bucket{le=\"0.5\"} 1"), "{text}");
        assert!(text.contains("lat_ms_bucket{le=\"2\"} 2"), "{text}");
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 3"), "{text}");
    }
}
