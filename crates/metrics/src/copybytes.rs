//! Global datapath copy accounting.
//!
//! Every host-side memcpy of *payload* bytes (codec encode/decode, shm
//! segment traffic, device-memory materialization, copy-on-write breaks)
//! reports here, making "how many bytes did one round trip actually
//! copy?" an observable instead of a code-review guess. The counters are
//! process-wide atomics: cheap enough for the hot path, and the datapath
//! benchmark reads deltas around a measured operation.
//!
//! Only real `memcpy`s of payload bytes count — refcount bumps, moves,
//! and zero-fill allocations do not.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

static MEMCPY_BYTES: AtomicU64 = AtomicU64::new(0);
static MEMCPY_OPS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-wide copy counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CopyCounters {
    /// Total payload bytes memcpy'd since process start.
    pub bytes: u64,
    /// Number of distinct memcpy operations.
    pub ops: u64,
}

impl CopyCounters {
    /// Counter movement since an earlier snapshot.
    pub fn since(self, earlier: CopyCounters) -> CopyCounters {
        CopyCounters {
            bytes: self.bytes.saturating_sub(earlier.bytes),
            ops: self.ops.saturating_sub(earlier.ops),
        }
    }
}

/// Records one memcpy of `bytes` payload bytes.
pub fn record_memcpy(bytes: u64) {
    MEMCPY_BYTES.fetch_add(bytes, Ordering::Relaxed);
    MEMCPY_OPS.fetch_add(1, Ordering::Relaxed);
}

/// Reads the current counters.
pub fn copy_counters() -> CopyCounters {
    CopyCounters {
        bytes: MEMCPY_BYTES.load(Ordering::Relaxed),
        ops: MEMCPY_OPS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let before = copy_counters();
        record_memcpy(100);
        record_memcpy(28);
        let delta = copy_counters().since(before);
        // Other tests in the same process may also record; lower-bound only.
        assert!(delta.bytes >= 128, "delta {delta:?}");
        assert!(delta.ops >= 2, "delta {delta:?}");
    }
}
