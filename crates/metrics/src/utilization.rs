//! FPGA time-utilization accounting.
//!
//! The paper defines FPGA time utilization as *"the time spent by the device
//! computing OpenCL calls in a given amount of time"*. [`BusyTracker`]
//! records busy intervals on the virtual timeline — attributed to the
//! client/function that caused them — and answers utilization queries over
//! arbitrary windows.

use std::collections::BTreeMap;

use bf_model::{VirtualDuration, VirtualTime};
use serde::{Deserialize, Serialize};

/// One recorded busy interval with the tenant that caused it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyInterval {
    /// Start of the interval.
    pub start: VirtualTime,
    /// End of the interval (`end >= start`).
    pub end: VirtualTime,
    /// Owner attribution (function/client name).
    pub owner: String,
}

/// Accumulates device busy time attributed per owner.
///
/// Intervals must not overlap: the device executes one operation at a time
/// (the whole point of the Device Manager's central FIFO queue), and the
/// tracker enforces it.
///
/// ```
/// use bf_metrics::BusyTracker;
/// use bf_model::VirtualTime;
///
/// let mut t = BusyTracker::new();
/// t.record(VirtualTime::from_nanos(0), VirtualTime::from_nanos(500), "sobel-1");
/// t.record(VirtualTime::from_nanos(500), VirtualTime::from_nanos(1_000), "sobel-2");
/// let u = t.utilization(VirtualTime::from_nanos(0), VirtualTime::from_nanos(2_000));
/// assert_eq!(u, 0.5);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BusyTracker {
    intervals: Vec<BusyInterval>,
    last_end: VirtualTime,
    total: VirtualDuration,
    per_owner: BTreeMap<String, VirtualDuration>,
}

impl BusyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval `[start, end)` attributed to `owner`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or the interval overlaps a previously
    /// recorded one (the device cannot execute two operations at once).
    pub fn record(&mut self, start: VirtualTime, end: VirtualTime, owner: &str) {
        assert!(end >= start, "busy interval ends before it starts");
        assert!(
            start >= self.last_end,
            "busy intervals must not overlap: {} < {}",
            start,
            self.last_end
        );
        if end > start {
            let d = end - start;
            self.total += d;
            *self.per_owner.entry(owner.to_string()).or_default() += d;
            self.intervals.push(BusyInterval {
                start,
                end,
                owner: owner.to_string(),
            });
        }
        self.last_end = self.last_end.max(end);
    }

    /// Total busy time over the whole recorded history.
    pub fn total_busy(&self) -> VirtualDuration {
        self.total
    }

    /// Busy time attributed to `owner` over the whole history.
    pub fn busy_of(&self, owner: &str) -> VirtualDuration {
        self.per_owner
            .get(owner)
            .copied()
            .unwrap_or(VirtualDuration::ZERO)
    }

    /// All owners that contributed busy time.
    pub fn owners(&self) -> impl Iterator<Item = &str> {
        self.per_owner.keys().map(String::as_str)
    }

    /// Busy time that falls inside the window `[from, to)`.
    pub fn busy_in_window(&self, from: VirtualTime, to: VirtualTime) -> VirtualDuration {
        self.busy_in_window_filtered(from, to, None)
    }

    /// Busy time inside `[from, to)` attributed to `owner`.
    pub fn busy_in_window_of(
        &self,
        from: VirtualTime,
        to: VirtualTime,
        owner: &str,
    ) -> VirtualDuration {
        self.busy_in_window_filtered(from, to, Some(owner))
    }

    fn busy_in_window_filtered(
        &self,
        from: VirtualTime,
        to: VirtualTime,
        owner: Option<&str>,
    ) -> VirtualDuration {
        let mut acc = VirtualDuration::ZERO;
        for iv in &self.intervals {
            if let Some(owner) = owner {
                if iv.owner != owner {
                    continue;
                }
            }
            let s = iv.start.max(from);
            let e = iv.end.min(to);
            if e > s {
                acc += e - s;
            }
        }
        acc
    }

    /// Utilization (busy fraction in `[0, 1]`) over the window `[from, to)`.
    ///
    /// Returns `0.0` for an empty window.
    pub fn utilization(&self, from: VirtualTime, to: VirtualTime) -> f64 {
        let window = to.saturating_since(from);
        if window == VirtualDuration::ZERO {
            return 0.0;
        }
        self.busy_in_window(from, to).as_secs_f64() / window.as_secs_f64()
    }

    /// Utilization fraction of `owner` over the window `[from, to)`.
    pub fn utilization_of(&self, from: VirtualTime, to: VirtualTime, owner: &str) -> f64 {
        let window = to.saturating_since(from);
        if window == VirtualDuration::ZERO {
            return 0.0;
        }
        self.busy_in_window_of(from, to, owner).as_secs_f64() / window.as_secs_f64()
    }

    /// The recorded intervals, in chronological order.
    pub fn intervals(&self) -> &[BusyInterval] {
        &self.intervals
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether no intervals are recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> VirtualTime {
        VirtualTime::from_nanos(ns)
    }

    #[test]
    fn utilization_over_full_window() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(250), "f1");
        b.record(t(500), t(750), "f2");
        assert_eq!(b.utilization(t(0), t(1_000)), 0.5);
        assert_eq!(b.utilization_of(t(0), t(1_000), "f1"), 0.25);
        assert_eq!(b.utilization_of(t(0), t(1_000), "f2"), 0.25);
        assert_eq!(b.utilization_of(t(0), t(1_000), "nope"), 0.0);
    }

    #[test]
    fn window_clips_partial_intervals() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(1_000), "f");
        assert_eq!(b.busy_in_window(t(250), t(750)).as_nanos(), 500);
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_intervals_are_rejected() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(100), "f");
        b.record(t(50), t(150), "f");
    }

    #[test]
    fn zero_length_interval_is_a_noop() {
        let mut b = BusyTracker::new();
        b.record(t(10), t(10), "f");
        assert!(b.is_empty());
        assert_eq!(b.total_busy(), VirtualDuration::ZERO);
    }

    #[test]
    fn per_owner_totals_accumulate() {
        let mut b = BusyTracker::new();
        b.record(t(0), t(100), "f1");
        b.record(t(100), t(300), "f2");
        b.record(t(300), t(350), "f1");
        assert_eq!(b.busy_of("f1").as_nanos(), 150);
        assert_eq!(b.busy_of("f2").as_nanos(), 200);
        assert_eq!(b.total_busy().as_nanos(), 350);
        assert_eq!(b.owners().count(), 2);
    }

    #[test]
    fn empty_window_yields_zero() {
        let b = BusyTracker::new();
        assert_eq!(b.utilization(t(5), t(5)), 0.0);
    }
}
