#![forbid(unsafe_code)]

//! # bf-metrics — Prometheus substrate + FPGA time-utilization accounting
//!
//! The paper's Accelerators Registry consumes runtime metrics (device
//! utilization, connected functions, latencies) scraped by a Prometheus
//! service from each Device Manager. This crate provides that substrate:
//!
//! * [`MetricsRegistry`] with [`Counter`], [`Gauge`] and [`Histogram`]
//!   series and the Prometheus *text exposition format* ([`MetricsRegistry::scrape`]);
//! * [`BusyTracker`] implementing the paper's definition of FPGA time
//!   utilization ("time spent computing OpenCL calls in a given amount of
//!   time"), with per-tenant attribution;
//! * global datapath copy accounting ([`record_memcpy`] /
//!   [`copy_counters`]): every host-side memcpy of payload bytes reports
//!   here, so the datapath benchmark can measure bytes-copied-per-round-trip
//!   as a hard number.
//!
//! ```
//! use bf_metrics::{BusyTracker, MetricsRegistry};
//! use bf_model::VirtualTime;
//!
//! let registry = MetricsRegistry::new();
//! let mut busy = BusyTracker::new();
//! busy.record(VirtualTime::ZERO, VirtualTime::from_nanos(300), "sobel-1");
//! let util = busy.utilization(VirtualTime::ZERO, VirtualTime::from_nanos(1_000));
//! registry.gauge("bf_fpga_utilization", &[("device", "fpga-a")]).set(util);
//! assert!(registry.scrape().contains("bf_fpga_utilization"));
//! ```

mod copybytes;
mod core;
mod utilization;

pub use crate::copybytes::{copy_counters, record_memcpy, CopyCounters};
pub use crate::core::{Counter, Gauge, Histogram, Labels, MetricsRegistry};
pub use crate::utilization::{BusyInterval, BusyTracker};

#[cfg(test)]
mod proptests {
    use bf_model::VirtualTime;
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Busy fraction can never exceed 1 for any window, no matter how
        /// the (non-overlapping) intervals are laid out.
        #[test]
        fn utilization_is_bounded(
            gaps in proptest::collection::vec((0u64..1_000, 0u64..1_000), 1..50),
            from in 0u64..100_000,
            span in 1u64..100_000,
        ) {
            let mut tracker = BusyTracker::new();
            let mut cursor = 0u64;
            for (gap, busy) in gaps {
                cursor += gap;
                let start = cursor;
                cursor += busy;
                tracker.record(
                    VirtualTime::from_nanos(start),
                    VirtualTime::from_nanos(cursor),
                    "f",
                );
            }
            let u = tracker.utilization(
                VirtualTime::from_nanos(from),
                VirtualTime::from_nanos(from + span),
            );
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }

        /// Per-owner busy times always sum to the total.
        #[test]
        fn owner_attribution_sums_to_total(
            segments in proptest::collection::vec((0u64..500, 1u64..500, 0u8..4), 1..50),
        ) {
            let mut tracker = BusyTracker::new();
            let mut cursor = 0u64;
            for (gap, busy, owner) in &segments {
                cursor += gap;
                let start = cursor;
                cursor += busy;
                tracker.record(
                    VirtualTime::from_nanos(start),
                    VirtualTime::from_nanos(cursor),
                    &format!("f{owner}"),
                );
            }
            let sum: u64 = (0u8..4)
                .map(|o| tracker.busy_of(&format!("f{o}")).as_nanos())
                .sum();
            prop_assert_eq!(sum, tracker.total_busy().as_nanos());
        }

        /// Histogram quantiles are monotone in q.
        #[test]
        fn quantiles_are_monotone(values in proptest::collection::vec(0.0f64..5_000.0, 1..200)) {
            let h = Histogram::latency_ms();
            for v in &values {
                h.observe(*v);
            }
            let q25 = h.quantile(0.25).expect("non-empty");
            let q50 = h.quantile(0.50).expect("non-empty");
            let q99 = h.quantile(0.99).expect("non-empty");
            prop_assert!(q25 <= q50 + 1e-9);
            prop_assert!(q50 <= q99 + 1e-9);
        }
    }
}
