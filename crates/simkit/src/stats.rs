//! Latency/throughput statistics collected during a simulation run.

use bf_model::VirtualDuration;

/// A sample collection with summary statistics (mean, quantiles).
///
/// Samples are stored exactly (cluster runs collect at most a few hundred
/// thousand), so quantiles are exact rather than approximate.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Records a duration in milliseconds.
    pub fn record_duration(&mut self, d: VirtualDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    /// Exact quantile (nearest-rank), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// The raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Samples {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_stats() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn summary_statistics_are_exact() {
        let s: Samples = (1..=100).map(f64::from).collect();
        assert_eq!(s.len(), 100);
        assert_eq!(s.mean(), Some(50.5));
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.quantile(0.95), Some(95.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn durations_record_in_milliseconds() {
        let mut s = Samples::new();
        s.record_duration(VirtualDuration::from_micros(2_500));
        assert_eq!(s.values(), &[2.5]);
    }

    #[test]
    fn extend_and_collect_work() {
        let mut s = Samples::new();
        s.extend([1.0, 2.0]);
        assert_eq!(s.len(), 2);
    }
}
