//! The event engine: a time-ordered heap of one-shot actions over a user
//! state type.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bf_model::{VirtualDuration, VirtualTime};

type Action<S> = Box<dyn FnOnce(&mut S, &mut Engine<S>)>;

struct Ev<S> {
    at: VirtualTime,
    seq: u64,
    action: Action<S>,
}

impl<S> PartialEq for Ev<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<S> Eq for Ev<S> {}

impl<S> PartialOrd for Ev<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for Ev<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (time, seq) pops
        // first. Sequence numbers break time ties FIFO, which makes runs
        // fully deterministic.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event engine over a state type `S`.
///
/// Events are one-shot closures ordered by `(time, insertion order)`.
/// Actions receive both the state and the engine, so they can schedule
/// follow-up events.
///
/// ```
/// use bf_model::VirtualDuration;
/// use bf_simkit::Engine;
///
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// engine.schedule_in(VirtualDuration::from_millis(5), |log, eng| {
///     log.push(eng.now().as_nanos());
/// });
/// let mut log = Vec::new();
/// engine.run(&mut log);
/// assert_eq!(log, vec![5_000_000]);
/// ```
pub struct Engine<S> {
    now: VirtualTime,
    seq: u64,
    executed: u64,
    heap: BinaryHeap<Ev<S>>,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Engine {
            now: VirtualTime::ZERO,
            seq: 0,
            executed: 0,
            heap: BinaryHeap::new(),
        }
    }
}

impl<S> Engine<S> {
    /// Creates an engine at the timeline origin.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual instant.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `action` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past — events cannot rewrite history.
    pub fn schedule_at(
        &mut self,
        at: VirtualTime,
        action: impl FnOnce(&mut S, &mut Engine<S>) + 'static,
    ) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        self.seq += 1;
        self.heap.push(Ev {
            at,
            seq: self.seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` after a delay.
    pub fn schedule_in(
        &mut self,
        delay: VirtualDuration,
        action: impl FnOnce(&mut S, &mut Engine<S>) + 'static,
    ) {
        let at = self.now + delay;
        self.schedule_at(at, action);
    }

    /// Executes the single next event, if any. Returns whether one ran.
    pub fn step(&mut self, state: &mut S) -> bool {
        match self.heap.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "heap order violated");
                self.now = ev.at;
                self.executed += 1;
                (ev.action)(state, self);
                true
            }
            None => false,
        }
    }

    /// Runs until the event heap is empty.
    pub fn run(&mut self, state: &mut S) {
        while self.step(state) {}
    }

    /// Runs until the heap is empty or the next event lies at/after
    /// `until`; the clock then rests at `until` (or earlier if drained).
    pub fn run_until(&mut self, state: &mut S, until: VirtualTime) {
        loop {
            match self.heap.peek() {
                Some(ev) if ev.at < until => {
                    self.step(state);
                }
                _ => break,
            }
        }
        self.now = self.now.max(until);
    }
}

impl<S> std::fmt::Debug for Engine<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> VirtualTime {
        VirtualTime::from_nanos(ns)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        engine.schedule_at(t(30), |log, _| log.push(30));
        engine.schedule_at(t(10), |log, _| log.push(10));
        engine.schedule_at(t(20), |log, _| log.push(20));
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![10, 20, 30]);
        assert_eq!(engine.executed(), 3);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut engine: Engine<Vec<&'static str>> = Engine::new();
        engine.schedule_at(t(5), |log, _| log.push("first"));
        engine.schedule_at(t(5), |log, _| log.push("second"));
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec!["first", "second"]);
    }

    #[test]
    fn actions_can_schedule_follow_ups() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        engine.schedule_at(t(1), |log, eng| {
            log.push(eng.now().as_nanos());
            eng.schedule_in(VirtualDuration::from_nanos(4), |log, eng| {
                log.push(eng.now().as_nanos());
            });
        });
        let mut log = Vec::new();
        engine.run(&mut log);
        assert_eq!(log, vec![1, 5]);
    }

    #[test]
    fn run_until_stops_at_the_horizon() {
        let mut engine: Engine<Vec<u64>> = Engine::new();
        for i in 1..=10u64 {
            engine.schedule_at(
                t(i * 10),
                move |log: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| log.push(i),
            );
        }
        let mut log = Vec::new();
        engine.run_until(&mut log, t(55));
        assert_eq!(log, vec![1, 2, 3, 4, 5]);
        assert_eq!(engine.now(), t(55));
        assert_eq!(engine.pending(), 5);
        engine.run(&mut log);
        assert_eq!(log.len(), 10);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule_at(t(10), |_, _| {});
        let mut state = ();
        engine.run(&mut state);
        engine.schedule_at(t(5), |_, _| {});
    }
}
