//! Seeded randomness for simulations: every scenario takes a seed and
//! replays identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the distributions the cluster simulation
/// needs.
#[derive(Debug)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Creates a source from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        lo + (hi - lo) * self.unit()
    }

    /// Exponentially distributed sample with the given rate (inverse
    /// mean), via inverse-CDF sampling.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = 1.0 - self.unit(); // (0, 1]
        -u.ln() / rate
    }

    /// A multiplicative jitter factor around 1.0 with the given relative
    /// spread (uniform in `[1-spread, 1+spread]`), used to de-synchronize
    /// load generators the way real HTTP clients are.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is not within `[0, 1)`.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&spread),
            "jitter spread must be in [0, 1)"
        );
        if spread == 0.0 {
            return 1.0;
        }
        self.uniform(1.0 - spread, 1.0 + spread)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty range");
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4, "{same} collisions in 32 draws");
    }

    #[test]
    fn exponential_mean_is_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from_u64(7);
        let rate = 20.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let j = rng.jitter(0.2);
            assert!((0.8..=1.2).contains(&j), "jitter {j}");
        }
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    fn index_covers_the_range() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
