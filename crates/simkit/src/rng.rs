//! Seeded randomness for simulations: every scenario takes a seed and
//! replays identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// splitmix64 finalizer: a strong 64-bit mixing step used to derive child
/// stream identities. Distinct inputs map to well-separated outputs, so
/// sibling streams seeded through it are statistically independent.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random source with the distributions the cluster simulation
/// needs.
///
/// Streams are **splittable**: [`SimRng::split`] derives a child stream
/// whose identity is a pure function of the parent's identity and the
/// caller's key — *not* of how many values the parent or any sibling has
/// drawn. A scenario can therefore hand one child to its traffic
/// generator and later add a fault injector on another child without
/// perturbing a single draw of the traffic trace.
#[derive(Debug)]
pub struct SimRng {
    rng: StdRng,
    /// Stream identity: the seed path this stream was derived through.
    /// Used only by [`SimRng::split`]; never advanced by draws.
    stream: u64,
}

impl SimRng {
    /// Creates a source from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
            stream: seed,
        }
    }

    /// Derives an independent child stream for `key`.
    ///
    /// The child's draws are a pure function of `(parent seed path, key)`:
    /// splitting is insensitive to how much the parent or any sibling has
    /// already drawn, and the same key always yields the same child. Use
    /// distinct keys for distinct subsystems (traffic, service times,
    /// faults, …) so each replays byte-identically in isolation.
    pub fn split(&self, key: u64) -> SimRng {
        // Child identity: mix the parent's seed path with the key through
        // two rounds so `split(a).split(b)` differs from `split(b).split(a)`.
        let child = mix64(self.stream.wrapping_add(mix64(key ^ 0xA076_1D64_78BD_642F)));
        SimRng {
            rng: StdRng::seed_from_u64(child),
            stream: child,
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        lo + (hi - lo) * self.unit()
    }

    /// Exponentially distributed sample with the given rate (inverse
    /// mean), via inverse-CDF sampling.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = 1.0 - self.unit(); // (0, 1]
        -u.ln() / rate
    }

    /// A multiplicative jitter factor around 1.0 with the given relative
    /// spread (uniform in `[1-spread, 1+spread]`), used to de-synchronize
    /// load generators the way real HTTP clients are.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is not within `[0, 1)`.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&spread),
            "jitter spread must be in [0, 1)"
        );
        if spread == 0.0 {
            return 1.0;
        }
        self.uniform(1.0 - spread, 1.0 + spread)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty range");
        self.rng.gen_range(0..n)
    }
}

/// Zipf-distributed rank sampler over `n` items with exponent `s`:
/// rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k+1)^s`. Serverless function popularity is heavily skewed this
/// way (a handful of hot functions dominate traffic), so scale scenarios
/// sample their per-request function from this distribution.
///
/// The cumulative distribution is precomputed once; each sample is one
/// uniform draw plus a binary search, so sampling cost is independent of
/// the catalog size.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Normalized cumulative weights; `cdf[k]` = P(rank <= k).
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with skew exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative / non-finite.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks in the catalog.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the catalog is empty (never true: construction requires
    /// `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)` using one uniform variate from `rng`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        // First rank whose cumulative mass covers u; u < 1 and the last
        // entry is 1.0, so partition_point stays in range.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_identically() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4, "{same} collisions in 32 draws");
    }

    #[test]
    fn exponential_mean_is_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from_u64(7);
        let rate = 20.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let j = rng.jitter(0.2);
            assert!((0.8..=1.2).contains(&j), "jitter {j}");
        }
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    fn index_covers_the_range() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn split_is_independent_of_parent_draw_position() {
        let mut drained = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            drained.unit();
        }
        let fresh = SimRng::seed_from_u64(42);
        let mut a = drained.split(7);
        let mut b = fresh.split(7);
        for _ in 0..64 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn split_keys_and_paths_diverge() {
        let root = SimRng::seed_from_u64(42);
        let mut by_key_1 = root.split(1);
        let mut by_key_2 = root.split(2);
        assert_ne!(by_key_1.unit(), by_key_2.unit());
        // Order along the path matters: a/b and b/a are different streams.
        let mut ab = root.split(1).split(2);
        let mut ba = root.split(2).split(1);
        assert_ne!(ab.unit(), ba.unit());
        // And a child differs from its parent.
        let mut parent = SimRng::seed_from_u64(42);
        let mut child = parent.split(1);
        assert_ne!(parent.unit(), child.unit());
    }

    #[test]
    fn root_stream_is_unchanged_by_the_split_field() {
        // The stored stream identity must not alter the draws of a root
        // source: archived experiments replay through this exact stream.
        let mut rng = SimRng::seed_from_u64(42);
        let mut reference = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(rng.unit(), reference.gen::<f64>());
        }
    }

    #[test]
    fn zipf_head_dominates_and_all_ranks_reachable() {
        let zipf = ZipfSampler::new(100, 1.1);
        let mut rng = SimRng::seed_from_u64(5);
        let mut counts = vec![0usize; 100];
        let n = 50_000;
        for _ in 0..n {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 9 by roughly 10^1.1 ≈ 12.6×.
        assert!(counts[0] > counts[9] * 6, "{} vs {}", counts[0], counts[9]);
        // The head (top 10%) carries the majority of the mass.
        let head: usize = counts[..10].iter().sum();
        assert!(head * 2 > n, "head carried {head} of {n}");
        // The tail is still reachable.
        assert!(counts[99] > 0);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let zipf = ZipfSampler::new(4, 0.0);
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_600..=2_400).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let zipf = ZipfSampler::new(1, 1.0);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..32 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// The tentpole guarantee: a child stream's draws depend only on
        /// the seed path, never on how many values the parent or any
        /// sibling drew first. Adding a fault injector (a new sibling
        /// split) therefore cannot perturb the traffic trace.
        #[test]
        fn child_stream_independent_of_sibling_draw_order(
            seed in any::<u64>(),
            key in any::<u64>(),
            sibling_key in any::<u64>(),
            parent_draws in 0usize..64,
            sibling_draws in 0usize..64,
        ) {
            // World A: split the child immediately, draw nothing else.
            let clean = SimRng::seed_from_u64(seed);
            let mut child_a = clean.split(key);

            // World B: parent draws, a sibling is split and drained, and
            // only then is the child split.
            let mut noisy = SimRng::seed_from_u64(seed);
            for _ in 0..parent_draws {
                noisy.unit();
            }
            let mut sibling = noisy.split(sibling_key);
            for _ in 0..sibling_draws {
                sibling.unit();
            }
            let mut child_b = noisy.split(key);

            for _ in 0..16 {
                prop_assert_eq!(child_a.unit(), child_b.unit());
            }
        }

        /// Distinct keys produce distinct streams (no accidental seed
        /// collisions among small keys).
        #[test]
        fn distinct_keys_diverge(seed in any::<u64>(), key in any::<u64>()) {
            let root = SimRng::seed_from_u64(seed);
            let mut a = root.split(key);
            let mut b = root.split(key.wrapping_add(1));
            let identical = (0..8).all(|_| a.unit() == b.unit());
            prop_assert!(!identical);
        }

        /// Zipf sampling is deterministic per seed and in-range.
        #[test]
        fn zipf_sample_is_deterministic_and_in_range(
            seed in any::<u64>(),
            n in 1usize..512,
            s in 0.0f64..2.5,
        ) {
            let zipf = ZipfSampler::new(n, s);
            let mut a = SimRng::seed_from_u64(seed);
            let mut b = SimRng::seed_from_u64(seed);
            for _ in 0..32 {
                let ra = zipf.sample(&mut a);
                prop_assert!(ra < n);
                prop_assert_eq!(ra, zipf.sample(&mut b));
            }
        }
    }
}
