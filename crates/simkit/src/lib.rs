#![forbid(unsafe_code)]

//! # bf-simkit — a deterministic discrete-event simulation core
//!
//! The multi-tenant experiments (paper Tables I–IV) require cross-tenant
//! FIFO contention to be ordered by *virtual* time, which real threads
//! cannot guarantee. This crate provides the engine the `bf-sim` cluster
//! simulation runs on:
//!
//! * [`Engine`] — a time-ordered heap of one-shot closures over a state
//!   type; ties break in insertion order, so runs are fully deterministic;
//! * [`SimRng`] — seeded randomness (uniform/exponential/jitter) with
//!   splittable child streams ([`SimRng::split`]) whose draws depend only
//!   on the seed path, never on sibling draw order;
//! * [`ZipfSampler`] — skewed function-popularity sampling for scale
//!   scenarios;
//! * [`Samples`] — exact summary statistics for latencies and rates.
//!
//! ```
//! use bf_model::VirtualDuration;
//! use bf_simkit::{Engine, Samples};
//!
//! struct World { lat: Samples }
//! let mut engine: Engine<World> = Engine::new();
//! engine.schedule_in(VirtualDuration::from_millis(7), |w: &mut World, _| {
//!     w.lat.record(7.0);
//! });
//! let mut world = World { lat: Samples::new() };
//! engine.run(&mut world);
//! assert_eq!(world.lat.mean(), Some(7.0));
//! ```

mod engine;
mod rng;
mod stats;

pub use engine::Engine;
pub use rng::{SimRng, ZipfSampler};
pub use stats::Samples;

#[cfg(test)]
mod proptests {
    use bf_model::VirtualTime;
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Events always execute in non-decreasing time order, whatever
        /// order they were scheduled in.
        #[test]
        fn execution_order_is_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut engine: Engine<Vec<u64>> = Engine::new();
            for t in &times {
                let t = *t;
                engine.schedule_at(VirtualTime::from_nanos(t), move |log: &mut Vec<u64>, _: &mut Engine<Vec<u64>>| {
                    log.push(t);
                });
            }
            let mut log = Vec::new();
            engine.run(&mut log);
            prop_assert_eq!(log.len(), times.len());
            for pair in log.windows(2) {
                prop_assert!(pair[0] <= pair[1]);
            }
        }

        /// Quantiles are bounded by min and max and monotone in q.
        #[test]
        fn quantiles_are_sane(values in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
            let s: Samples = values.iter().copied().collect();
            let min = s.min().expect("non-empty");
            let max = s.max().expect("non-empty");
            let mut last = min;
            for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let v = s.quantile(q).expect("non-empty");
                prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
                prop_assert!(v >= last - 1e-9, "quantile not monotone");
                last = v;
            }
        }
    }
}
