//! Batch co-location: route a drained batch to the board that serves its
//! accelerator most cheaply.
//!
//! A batch is homogeneous — every invocation in it targets the same
//! function, hence the same accelerator — so the whole batch should land
//! on *one* board, and preferably one that needs no reconfiguration. The
//! router prefers a board already **configured** with the accelerator,
//! then one with the image merely **staged warm** (cheap reprogram from
//! the board's bitstream cache), then a **cold** board; within a tier the
//! shortest queue wins, with the device id as the deterministic tie-break.
//!
//! The types here mirror the registry's allocator view: the gateway
//! sits in front of the registry in the deployment diagram and sees
//! board state only through gathered snapshots. [`board_snapshots`]
//! produces them from any [`PlacementService`] — a single registry or a
//! sharded federation — so the batch router needs no registry type.

use bf_registry::PlacementService;

/// A gathered snapshot of one board as the batch router sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoardSnapshot {
    /// Device id (what `DEVICE_MANAGER_ADDRESS` points at).
    pub device_id: String,
    /// The currently configured bitstream, if any.
    pub configured: Option<String>,
    /// Bitstream images staged in the board's warm cache.
    pub warm_bitstreams: Vec<String>,
    /// Invocations already queued on this board (load signal).
    pub queued: usize,
}

/// How cheaply a board can serve an accelerator; higher is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BoardWarmth {
    /// Full bitstream transfer and reprogram needed.
    Cold = 0,
    /// Image staged in the warm cache: cheap reprogram.
    Warm = 1,
    /// Already configured: zero reconfiguration cost.
    Configured = 2,
}

impl BoardSnapshot {
    /// This board's warmth for `accelerator`.
    pub fn warmth(&self, accelerator: &str) -> BoardWarmth {
        if self.configured.as_deref() == Some(accelerator) {
            BoardWarmth::Configured
        } else if self.warm_bitstreams.iter().any(|w| w == accelerator) {
            BoardWarmth::Warm
        } else {
            BoardWarmth::Cold
        }
    }
}

/// Picks the board a batch for `accelerator` should be co-located on:
/// warmest tier first, then shortest queue, then lowest device id.
/// Returns `None` when no boards are known.
pub fn route_batch<'a>(
    accelerator: &str,
    boards: &'a [BoardSnapshot],
) -> Option<&'a BoardSnapshot> {
    boards.iter().min_by(|a, b| {
        b.warmth(accelerator)
            .cmp(&a.warmth(accelerator))
            .then_with(|| a.queued.cmp(&b.queued))
            .then_with(|| a.device_id.cmp(&b.device_id))
    })
}

/// Snapshots every board known to `placement`, in device-id order: the
/// bridge between the typed placement API and [`route_batch`]. Queue
/// depth is the instance count bound to the device — the same
/// connected-functions signal the registry's allocator orders by.
pub fn board_snapshots(placement: &dyn PlacementService) -> Vec<BoardSnapshot> {
    let views = placement.device_views();
    let mut snapshots = Vec::with_capacity(views.len());
    for view in views {
        snapshots.push(BoardSnapshot {
            device_id: view.id,
            configured: view.bitstream,
            warm_bitstreams: view.warm_bitstreams,
            queued: view.connected.len(),
        });
    }
    snapshots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board(id: &str, configured: Option<&str>, warm: &[&str], queued: usize) -> BoardSnapshot {
        BoardSnapshot {
            device_id: id.to_string(),
            configured: configured.map(str::to_string),
            warm_bitstreams: warm.iter().map(|s| s.to_string()).collect(),
            queued,
        }
    }

    #[test]
    fn configured_board_wins_even_with_a_longer_queue() {
        let boards = [
            board("fpga-a", Some("sobel"), &[], 5),
            board("fpga-b", None, &["sobel"], 0),
            board("fpga-c", None, &[], 0),
        ];
        let got = route_batch("sobel", &boards).expect("boards exist");
        assert_eq!(got.device_id, "fpga-a");
    }

    #[test]
    fn warm_staged_board_beats_cold_within_queue_ties() {
        let boards = [
            board("fpga-a", Some("mm"), &[], 0),
            board("fpga-b", Some("mm"), &["sobel"], 0),
        ];
        let got = route_batch("sobel", &boards).expect("boards exist");
        assert_eq!(got.device_id, "fpga-b");
        assert_eq!(got.warmth("sobel"), BoardWarmth::Warm);
    }

    #[test]
    fn shortest_queue_breaks_warmth_ties_then_device_id() {
        let boards = [
            board("fpga-b", Some("sobel"), &[], 3),
            board("fpga-a", Some("sobel"), &[], 1),
        ];
        assert_eq!(
            route_batch("sobel", &boards).map(|b| b.device_id.as_str()),
            Some("fpga-a")
        );
        let tied = [
            board("fpga-b", Some("sobel"), &[], 1),
            board("fpga-a", Some("sobel"), &[], 1),
        ];
        assert_eq!(
            route_batch("sobel", &tied).map(|b| b.device_id.as_str()),
            Some("fpga-a"),
            "deterministic id tie-break"
        );
    }

    #[test]
    fn empty_board_list_routes_nowhere() {
        assert_eq!(route_batch("sobel", &[]), None);
    }

    #[test]
    fn snapshots_bridge_any_placement_service() {
        use bf_model::node_a;
        use bf_registry::{AllocationPolicy, DeviceQuery, Registry, StaticDevice};

        let registry = Registry::new(AllocationPolicy::paper());
        registry
            .register_device_handle(StaticDevice::new("fpga-a", node_a(), Some("sobel")).handle());
        registry.register_function("f", DeviceQuery::for_accelerator("sobel"));
        registry.place_instance("inst-0", "f").expect("one device");
        let boards = board_snapshots(&registry);
        assert_eq!(boards.len(), 1);
        assert_eq!(boards[0].queued, 1);
        assert_eq!(
            route_batch("sobel", &boards).map(|b| b.device_id.as_str()),
            Some("fpga-a")
        );
    }
}
