//! Function autoscaling — the Gateway responsibility the paper delegates
//! to OpenFaaS ("forwards the requests to the functions and handles
//! autoscaling").
//!
//! The scaler is deliberately OpenFaaS-shaped: a per-function target load
//! per replica, min/max bounds, and scale-down hysteresis so replica
//! counts don't flap around the threshold. On top of the observed rate,
//! the batching pipeline contributes two pressure signals — queue depth
//! and shed rate (see [`LoadSignal`]) — which force scale-ups and veto
//! scale-downs: a function that sheds is overloaded no matter what its
//! processed rate claims. Reconciliation goes through the cluster, which
//! means every new replica passes the Accelerators Registry's admission
//! hook and gets its own device allocation.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use bf_cluster::{Cluster, ClusterError, InstanceId, InstanceTemplate};
use bf_model::VirtualDuration;
use bf_race::sync::Mutex;
use bf_registry::PlacementService;

use crate::gateway::Gateway;

/// The load observation one reconciliation acts on: the processed rate
/// plus the admission pipeline's pressure signals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadSignal {
    /// Observed processed rate (rq/s).
    pub observed_rps: f64,
    /// Invocations currently queued at the gateway.
    pub queue_depth: u32,
    /// Rate of admission-control sheds (rq/s).
    pub shed_rps: f64,
    /// Mean device utilization under the placement service (0 when no
    /// placement view was attached to the signal): the federated
    /// control plane's aggregate board-pressure hint.
    pub device_utilization: f64,
}

impl LoadSignal {
    /// A signal carrying only an observed rate (no queue or shed
    /// pressure) — the pre-batching reconcile input.
    pub fn from_rps(observed_rps: f64) -> Self {
        LoadSignal {
            observed_rps,
            queue_depth: 0,
            shed_rps: 0.0,
            device_utilization: 0.0,
        }
    }

    /// Sets the gateway queue depth.
    pub fn with_queue_depth(mut self, queue_depth: u32) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Sets the shed rate.
    pub fn with_shed_rps(mut self, shed_rps: f64) -> Self {
        self.shed_rps = shed_rps;
        self
    }

    /// Attaches the placement service's mean device utilization.
    pub fn with_device_utilization(mut self, device_utilization: f64) -> Self {
        self.device_utilization = device_utilization;
        self
    }

    /// Whether the signal shows admission pressure (a deep queue or any
    /// shedding) against `policy`.
    pub fn pressured(&self, policy: &AutoscalePolicy) -> bool {
        self.queue_depth >= policy.queue_pressure || self.shed_rps > 0.0
    }
}

/// Per-function scaling policy. Configure with the `with_*` builders:
///
/// ```
/// use bf_serverless::AutoscalePolicy;
///
/// let policy = AutoscalePolicy::new()
///     .with_target_rps_per_replica(20.0)
///     .with_bounds(1, 4);
/// assert_eq!(policy.max_replicas, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Load one replica is expected to absorb (rq/s).
    pub target_rps_per_replica: f64,
    /// Lower bound on replicas (≥ 1: scale-to-zero is out of scope, as in
    /// the paper's OpenFaaS setup).
    pub min_replicas: u32,
    /// Upper bound on replicas.
    pub max_replicas: u32,
    /// Hysteresis in `(0, 1]`: scale down only when the observed load
    /// would fit into the smaller replica set with this much headroom.
    pub scale_down_headroom: f64,
    /// Queue depth at which admission pressure forces one extra replica
    /// (and vetoes scale-down) regardless of the observed rate.
    pub queue_pressure: u32,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            target_rps_per_replica: 10.0,
            min_replicas: 1,
            max_replicas: 5,
            scale_down_headroom: 0.8,
            queue_pressure: 8,
        }
    }
}

impl AutoscalePolicy {
    /// The default policy: 10 rq/s per replica, 1–5 replicas, 80%
    /// scale-down headroom, queue-pressure threshold 8.
    pub fn new() -> Self {
        AutoscalePolicy::default()
    }

    /// Sets the load one replica is expected to absorb.
    ///
    /// # Panics
    ///
    /// Panics if `target_rps_per_replica` is not strictly positive.
    pub fn with_target_rps_per_replica(mut self, target_rps_per_replica: f64) -> Self {
        assert!(target_rps_per_replica > 0.0, "target load must be positive");
        self.target_rps_per_replica = target_rps_per_replica;
        self
    }

    /// Overrides the replica bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    pub fn with_bounds(mut self, min: u32, max: u32) -> Self {
        assert!(
            min >= 1 && min <= max,
            "need 1 <= min <= max, got {min}..{max}"
        );
        self.min_replicas = min;
        self.max_replicas = max;
        self
    }

    /// Overrides the scale-down hysteresis.
    ///
    /// # Panics
    ///
    /// Panics if `headroom` is outside `(0, 1]`.
    pub fn with_scale_down_headroom(mut self, headroom: f64) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0, 1], got {headroom}"
        );
        self.scale_down_headroom = headroom;
        self
    }

    /// Overrides the queue-pressure threshold.
    pub fn with_queue_pressure(mut self, queue_pressure: u32) -> Self {
        self.queue_pressure = queue_pressure;
        self
    }

    /// The replica count this policy wants for `signal` given `current`
    /// replicas: the rate-proportional count, bumped by one step under
    /// admission pressure, with hysteresis (and a pressure veto) on the
    /// way down.
    pub fn desired_replicas(&self, signal: &LoadSignal, current: u32) -> u32 {
        let raw = (signal.observed_rps / self.target_rps_per_replica)
            .ceil()
            .max(0.0) as u32;
        let mut desired = raw.clamp(self.min_replicas, self.max_replicas);
        let pressured = signal.pressured(self);
        if pressured {
            // Queue growth / shedding means the observed rate understates
            // demand: step up one replica beyond whatever rate said.
            desired = desired.max((current + 1).min(self.max_replicas));
        }
        if desired >= current {
            return desired;
        }
        if pressured {
            // Never scale down while the queue is backing up.
            return current.clamp(self.min_replicas, self.max_replicas);
        }
        // Scaling down: only if the load fits the smaller set with headroom.
        let capacity_after =
            f64::from(desired) * self.target_rps_per_replica * self.scale_down_headroom;
        if signal.observed_rps <= capacity_after {
            desired
        } else {
            current.clamp(self.min_replicas, self.max_replicas)
        }
    }
}

/// What one reconciliation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileAction {
    /// Replicas before.
    pub before: u32,
    /// Replicas after.
    pub after: u32,
    /// Instances created (in order).
    pub created: Vec<InstanceId>,
    /// Instances deleted (in order).
    pub deleted: Vec<InstanceId>,
}

impl ReconcileAction {
    /// Whether anything changed.
    pub fn changed(&self) -> bool {
        self.before != self.after
    }
}

/// Errors from reconciliation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoscaleError {
    /// The function has no registered policy.
    UnknownFunction(String),
    /// The cluster refused an operation (admission denied, etc.).
    Cluster(ClusterError),
}

impl fmt::Display for AutoscaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoscaleError::UnknownFunction(n) => {
                write!(f, "no autoscale policy registered for function {n:?}")
            }
            AutoscaleError::Cluster(e) => write!(f, "cluster operation failed: {e}"),
        }
    }
}

impl std::error::Error for AutoscaleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutoscaleError::Cluster(e) => Some(e),
            AutoscaleError::UnknownFunction(_) => None,
        }
    }
}

impl From<ClusterError> for AutoscaleError {
    fn from(e: ClusterError) -> Self {
        AutoscaleError::Cluster(e)
    }
}

/// The gateway-side autoscaler: reconciles each function's replica count
/// against observed load through the cluster API.
#[derive(Clone)]
pub struct Autoscaler {
    cluster: Cluster,
    policies: Arc<Mutex<BTreeMap<String, AutoscalePolicy>>>,
}

impl Autoscaler {
    /// Creates an autoscaler over `cluster`.
    pub fn new(cluster: Cluster) -> Self {
        Autoscaler {
            cluster,
            policies: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Registers (or replaces) a function's policy.
    pub fn set_policy(&self, function: impl Into<String>, policy: AutoscalePolicy) {
        self.policies.lock().insert(function.into(), policy);
    }

    /// The policy for `function`, if registered.
    pub fn policy(&self, function: &str) -> Option<AutoscalePolicy> {
        self.policies.lock().get(function).copied()
    }

    /// Current replicas of `function`.
    pub fn replicas(&self, function: &str) -> u32 {
        self.cluster
            .instances()
            .iter()
            .filter(|i| i.function == function)
            .count() as u32
    }

    /// Reconciles `function` against an observed [`LoadSignal`]: creates
    /// replicas (each passing admission, i.e. device allocation) or
    /// deletes the youngest ones.
    ///
    /// # Errors
    ///
    /// Fails when no policy is registered or a cluster operation fails;
    /// partially applied scale-ups are reported in the error-free prefix
    /// of `created`.
    pub fn reconcile(
        &self,
        function: &str,
        signal: &LoadSignal,
    ) -> Result<ReconcileAction, AutoscaleError> {
        let policy = self
            .policy(function)
            .ok_or_else(|| AutoscaleError::UnknownFunction(function.to_string()))?;
        let mut existing: Vec<InstanceId> = self
            .cluster
            .instances()
            .into_iter()
            .filter(|i| i.function == function)
            .map(|i| i.id)
            .collect();
        existing.sort();
        let before = existing.len() as u32;
        let desired = policy.desired_replicas(signal, before);

        let mut created = Vec::new();
        let mut deleted = Vec::new();
        if desired > before {
            for _ in before..desired {
                let inst = self
                    .cluster
                    .create_instance(InstanceTemplate::new(function))?;
                created.push(inst.id);
            }
        } else if desired < before {
            // Delete the youngest replicas first (highest ids).
            for id in existing.iter().rev().take((before - desired) as usize) {
                self.cluster.delete_instance(*id)?;
                deleted.push(*id);
            }
        }
        Ok(ReconcileAction {
            before,
            after: desired,
            created,
            deleted,
        })
    }

    /// Reconciles `function` against the gateway's own view of its load
    /// over the window `span` ([`Gateway::load_signal`]): processed rate,
    /// queue depth, and shed rate.
    ///
    /// # Errors
    ///
    /// As [`Autoscaler::reconcile`]; additionally
    /// [`AutoscaleError::UnknownFunction`] when the gateway has no such
    /// deployment.
    pub fn reconcile_from_gateway(
        &self,
        function: &str,
        gateway: &Gateway,
        span: VirtualDuration,
    ) -> Result<ReconcileAction, AutoscaleError> {
        let signal = gateway
            .load_signal(function, span)
            .ok_or_else(|| AutoscaleError::UnknownFunction(function.to_string()))?;
        self.reconcile(function, &signal)
    }

    /// Reconciles `function` against the gateway's load view enriched
    /// with the placement service's aggregate board pressure: the
    /// signal's `device_utilization` is the binding-weighted mean of the
    /// per-shard summaries — no per-device state crosses the boundary.
    ///
    /// # Errors
    ///
    /// As [`Autoscaler::reconcile_from_gateway`].
    pub fn reconcile_with_placement(
        &self,
        function: &str,
        gateway: &Gateway,
        span: VirtualDuration,
        placement: &dyn PlacementService,
    ) -> Result<ReconcileAction, AutoscaleError> {
        let signal = gateway
            .load_signal(function, span)
            .ok_or_else(|| AutoscaleError::UnknownFunction(function.to_string()))?;
        let summaries = placement.load_summaries();
        let devices: usize = summaries.iter().map(|s| s.devices).sum();
        let utilization = if devices == 0 {
            0.0
        } else {
            summaries
                .iter()
                .map(|s| s.mean_utilization * s.devices as f64)
                .sum::<f64>()
                / devices as f64
        };
        self.reconcile(function, &signal.with_device_utilization(utilization))
    }
}

impl fmt::Debug for Autoscaler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Autoscaler")
            .field("policies", &self.policies.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use bf_model::paper_cluster;

    use super::*;

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy::new().with_target_rps_per_replica(20.0)
    }

    #[test]
    fn desired_replicas_scale_with_load() {
        let p = policy();
        assert_eq!(p.desired_replicas(&LoadSignal::from_rps(0.0), 1), 1, "min");
        assert_eq!(p.desired_replicas(&LoadSignal::from_rps(19.0), 1), 1);
        assert_eq!(p.desired_replicas(&LoadSignal::from_rps(21.0), 1), 2);
        assert_eq!(p.desired_replicas(&LoadSignal::from_rps(95.0), 1), 5);
        assert_eq!(
            p.desired_replicas(&LoadSignal::from_rps(500.0), 1),
            5,
            "max bound"
        );
    }

    #[test]
    fn scale_down_has_hysteresis() {
        let p = policy();
        // At 2 replicas and 17 rq/s: 1 replica would be 85% loaded, above
        // the 80% headroom — stay at 2.
        assert_eq!(p.desired_replicas(&LoadSignal::from_rps(17.0), 2), 2);
        // At 15 rq/s (75% of one replica) it is safe to drop to 1.
        assert_eq!(p.desired_replicas(&LoadSignal::from_rps(15.0), 2), 1);
    }

    #[test]
    fn queue_pressure_forces_a_step_up() {
        let p = policy().with_queue_pressure(4);
        let calm = LoadSignal::from_rps(10.0);
        assert_eq!(p.desired_replicas(&calm, 1), 1);
        let deep_queue = calm.with_queue_depth(4);
        assert_eq!(p.desired_replicas(&deep_queue, 1), 2, "queue pressure");
        let shedding = calm.with_shed_rps(2.0);
        assert_eq!(p.desired_replicas(&shedding, 2), 3, "shed pressure");
        assert_eq!(
            p.desired_replicas(&shedding, 5),
            5,
            "pressure respects the max bound"
        );
    }

    #[test]
    fn pressure_vetoes_scale_down() {
        let p = policy();
        // 15 rq/s at 3 replicas would normally drop to 1…
        assert_eq!(p.desired_replicas(&LoadSignal::from_rps(15.0), 3), 1);
        // …but not while requests are being shed.
        let shedding = LoadSignal::from_rps(15.0).with_shed_rps(1.0);
        assert_eq!(p.desired_replicas(&shedding, 3), 4, "step up instead");
    }

    #[test]
    fn reconcile_creates_and_deletes_through_the_cluster() {
        let cluster = Cluster::new(paper_cluster());
        let scaler = Autoscaler::new(cluster.clone());
        scaler.set_policy("sobel-1", policy().with_bounds(1, 4));

        let up = scaler
            .reconcile("sobel-1", &LoadSignal::from_rps(65.0))
            .expect("scale up");
        assert_eq!(up.before, 0);
        assert_eq!(
            up.created.len(),
            4,
            "65 rq/s needs 4 replicas at 20 rq/s each"
        );
        assert_eq!(scaler.replicas("sobel-1"), 4);

        let down = scaler
            .reconcile("sobel-1", &LoadSignal::from_rps(10.0))
            .expect("scale down");
        assert_eq!(down.deleted.len(), 3);
        assert_eq!(scaler.replicas("sobel-1"), 1, "min bound respected");
        // Youngest replicas were removed: the survivor is the oldest.
        let survivors = cluster.instances();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].id, up.created[0]);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let scaler = Autoscaler::new(Cluster::new(paper_cluster()));
        assert!(matches!(
            scaler.reconcile("ghost", &LoadSignal::from_rps(10.0)),
            Err(AutoscaleError::UnknownFunction(_))
        ));
    }

    #[test]
    fn admission_denial_surfaces_with_a_source_chain() {
        let cluster = Cluster::new(paper_cluster());
        cluster.set_admission_hook(Arc::new(|_spec| Err("no device".to_string())));
        let scaler = Autoscaler::new(cluster);
        scaler.set_policy(
            "f",
            AutoscalePolicy::new().with_target_rps_per_replica(10.0),
        );
        let err = scaler
            .reconcile("f", &LoadSignal::from_rps(25.0))
            .expect_err("admission denied");
        assert!(matches!(&err, AutoscaleError::Cluster(_)));
        assert!(
            std::error::Error::source(&err).is_some(),
            "cluster error chained as the source"
        );
    }
}
