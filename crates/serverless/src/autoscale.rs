//! Function autoscaling — the Gateway responsibility the paper delegates
//! to OpenFaaS ("forwards the requests to the functions and handles
//! autoscaling").
//!
//! The scaler is deliberately OpenFaaS-shaped: a per-function target load
//! per replica, min/max bounds, and scale-down hysteresis so replica
//! counts don't flap around the threshold. Reconciliation goes through the
//! cluster, which means every new replica passes the Accelerators
//! Registry's admission hook and gets its own device allocation.

use std::collections::BTreeMap;
use std::fmt;

use bf_cluster::{Cluster, ClusterError, InstanceId, InstanceTemplate};
use parking_lot::Mutex;
use std::sync::Arc;

/// Per-function scaling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Load one replica is expected to absorb (rq/s).
    pub target_rps_per_replica: f64,
    /// Lower bound on replicas (≥ 1: scale-to-zero is out of scope, as in
    /// the paper's OpenFaaS setup).
    pub min_replicas: u32,
    /// Upper bound on replicas.
    pub max_replicas: u32,
    /// Hysteresis in `(0, 1]`: scale down only when the observed load
    /// would fit into the smaller replica set with this much headroom.
    pub scale_down_headroom: f64,
}

impl AutoscalePolicy {
    /// A policy targeting `target_rps_per_replica`, 1–5 replicas, 80%
    /// scale-down headroom.
    ///
    /// # Panics
    ///
    /// Panics if `target_rps_per_replica` is not strictly positive.
    pub fn per_replica(target_rps_per_replica: f64) -> Self {
        assert!(target_rps_per_replica > 0.0, "target load must be positive");
        AutoscalePolicy {
            target_rps_per_replica,
            min_replicas: 1,
            max_replicas: 5,
            scale_down_headroom: 0.8,
        }
    }

    /// Overrides the replica bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    pub fn with_bounds(mut self, min: u32, max: u32) -> Self {
        assert!(
            min >= 1 && min <= max,
            "need 1 <= min <= max, got {min}..{max}"
        );
        self.min_replicas = min;
        self.max_replicas = max;
        self
    }

    /// The replica count this policy wants for `observed_rps` given
    /// `current` replicas (hysteresis applies on the way down).
    pub fn desired_replicas(&self, observed_rps: f64, current: u32) -> u32 {
        let raw = (observed_rps / self.target_rps_per_replica).ceil().max(0.0) as u32;
        let desired = raw.clamp(self.min_replicas, self.max_replicas);
        if desired >= current {
            return desired;
        }
        // Scaling down: only if the load fits the smaller set with headroom.
        let capacity_after =
            f64::from(desired) * self.target_rps_per_replica * self.scale_down_headroom;
        if observed_rps <= capacity_after {
            desired
        } else {
            current.clamp(self.min_replicas, self.max_replicas)
        }
    }
}

/// What one reconciliation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileAction {
    /// Replicas before.
    pub before: u32,
    /// Replicas after.
    pub after: u32,
    /// Instances created (in order).
    pub created: Vec<InstanceId>,
    /// Instances deleted (in order).
    pub deleted: Vec<InstanceId>,
}

impl ReconcileAction {
    /// Whether anything changed.
    pub fn changed(&self) -> bool {
        self.before != self.after
    }
}

/// Errors from reconciliation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoscaleError {
    /// The function has no registered policy.
    UnknownFunction(String),
    /// The cluster refused an operation (admission denied, etc.).
    Cluster(ClusterError),
}

impl fmt::Display for AutoscaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoscaleError::UnknownFunction(n) => {
                write!(f, "no autoscale policy registered for function {n:?}")
            }
            AutoscaleError::Cluster(e) => write!(f, "cluster operation failed: {e}"),
        }
    }
}

impl std::error::Error for AutoscaleError {}

impl From<ClusterError> for AutoscaleError {
    fn from(e: ClusterError) -> Self {
        AutoscaleError::Cluster(e)
    }
}

/// The gateway-side autoscaler: reconciles each function's replica count
/// against observed load through the cluster API.
#[derive(Clone)]
pub struct Autoscaler {
    cluster: Cluster,
    policies: Arc<Mutex<BTreeMap<String, AutoscalePolicy>>>,
}

impl Autoscaler {
    /// Creates an autoscaler over `cluster`.
    pub fn new(cluster: Cluster) -> Self {
        Autoscaler {
            cluster,
            policies: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// Registers (or replaces) a function's policy.
    pub fn set_policy(&self, function: impl Into<String>, policy: AutoscalePolicy) {
        self.policies.lock().insert(function.into(), policy);
    }

    /// The policy for `function`, if registered.
    pub fn policy(&self, function: &str) -> Option<AutoscalePolicy> {
        self.policies.lock().get(function).copied()
    }

    /// Current replicas of `function`.
    pub fn replicas(&self, function: &str) -> u32 {
        self.cluster
            .instances()
            .iter()
            .filter(|i| i.function == function)
            .count() as u32
    }

    /// Reconciles `function` against `observed_rps`: creates replicas (each
    /// passing admission, i.e. device allocation) or deletes the youngest
    /// ones.
    ///
    /// # Errors
    ///
    /// Fails when no policy is registered or a cluster operation fails;
    /// partially applied scale-ups are reported in the error-free prefix
    /// of `created`.
    pub fn reconcile(
        &self,
        function: &str,
        observed_rps: f64,
    ) -> Result<ReconcileAction, AutoscaleError> {
        let policy = self
            .policy(function)
            .ok_or_else(|| AutoscaleError::UnknownFunction(function.to_string()))?;
        let mut existing: Vec<InstanceId> = self
            .cluster
            .instances()
            .into_iter()
            .filter(|i| i.function == function)
            .map(|i| i.id)
            .collect();
        existing.sort();
        let before = existing.len() as u32;
        let desired = policy.desired_replicas(observed_rps, before);

        let mut created = Vec::new();
        let mut deleted = Vec::new();
        if desired > before {
            for _ in before..desired {
                let inst = self
                    .cluster
                    .create_instance(InstanceTemplate::new(function))?;
                created.push(inst.id);
            }
        } else if desired < before {
            // Delete the youngest replicas first (highest ids).
            for id in existing.iter().rev().take((before - desired) as usize) {
                self.cluster.delete_instance(*id)?;
                deleted.push(*id);
            }
        }
        Ok(ReconcileAction {
            before,
            after: desired.max(before.min(desired)),
            created,
            deleted,
        })
    }
}

impl fmt::Debug for Autoscaler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Autoscaler")
            .field("policies", &self.policies.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use bf_model::paper_cluster;

    use super::*;

    #[test]
    fn desired_replicas_scale_with_load() {
        let p = AutoscalePolicy::per_replica(20.0);
        assert_eq!(p.desired_replicas(0.0, 1), 1, "min bound");
        assert_eq!(p.desired_replicas(19.0, 1), 1);
        assert_eq!(p.desired_replicas(21.0, 1), 2);
        assert_eq!(p.desired_replicas(95.0, 1), 5);
        assert_eq!(p.desired_replicas(500.0, 1), 5, "max bound");
    }

    #[test]
    fn scale_down_has_hysteresis() {
        let p = AutoscalePolicy::per_replica(20.0);
        // At 2 replicas and 17 rq/s: 1 replica would be 85% loaded, above
        // the 80% headroom — stay at 2.
        assert_eq!(p.desired_replicas(17.0, 2), 2);
        // At 15 rq/s (75% of one replica) it is safe to drop to 1.
        assert_eq!(p.desired_replicas(15.0, 2), 1);
    }

    #[test]
    fn reconcile_creates_and_deletes_through_the_cluster() {
        let cluster = Cluster::new(paper_cluster());
        let scaler = Autoscaler::new(cluster.clone());
        scaler.set_policy(
            "sobel-1",
            AutoscalePolicy::per_replica(20.0).with_bounds(1, 4),
        );

        let up = scaler.reconcile("sobel-1", 65.0).expect("scale up");
        assert_eq!(up.before, 0);
        assert_eq!(
            up.created.len(),
            4,
            "65 rq/s needs 4 replicas at 20 rq/s each"
        );
        assert_eq!(scaler.replicas("sobel-1"), 4);

        let down = scaler.reconcile("sobel-1", 10.0).expect("scale down");
        assert_eq!(down.deleted.len(), 3);
        assert_eq!(scaler.replicas("sobel-1"), 1, "min bound respected");
        // Youngest replicas were removed: the survivor is the oldest.
        let survivors = cluster.instances();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].id, up.created[0]);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let scaler = Autoscaler::new(Cluster::new(paper_cluster()));
        assert!(matches!(
            scaler.reconcile("ghost", 10.0),
            Err(AutoscaleError::UnknownFunction(_))
        ));
    }

    #[test]
    fn admission_denial_surfaces() {
        let cluster = Cluster::new(paper_cluster());
        cluster.set_admission_hook(Arc::new(|_spec| Err("no device".to_string())));
        let scaler = Autoscaler::new(cluster);
        scaler.set_policy("f", AutoscalePolicy::per_replica(10.0));
        assert!(matches!(
            scaler.reconcile("f", 25.0),
            Err(AutoscaleError::Cluster(_))
        ));
    }
}
