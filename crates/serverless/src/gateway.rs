//! The OpenFaaS-style gateway: the serverless system's endpoint, which
//! admits requests into per-function batchers, dispatches drained batches
//! to function instances, and records per-function statistics.
//!
//! The request path is: client issue → admission (bounded queue, typed
//! shed) → batcher (coalescing under `max_batch_size`/`max_wait`) →
//! dispatch (forward latency + serial execution behind the previous batch)
//! → completion (response-path forward latency). See ARCHITECTURE.md §10.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bf_metrics::{Histogram, MetricsRegistry};
use bf_model::{VirtualDuration, VirtualTime};
use bf_race::sync::Mutex;
use bf_simkit::Samples;

use crate::autoscale::LoadSignal;
use crate::batch::{Batch, Batcher, SubmitError, Ticket};
use crate::invoke::{BatchHandler, Completion, HandlerError, Invocation, SingleRequest};

/// Gateway errors, typed so callers can distinguish routing failures,
/// admission-control sheds, and function-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// No function deployed under that name.
    FunctionNotFound(String),
    /// Admission control shed the request: the function's queue is full.
    Overloaded {
        /// The function that shed the request.
        function: String,
        /// The queue capacity that was hit.
        capacity: usize,
    },
    /// The function's handler failed; the source carries the reason.
    Invocation {
        /// The function whose handler failed.
        function: String,
        /// The underlying handler failure.
        source: HandlerError,
    },
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::FunctionNotFound(n) => write!(f, "function {n:?} is not deployed"),
            GatewayError::Overloaded { function, capacity } => {
                write!(
                    f,
                    "function {function:?} shed the request at capacity {capacity}"
                )
            }
            GatewayError::Invocation { function, source } => {
                write!(f, "invocation of {function:?} failed: {source}")
            }
        }
    }
}

impl Error for GatewayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GatewayError::Invocation { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Per-function results, matching the columns of Tables II–IV plus the
/// batching pipeline's own signals.
#[derive(Debug, Clone, Default)]
pub struct FunctionStats {
    /// Completed request latencies (milliseconds).
    pub latency_ms: Samples,
    /// Completed request count.
    pub processed: u64,
    /// Failed request count.
    pub failed: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Dispatched batch sizes.
    pub batch_size: Samples,
    /// Time spent queued before dispatch (milliseconds).
    pub queue_wait_ms: Samples,
}

impl FunctionStats {
    /// Mean latency as a duration, if any request completed.
    pub fn mean_latency(&self) -> Option<VirtualDuration> {
        self.latency_ms.mean().map(VirtualDuration::from_millis_f64)
    }

    /// Processed requests per second over the window `span`.
    pub fn processed_rate(&self, span: VirtualDuration) -> f64 {
        if span == VirtualDuration::ZERO {
            return 0.0;
        }
        self.processed as f64 / span.as_secs_f64()
    }

    /// Shed requests per second over the window `span`.
    pub fn shed_rate(&self, span: VirtualDuration) -> f64 {
        if span == VirtualDuration::ZERO {
            return 0.0;
        }
        self.shed as f64 / span.as_secs_f64()
    }

    /// Mean dispatched batch size, if any batch was dispatched.
    pub fn mean_batch_size(&self) -> Option<f64> {
        self.batch_size.mean()
    }
}

/// One drained invocation's outcome, as returned by [`Gateway::pump`] and
/// [`Gateway::flush`]. Successful completions include the response-path
/// forward latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The ticket issued at submission.
    pub ticket: Ticket,
    /// The invocation as admitted.
    pub invocation: Invocation,
    /// Completion (client-visible instant) or handler failure.
    pub result: Result<Completion, HandlerError>,
}

struct Deployment {
    batcher: Arc<Batcher>,
    handler: Arc<dyn BatchHandler>,
    busy_until: VirtualTime,
    stats: FunctionStats,
}

/// The gateway: admits requests into per-function batchers, dispatches
/// batches with the gateway's own forwarding latency, and accumulates
/// per-function stats.
///
/// Cloning yields another handle to the same gateway.
#[derive(Clone, Default)]
pub struct Gateway {
    forward_latency: VirtualDuration,
    metrics: Option<MetricsRegistry>,
    functions: Arc<Mutex<BTreeMap<String, Deployment>>>,
}

impl Gateway {
    /// Creates a gateway with zero forwarding latency and no metrics sink;
    /// configure with the `with_*` builders.
    pub fn new() -> Self {
        Gateway::default()
    }

    /// Sets the per-request forwarding latency (HTTP parsing + routing),
    /// applied on both the request and response path.
    pub fn with_forward_latency(mut self, forward_latency: VirtualDuration) -> Self {
        self.forward_latency = forward_latency;
        self
    }

    /// Attaches a metrics registry: batch sizes, queue waits, and sheds
    /// are exported per function.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The configured forwarding latency.
    pub fn forward_latency(&self) -> VirtualDuration {
        self.forward_latency
    }

    /// Deploys (or replaces) a function: a batcher defining its coalescing
    /// and admission envelope, and the handler servicing its batches.
    pub fn deploy(
        &self,
        name: impl Into<String>,
        batcher: Batcher,
        handler: Arc<dyn BatchHandler>,
    ) {
        self.functions.lock().insert(
            name.into(),
            Deployment {
                batcher: Arc::new(batcher),
                handler,
                busy_until: VirtualTime::ZERO,
                stats: FunctionStats::default(),
            },
        );
    }

    /// Deploys a single-request handler behind an unbatched
    /// ([`Batcher::unbatched`]) queue — the compatibility path from the old
    /// closure `Handler` API, with identical per-request timing.
    pub fn deploy_single<F>(&self, name: impl Into<String>, handler: F)
    where
        F: Fn(VirtualTime) -> Result<VirtualTime, HandlerError> + Send + Sync + 'static,
    {
        self.deploy(
            name,
            Batcher::unbatched(),
            Arc::new(SingleRequest::new(handler)),
        );
    }

    /// Deployed function names.
    pub fn functions(&self) -> Vec<String> {
        self.functions.lock().keys().cloned().collect()
    }

    /// Admits one invocation into `name`'s batcher without dispatching.
    ///
    /// # Errors
    ///
    /// [`GatewayError::FunctionNotFound`] for unknown functions,
    /// [`GatewayError::Overloaded`] when admission control sheds the
    /// request (also counted in the function's stats).
    pub fn submit(&self, name: &str, invocation: Invocation) -> Result<Ticket, GatewayError> {
        let batcher = {
            let functions = self.functions.lock();
            functions
                .get(name)
                .ok_or_else(|| GatewayError::FunctionNotFound(name.to_string()))?
                .batcher
                .clone()
        };
        match batcher.submit(invocation) {
            Ok(ticket) => Ok(ticket),
            Err(SubmitError::Shed { capacity }) => {
                {
                    let mut functions = self.functions.lock();
                    if let Some(d) = functions.get_mut(name) {
                        d.stats.shed += 1;
                    }
                }
                if let Some(metrics) = &self.metrics {
                    metrics
                        .counter("bf_gateway_shed_total", &[("function", name)])
                        .inc();
                }
                Err(GatewayError::Overloaded {
                    function: name.to_string(),
                    capacity,
                })
            }
            // A closed batcher behaves like an undeployed function.
            Err(SubmitError::Closed) => Err(GatewayError::FunctionNotFound(name.to_string())),
        }
    }

    /// The virtual instant `name`'s pending queue becomes due, or `None`
    /// when the function is unknown or its queue is empty.
    ///
    /// A pending batch cannot dispatch while the function is still
    /// executing earlier work, so the batcher's own deadline is clamped
    /// to the end of the in-flight batch — the window in which further
    /// arrivals coalesce (and, past capacity, are shed).
    pub fn next_deadline(&self, name: &str) -> Option<VirtualTime> {
        let (batcher, busy_until) = {
            let functions = self.functions.lock();
            let deployment = functions.get(name)?;
            (deployment.batcher.clone(), deployment.busy_until)
        };
        batcher.next_deadline().map(|due| due.max(busy_until))
    }

    /// Current queue depth of `name`, or `None` for unknown functions.
    pub fn queue_depth(&self, name: &str) -> Option<usize> {
        let batcher = {
            let functions = self.functions.lock();
            functions.get(name)?.batcher.clone()
        };
        Some(batcher.queue_depth())
    }

    /// Dispatches due batches at `now` and returns the drained outcomes.
    /// Dispatch stops as soon as the function's serial timeline runs past
    /// `now`: later work stays queued (where it keeps coalescing and
    /// admission control keeps counting it) until the next deadline.
    ///
    /// # Errors
    ///
    /// [`GatewayError::FunctionNotFound`] for unknown functions.
    /// Handler failures are reported per outcome, not as errors.
    // bf-flow: entry(batcher)
    pub fn pump(&self, name: &str, now: VirtualTime) -> Result<Vec<Outcome>, GatewayError> {
        self.drain(name, now, false)
    }

    /// Force-flushes everything queued for `name` at `now`, deadlines
    /// notwithstanding.
    ///
    /// # Errors
    ///
    /// [`GatewayError::FunctionNotFound`] for unknown functions.
    pub fn flush(&self, name: &str, now: VirtualTime) -> Result<Vec<Outcome>, GatewayError> {
        self.drain(name, now, true)
    }

    fn drain(
        &self,
        name: &str,
        now: VirtualTime,
        force: bool,
    ) -> Result<Vec<Outcome>, GatewayError> {
        let (batcher, handler) = {
            let functions = self.functions.lock();
            let deployment = functions
                .get(name)
                .ok_or_else(|| GatewayError::FunctionNotFound(name.to_string()))?;
            (deployment.batcher.clone(), deployment.handler.clone())
        };
        let mut outcomes = Vec::new();
        loop {
            let batch = if force {
                batcher.drain_now()
            } else {
                // A non-forced pump only feeds a free function: while the
                // previous batch is still executing, pending work stays in
                // the queue so it can keep coalescing — and keep counting
                // against the admission-control capacity.
                let busy_until = {
                    let functions = self.functions.lock();
                    functions
                        .get(name)
                        .ok_or_else(|| GatewayError::FunctionNotFound(name.to_string()))?
                        .busy_until
                };
                if busy_until > now {
                    break;
                }
                batcher.drain_due(now)
            };
            let Some(batch) = batch else { break };
            self.execute(name, now, batch, handler.as_ref(), &mut outcomes)?;
        }
        Ok(outcomes)
    }

    /// Executes one batch on the function's single serial timeline: the
    /// batch is dispatched no earlier than `now`, every member's own
    /// forward hop, and the end of the previous batch.
    fn execute(
        &self,
        name: &str,
        now: VirtualTime,
        batch: Batch,
        handler: &dyn BatchHandler,
        outcomes: &mut Vec<Outcome>,
    ) -> Result<(), GatewayError> {
        let newest_arrival = batch
            .invocations()
            .iter()
            .map(|i| i.issued_at)
            .max()
            .unwrap_or(now);
        let dispatched = now.max(newest_arrival + self.forward_latency);
        let start = {
            let functions = self.functions.lock();
            let deployment = functions
                .get(name)
                .ok_or_else(|| GatewayError::FunctionNotFound(name.to_string()))?;
            dispatched.max(deployment.busy_until)
        };
        let results = handler.handle_batch(start, batch.invocations());
        debug_assert_eq!(results.len(), batch.len(), "one result per invocation");
        let batch_len = batch.len();
        // One outcome per invocation: size the push loop below up front so
        // it never reallocates while the functions lock is held.
        outcomes.reserve(batch_len);
        let mut queue_waits = Vec::with_capacity(batch_len);
        {
            let mut functions = self.functions.lock();
            let deployment = functions
                .get_mut(name)
                .ok_or_else(|| GatewayError::FunctionNotFound(name.to_string()))?;
            let mut last_done = deployment.busy_until;
            let (tickets, invocations) = batch.into_parts();
            for ((ticket, invocation), result) in tickets.into_iter().zip(invocations).zip(results)
            {
                match result {
                    Ok(completion) => {
                        let done = completion.done_at + self.forward_latency;
                        deployment.stats.processed += 1;
                        deployment
                            .stats
                            .latency_ms
                            .record((done - invocation.issued_at).as_millis_f64());
                        let wait = start - (invocation.issued_at + self.forward_latency);
                        deployment.stats.queue_wait_ms.record(wait.as_millis_f64());
                        queue_waits.push(wait.as_millis_f64());
                        last_done = last_done.max(completion.done_at);
                        outcomes.push(Outcome {
                            ticket,
                            invocation,
                            result: Ok(Completion::at(done)),
                        });
                    }
                    Err(e) => {
                        deployment.stats.failed += 1;
                        outcomes.push(Outcome {
                            ticket,
                            invocation,
                            result: Err(e),
                        });
                    }
                }
            }
            deployment.stats.batch_size.record(batch_len as f64);
            deployment.busy_until = last_done;
        }
        if let Some(metrics) = &self.metrics {
            metrics
                .histogram_with(
                    "bf_gateway_batch_size",
                    &[("function", name)],
                    Histogram::batch_size,
                )
                .observe(batch_len as f64);
            let queue_wait = metrics.histogram_with(
                "bf_gateway_queue_wait_ms",
                &[("function", name)],
                Histogram::latency_ms,
            );
            for wait in queue_waits {
                queue_wait.observe(wait);
            }
        }
        Ok(())
    }

    /// Invokes `name` at virtual instant `at` and drives its queue to
    /// completion: submit, force-flush, return the client-visible
    /// completion instant. Latency (completion − issue) lands in the
    /// function's stats.
    ///
    /// Intended for one driver per function (the closed-loop shape); with
    /// concurrent drivers on the same function, use [`Gateway::submit`] /
    /// [`Gateway::pump`] and correlate by [`Ticket`].
    ///
    /// # Errors
    ///
    /// [`GatewayError::FunctionNotFound`], [`GatewayError::Overloaded`],
    /// or the handler's failure as [`GatewayError::Invocation`].
    pub fn invoke(&self, name: &str, at: VirtualTime) -> Result<VirtualTime, GatewayError> {
        let ticket = self.submit(name, Invocation::at(at))?;
        for outcome in self.flush(name, at)? {
            if outcome.ticket == ticket {
                return match outcome.result {
                    Ok(completion) => Ok(completion.done_at),
                    Err(source) => Err(GatewayError::Invocation {
                        function: name.to_string(),
                        source,
                    }),
                };
            }
        }
        Err(GatewayError::Invocation {
            function: name.to_string(),
            source: HandlerError::new("completion drained by a concurrent driver"),
        })
    }

    /// Snapshot of a function's stats.
    pub fn stats(&self, name: &str) -> Option<FunctionStats> {
        self.functions.lock().get(name).map(|d| d.stats.clone())
    }

    /// The autoscaler's view of `name` over the window `span`: processed
    /// rate, current queue depth, and shed rate.
    pub fn load_signal(&self, name: &str, span: VirtualDuration) -> Option<LoadSignal> {
        let depth = self.queue_depth(name)?;
        let stats = self.stats(name)?;
        Some(
            LoadSignal::from_rps(stats.processed_rate(span))
                .with_queue_depth(depth as u32)
                .with_shed_rps(stats.shed_rate(span)),
        )
    }
}

/// Outcome of one closed-loop load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRunResult {
    /// Requests completed inside the window.
    pub processed: u64,
    /// Requests that failed.
    pub failed: u64,
    /// Mean end-to-end latency over completed requests.
    pub mean_latency: VirtualDuration,
    /// Achieved rate over the window (rq/s).
    pub achieved_rps: f64,
}

/// Drives `function` with a `hey -c 1 -q rate`-style closed loop on the
/// virtual timeline for `duration`, advancing `clock` along the way — the
/// direct-mode (real threads) twin of the DES load generator, used to
/// cross-check the two execution modes against each other. Each request
/// goes through the function's batcher (submit + flush), so admission
/// control and batch accounting apply.
///
/// # Errors
///
/// Returns [`GatewayError::FunctionNotFound`] when the function is not
/// deployed. Individual request failures (including sheds) are counted,
/// not fatal.
pub fn run_closed_loop(
    gateway: &Gateway,
    function: &str,
    rate: f64,
    duration: VirtualDuration,
    clock: &bf_model::VirtualClock,
) -> Result<LoadRunResult, GatewayError> {
    if !gateway.functions().iter().any(|f| f == function) {
        return Err(GatewayError::FunctionNotFound(function.to_string()));
    }
    let start = clock.now();
    let horizon = start + duration;
    let mut pacer = crate::ClosedLoopPacer::new(rate, start);
    let mut issue = pacer.first_issue();
    let mut processed = 0u64;
    let mut failed = 0u64;
    let mut latency_sum = VirtualDuration::ZERO;
    while issue < horizon {
        clock.advance_to(issue);
        match gateway.invoke(function, issue) {
            Ok(done) => {
                clock.advance_to(done);
                processed += 1;
                latency_sum += done - issue;
                issue = pacer.next_issue(done);
            }
            Err(_) => {
                failed += 1;
                issue = pacer.next_issue(clock.now());
            }
        }
    }
    let window = clock.now().max(horizon) - start;
    Ok(LoadRunResult {
        processed,
        failed,
        mean_latency: if processed > 0 {
            latency_sum / processed
        } else {
            VirtualDuration::ZERO
        },
        achieved_rps: processed as f64 / window.as_secs_f64().max(f64::MIN_POSITIVE),
    })
}

/// Outcome of one open-loop load run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopResult {
    /// Requests offered (arrivals inside the window).
    pub offered: u64,
    /// Requests completed by the end of the window.
    pub processed: u64,
    /// Requests that failed in the handler.
    pub failed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Mean end-to-end latency over completed requests.
    pub mean_latency: VirtualDuration,
    /// 99th-percentile end-to-end latency over completed requests.
    pub p99_latency: VirtualDuration,
    /// Completions per second over the window (rq/s).
    pub achieved_rps: f64,
    /// Mean dispatched batch size over the run.
    pub mean_batch_size: f64,
}

/// Drives `function` with an open-loop arrival process at `rate` for
/// `duration`: arrivals are independent of completions (unlike the closed
/// loop), so overload shows up as queue growth → admission-control sheds
/// rather than arrival throttling. The loop interleaves arrivals and
/// batcher flush deadlines in virtual-time order, advancing `clock` along
/// the way, and drains the tail after the last arrival.
///
/// # Errors
///
/// Returns [`GatewayError::FunctionNotFound`] when the function is not
/// deployed. Per-request sheds and handler failures are counted, not
/// fatal.
pub fn run_open_loop(
    gateway: &Gateway,
    function: &str,
    rate: f64,
    duration: VirtualDuration,
    clock: &bf_model::VirtualClock,
) -> Result<OpenLoopResult, GatewayError> {
    if !gateway.functions().iter().any(|f| f == function) {
        return Err(GatewayError::FunctionNotFound(function.to_string()));
    }
    let start = clock.now();
    let horizon = start + duration;
    let batches_before = gateway
        .stats(function)
        .map(|s| {
            (
                s.batch_size.len(),
                s.batch_size.values().iter().sum::<f64>(),
            )
        })
        .unwrap_or((0, 0.0));
    let mut pacer = crate::OpenLoopPacer::new(rate, start);
    let mut next_arrival = pacer.next_arrival();
    let mut offered = 0u64;
    let mut shed = 0u64;
    let mut failed = 0u64;
    let mut processed = 0u64;
    let mut latencies = Samples::new();
    let mut tally = |outcomes: Vec<Outcome>| {
        for outcome in outcomes {
            match outcome.result {
                Ok(completion) => {
                    if completion.done_at <= horizon {
                        processed += 1;
                        latencies.record(
                            (completion.done_at - outcome.invocation.issued_at).as_millis_f64(),
                        );
                    }
                }
                Err(_) => failed += 1,
            }
        }
    };
    loop {
        let deadline = gateway.next_deadline(function);
        let arrivals_left = next_arrival < horizon;
        match deadline {
            Some(due) if !arrivals_left || due <= next_arrival => {
                clock.advance_to(due);
                tally(gateway.pump(function, due)?);
            }
            _ if arrivals_left => {
                clock.advance_to(next_arrival);
                offered += 1;
                match gateway.submit(function, Invocation::at(next_arrival)) {
                    Ok(_) => {
                        // Size-triggered batches are due immediately.
                        tally(gateway.pump(function, next_arrival)?);
                    }
                    Err(GatewayError::Overloaded { .. }) => shed += 1,
                    Err(e) => return Err(e),
                }
                next_arrival = pacer.next_arrival();
            }
            _ => break,
        }
    }
    let batches_after = gateway
        .stats(function)
        .map(|s| {
            (
                s.batch_size.len(),
                s.batch_size.values().iter().sum::<f64>(),
            )
        })
        .unwrap_or((0, 0.0));
    let batches = batches_after.0.saturating_sub(batches_before.0);
    let mean_batch_size = if batches > 0 {
        (batches_after.1 - batches_before.1) / batches as f64
    } else {
        0.0
    };
    Ok(OpenLoopResult {
        offered,
        processed,
        failed,
        shed,
        mean_latency: VirtualDuration::from_millis_f64(latencies.mean().unwrap_or(0.0)),
        p99_latency: VirtualDuration::from_millis_f64(latencies.quantile(0.99).unwrap_or(0.0)),
        achieved_rps: processed as f64 / duration.as_secs_f64().max(f64::MIN_POSITIVE),
        mean_batch_size,
    })
}

impl fmt::Debug for Gateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gateway")
            .field("functions", &self.functions.lock().len())
            .field("forward_latency", &self.forward_latency)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::ZERO + VirtualDuration::from_millis(ms)
    }

    #[test]
    fn invoke_records_latency_with_both_forward_hops() {
        let gw = Gateway::new().with_forward_latency(VirtualDuration::from_millis(1));
        gw.deploy_single("echo", |at| Ok(at + VirtualDuration::from_millis(10)));
        let done = gw.invoke("echo", t(0)).expect("invoke");
        assert_eq!(done, t(12), "1 ms in + 10 ms service + 1 ms out");
        let stats = gw.stats("echo").expect("stats");
        assert_eq!(stats.processed, 1);
        assert_eq!(stats.latency_ms.mean(), Some(12.0));
        assert_eq!(stats.batch_size.mean(), Some(1.0), "unbatched deployment");
        assert_eq!(stats.queue_wait_ms.mean(), Some(0.0), "no queueing");
    }

    #[test]
    fn unknown_function_404s() {
        let gw = Gateway::new();
        assert_eq!(
            gw.invoke("ghost", t(0)),
            Err(GatewayError::FunctionNotFound("ghost".to_string()))
        );
    }

    #[test]
    fn failures_count_separately_and_chain_the_source() {
        let gw = Gateway::new();
        gw.deploy_single("flaky", |_| Err(HandlerError::new("boom")));
        let err = gw.invoke("flaky", t(0)).expect_err("handler fails");
        assert!(matches!(&err, GatewayError::Invocation { function, .. } if function == "flaky"));
        let source = Error::source(&err).expect("source chain");
        assert_eq!(source.to_string(), "handler failed: boom");
        let stats = gw.stats("flaky").expect("stats");
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.processed, 0);
    }

    #[test]
    fn processed_rate_uses_the_window() {
        let stats = FunctionStats {
            processed: 50,
            ..FunctionStats::default()
        };
        assert_eq!(stats.processed_rate(VirtualDuration::from_secs(10)), 5.0);
        assert_eq!(stats.processed_rate(VirtualDuration::ZERO), 0.0);
    }

    #[test]
    fn submissions_coalesce_into_one_batch() {
        let gw = Gateway::new();
        gw.deploy(
            "batchy",
            Batcher::new()
                .with_max_batch_size(4)
                .with_max_wait(VirtualDuration::from_millis(10)),
            Arc::new(SingleRequest::new(|at| {
                Ok(at + VirtualDuration::from_millis(1))
            })),
        );
        for ms in 0..3 {
            gw.submit("batchy", Invocation::at(t(ms)))
                .expect("capacity");
        }
        assert_eq!(gw.queue_depth("batchy"), Some(3));
        assert_eq!(gw.next_deadline("batchy"), Some(t(10)));
        assert!(gw.pump("batchy", t(9)).expect("pump").is_empty(), "not due");
        let outcomes = gw.pump("batchy", t(10)).expect("pump");
        assert_eq!(outcomes.len(), 3, "one max-wait flush drains the batch");
        let stats = gw.stats("batchy").expect("stats");
        assert_eq!(stats.batch_size.mean(), Some(3.0));
        assert_eq!(stats.processed, 3);
    }

    #[test]
    fn overload_sheds_with_a_typed_error() {
        let gw = Gateway::new();
        gw.deploy(
            "tiny",
            Batcher::new().with_queue_capacity(1).with_max_batch_size(1),
            Arc::new(SingleRequest::new(|at| Ok(at))),
        );
        gw.submit("tiny", Invocation::at(t(0))).expect("first fits");
        let err = gw.submit("tiny", Invocation::at(t(0))).expect_err("full");
        assert_eq!(
            err,
            GatewayError::Overloaded {
                function: "tiny".to_string(),
                capacity: 1
            }
        );
        assert_eq!(gw.stats("tiny").expect("stats").shed, 1);
    }

    #[test]
    fn batches_queue_behind_the_previous_batch() {
        let gw = Gateway::new();
        gw.deploy(
            "serial",
            Batcher::unbatched(),
            Arc::new(SingleRequest::new(|at| {
                Ok(at + VirtualDuration::from_millis(100))
            })),
        );
        let first = gw.invoke("serial", t(0)).expect("first");
        assert_eq!(first, t(100));
        // Issued at t=10, but the replica is busy until t=100.
        let second = gw.invoke("serial", t(10)).expect("second");
        assert_eq!(second, t(200), "served after the outstanding request");
        let stats = gw.stats("serial").expect("stats");
        assert_eq!(stats.queue_wait_ms.max(), Some(90.0));
    }
}
