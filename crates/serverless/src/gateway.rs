//! The OpenFaaS-style gateway: the serverless system's endpoint, which
//! forwards requests to function instances and records per-function
//! statistics.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bf_model::{VirtualDuration, VirtualTime};
use bf_simkit::Samples;
use parking_lot::Mutex;

/// A deployed function's handler: services one request and reports the
/// virtual completion instant, given the forward (issue) instant.
pub type Handler = Arc<dyn Fn(VirtualTime) -> Result<VirtualTime, String> + Send + Sync>;

/// Gateway errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// No function deployed under that name.
    FunctionNotFound(String),
    /// The function's handler failed.
    Invocation(String),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::FunctionNotFound(n) => write!(f, "function {n:?} is not deployed"),
            GatewayError::Invocation(m) => write!(f, "invocation failed: {m}"),
        }
    }
}

impl Error for GatewayError {}

/// Per-function results, matching the columns of Tables II–IV.
#[derive(Debug, Clone, Default)]
pub struct FunctionStats {
    /// Completed request latencies (milliseconds).
    pub latency_ms: Samples,
    /// Completed request count.
    pub processed: u64,
    /// Failed request count.
    pub failed: u64,
}

impl FunctionStats {
    /// Mean latency as a duration, if any request completed.
    pub fn mean_latency(&self) -> Option<VirtualDuration> {
        self.latency_ms.mean().map(VirtualDuration::from_millis_f64)
    }

    /// Processed requests per second over the window `span`.
    pub fn processed_rate(&self, span: VirtualDuration) -> f64 {
        if span == VirtualDuration::ZERO {
            return 0.0;
        }
        self.processed as f64 / span.as_secs_f64()
    }
}

struct Deployment {
    handler: Handler,
    stats: FunctionStats,
}

/// The gateway: forwards requests to deployed functions, applying the
/// gateway's own forwarding latency, and accumulates per-function stats.
///
/// Cloning yields another handle to the same gateway.
#[derive(Clone)]
pub struct Gateway {
    forward_latency: VirtualDuration,
    functions: Arc<Mutex<BTreeMap<String, Deployment>>>,
}

impl Gateway {
    /// Creates a gateway with the given per-request forwarding latency
    /// (HTTP parsing + routing).
    pub fn new(forward_latency: VirtualDuration) -> Self {
        Gateway {
            forward_latency,
            functions: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The configured forwarding latency.
    pub fn forward_latency(&self) -> VirtualDuration {
        self.forward_latency
    }

    /// Deploys (or replaces) a function.
    pub fn deploy(&self, name: impl Into<String>, handler: Handler) {
        self.functions.lock().insert(
            name.into(),
            Deployment {
                handler,
                stats: FunctionStats::default(),
            },
        );
    }

    /// Deployed function names.
    pub fn functions(&self) -> Vec<String> {
        self.functions.lock().keys().cloned().collect()
    }

    /// Invokes `name` at virtual instant `at`; returns the completion
    /// instant. Latency (completion − issue) is recorded in the function's
    /// stats.
    ///
    /// # Errors
    ///
    /// Returns [`GatewayError::FunctionNotFound`] or the handler's failure.
    pub fn invoke(&self, name: &str, at: VirtualTime) -> Result<VirtualTime, GatewayError> {
        let handler = {
            let functions = self.functions.lock();
            functions
                .get(name)
                .ok_or_else(|| GatewayError::FunctionNotFound(name.to_string()))?
                .handler
                .clone()
        };
        let forwarded = at + self.forward_latency;
        let result = handler(forwarded);
        let mut functions = self.functions.lock();
        let deployment = functions
            .get_mut(name)
            .ok_or_else(|| GatewayError::FunctionNotFound(name.to_string()))?;
        match result {
            Ok(done) => {
                let done = done + self.forward_latency; // response path
                deployment.stats.processed += 1;
                deployment
                    .stats
                    .latency_ms
                    .record((done - at).as_millis_f64());
                Ok(done)
            }
            Err(m) => {
                deployment.stats.failed += 1;
                Err(GatewayError::Invocation(m))
            }
        }
    }

    /// Snapshot of a function's stats.
    pub fn stats(&self, name: &str) -> Option<FunctionStats> {
        self.functions.lock().get(name).map(|d| d.stats.clone())
    }
}

/// Outcome of one closed-loop load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRunResult {
    /// Requests completed inside the window.
    pub processed: u64,
    /// Requests that failed.
    pub failed: u64,
    /// Mean end-to-end latency over completed requests.
    pub mean_latency: VirtualDuration,
    /// Achieved rate over the window (rq/s).
    pub achieved_rps: f64,
}

/// Drives `function` with a `hey -c 1 -q rate`-style closed loop on the
/// virtual timeline for `duration`, advancing `clock` along the way — the
/// direct-mode (real threads) twin of the DES load generator, used to
/// cross-check the two execution modes against each other.
///
/// # Errors
///
/// Returns [`GatewayError::FunctionNotFound`] when the function is not
/// deployed. Individual request failures are counted, not fatal.
pub fn run_closed_loop(
    gateway: &Gateway,
    function: &str,
    rate: f64,
    duration: VirtualDuration,
    clock: &bf_model::VirtualClock,
) -> Result<LoadRunResult, GatewayError> {
    if !gateway.functions().iter().any(|f| f == function) {
        return Err(GatewayError::FunctionNotFound(function.to_string()));
    }
    let start = clock.now();
    let horizon = start + duration;
    let mut pacer = crate::ClosedLoopPacer::new(rate, start);
    let mut issue = pacer.first_issue();
    let mut processed = 0u64;
    let mut failed = 0u64;
    let mut latency_sum = VirtualDuration::ZERO;
    while issue < horizon {
        clock.advance_to(issue);
        match gateway.invoke(function, issue) {
            Ok(done) => {
                clock.advance_to(done);
                processed += 1;
                latency_sum += done - issue;
                issue = pacer.next_issue(done);
            }
            Err(_) => {
                failed += 1;
                issue = pacer.next_issue(clock.now());
            }
        }
    }
    let window = clock.now().max(horizon) - start;
    Ok(LoadRunResult {
        processed,
        failed,
        mean_latency: if processed > 0 {
            latency_sum / processed
        } else {
            VirtualDuration::ZERO
        },
        achieved_rps: processed as f64 / window.as_secs_f64().max(f64::MIN_POSITIVE),
    })
}

impl fmt::Debug for Gateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gateway")
            .field("functions", &self.functions.lock().len())
            .field("forward_latency", &self.forward_latency)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::ZERO + VirtualDuration::from_millis(ms)
    }

    #[test]
    fn invoke_records_latency_with_both_forward_hops() {
        let gw = Gateway::new(VirtualDuration::from_millis(1));
        gw.deploy(
            "echo",
            Arc::new(|at| Ok(at + VirtualDuration::from_millis(10))),
        );
        let done = gw.invoke("echo", t(0)).expect("invoke");
        assert_eq!(done, t(12), "1 ms in + 10 ms service + 1 ms out");
        let stats = gw.stats("echo").expect("stats");
        assert_eq!(stats.processed, 1);
        assert_eq!(stats.latency_ms.mean(), Some(12.0));
    }

    #[test]
    fn unknown_function_404s() {
        let gw = Gateway::new(VirtualDuration::ZERO);
        assert_eq!(
            gw.invoke("ghost", t(0)),
            Err(GatewayError::FunctionNotFound("ghost".to_string()))
        );
    }

    #[test]
    fn failures_count_separately() {
        let gw = Gateway::new(VirtualDuration::ZERO);
        gw.deploy("flaky", Arc::new(|_| Err("boom".to_string())));
        assert!(gw.invoke("flaky", t(0)).is_err());
        let stats = gw.stats("flaky").expect("stats");
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.processed, 0);
    }

    #[test]
    fn processed_rate_uses_the_window() {
        let stats = FunctionStats {
            processed: 50,
            ..FunctionStats::default()
        };
        assert_eq!(stats.processed_rate(VirtualDuration::from_secs(10)), 5.0);
        assert_eq!(stats.processed_rate(VirtualDuration::ZERO), 0.0);
    }
}
