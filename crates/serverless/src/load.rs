//! Load configurations (paper Table I) and the `hey`-like closed-loop
//! request pacer.

use bf_model::{VirtualDuration, VirtualTime};

/// The three benchmark functions of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseCase {
    /// Spector Sobel edge detector.
    Sobel,
    /// Spector matrix multiply.
    Mm,
    /// PipeCNN running AlexNet.
    AlexNet,
}

impl std::fmt::Display for UseCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UseCase::Sobel => write!(f, "Sobel"),
            UseCase::Mm => write!(f, "MM"),
            UseCase::AlexNet => write!(f, "AlexNet"),
        }
    }
}

/// Load levels of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadLevel {
    /// "Low load".
    Low,
    /// "Medium load".
    Medium,
    /// "High load".
    High,
}

impl std::fmt::Display for LoadLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadLevel::Low => write!(f, "Low Load"),
            LoadLevel::Medium => write!(f, "Medium Load"),
            LoadLevel::High => write!(f, "High Load"),
        }
    }
}

/// Table I: requests per second sent to each of the five functions.
/// Returns `None` for the configurations the paper does not test
/// (AlexNet low load).
pub fn table1_rates(use_case: UseCase, level: LoadLevel) -> Option<[f64; 5]> {
    Some(match (use_case, level) {
        (UseCase::Sobel, LoadLevel::Low) => [20.0, 15.0, 10.0, 5.0, 5.0],
        (UseCase::Sobel, LoadLevel::Medium) => [35.0, 30.0, 25.0, 20.0, 15.0],
        (UseCase::Sobel, LoadLevel::High) => [60.0, 50.0, 35.0, 30.0, 15.0],
        (UseCase::Mm, LoadLevel::Low) => [28.0, 21.0, 14.0, 7.0, 7.0],
        (UseCase::Mm, LoadLevel::Medium) => [49.0, 42.0, 35.0, 28.0, 21.0],
        (UseCase::Mm, LoadLevel::High) => [84.0, 70.0, 49.0, 42.0, 21.0],
        (UseCase::AlexNet, LoadLevel::Medium) => [6.0, 3.0, 3.0, 3.0, 3.0],
        (UseCase::AlexNet, LoadLevel::High) => [9.0, 9.0, 6.0, 6.0, 3.0],
        (UseCase::AlexNet, LoadLevel::Low) => return None,
    })
}

/// Rates used in the Native scenario: "only the first 3 columns" (one
/// function per device).
pub fn native_rates(use_case: UseCase, level: LoadLevel) -> Option<[f64; 3]> {
    table1_rates(use_case, level).map(|r| [r[0], r[1], r[2]])
}

/// Models `hey -c 1 -q rate`: one connection paced at a target rate.
/// Requests are issued at fixed interval ticks, but a new request never
/// overlaps the outstanding one — when the response arrives late, the next
/// request goes out immediately (closed loop). The achieved rate is thus
/// `min(target, 1/latency)` under saturation — the mechanism behind the
/// paper's processed-vs-target gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedLoopPacer {
    interval: VirtualDuration,
    next_slot: VirtualTime,
}

impl ClosedLoopPacer {
    /// A pacer targeting `rate` requests/second, first request at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn new(rate: f64, start: VirtualTime) -> Self {
        assert!(rate > 0.0, "target rate must be positive");
        ClosedLoopPacer {
            interval: VirtualDuration::from_secs_f64(1.0 / rate),
            next_slot: start,
        }
    }

    /// The pacing interval (1/rate).
    pub fn interval(&self) -> VirtualDuration {
        self.interval
    }

    /// The issue instant of the first request.
    pub fn first_issue(&mut self) -> VirtualTime {
        let t = self.next_slot;
        self.next_slot = t + self.interval;
        t
    }

    /// Given the completion instant of the previous request, returns when
    /// the next request is issued.
    pub fn next_issue(&mut self, completed_at: VirtualTime) -> VirtualTime {
        let issue = self.next_slot.max(completed_at);
        self.next_slot = issue + self.interval;
        issue
    }
}

/// An open-loop arrival process: requests arrive at fixed interval ticks
/// regardless of completions — the load shape under which overload turns
/// into queue growth and admission-control sheds (unlike the closed
/// loop's self-throttling). Drives [`run_open_loop`](crate::run_open_loop)
/// and the `bf-bench` gateway ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenLoopPacer {
    interval: VirtualDuration,
    next: VirtualTime,
}

impl OpenLoopPacer {
    /// A pacer targeting `rate` arrivals/second, first arrival at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn new(rate: f64, start: VirtualTime) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        OpenLoopPacer {
            interval: VirtualDuration::from_secs_f64(1.0 / rate),
            next: start,
        }
    }

    /// The arrival interval (1/rate).
    pub fn interval(&self) -> VirtualDuration {
        self.interval
    }

    /// The next arrival instant; arrivals never wait for completions.
    pub fn next_arrival(&mut self) -> VirtualTime {
        let t = self.next;
        self.next = t + self.interval;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::ZERO + VirtualDuration::from_millis(ms)
    }

    #[test]
    fn table1_matches_the_paper() {
        assert_eq!(
            table1_rates(UseCase::Sobel, LoadLevel::High),
            Some([60.0, 50.0, 35.0, 30.0, 15.0])
        );
        assert_eq!(
            table1_rates(UseCase::Mm, LoadLevel::Low),
            Some([28.0, 21.0, 14.0, 7.0, 7.0])
        );
        assert_eq!(
            table1_rates(UseCase::AlexNet, LoadLevel::Medium),
            Some([6.0, 3.0, 3.0, 3.0, 3.0])
        );
        assert_eq!(table1_rates(UseCase::AlexNet, LoadLevel::Low), None);
        assert_eq!(
            native_rates(UseCase::Sobel, LoadLevel::Medium),
            Some([35.0, 30.0, 25.0])
        );
    }

    #[test]
    fn fast_responses_follow_the_target_rate() {
        // 10 rq/s, each served instantly: issues at 0, 100 ms, 200 ms, ...
        let mut pacer = ClosedLoopPacer::new(10.0, VirtualTime::ZERO);
        let first = pacer.first_issue();
        assert_eq!(first, t(0));
        let second = pacer.next_issue(t(5));
        assert_eq!(second, t(100));
        let third = pacer.next_issue(t(105));
        assert_eq!(third, t(200));
    }

    #[test]
    fn slow_responses_throttle_the_loop() {
        // 10 rq/s target but 250 ms latency: the single connection caps at
        // 4 rq/s — requests go out back-to-back on completion.
        let mut pacer = ClosedLoopPacer::new(10.0, VirtualTime::ZERO);
        let _ = pacer.first_issue();
        let second = pacer.next_issue(t(250));
        assert_eq!(second, t(250));
        let third = pacer.next_issue(t(500));
        assert_eq!(third, t(500));
    }

    #[test]
    fn open_loop_arrivals_ignore_completions() {
        let mut pacer = OpenLoopPacer::new(10.0, VirtualTime::ZERO);
        assert_eq!(pacer.next_arrival(), t(0));
        assert_eq!(pacer.next_arrival(), t(100));
        assert_eq!(pacer.next_arrival(), t(200), "no completion coupling");
    }

    #[test]
    fn late_then_fast_catches_up_to_slots() {
        let mut pacer = ClosedLoopPacer::new(10.0, VirtualTime::ZERO);
        let _ = pacer.first_issue();
        // One slow response pushes past several slots…
        let slow = pacer.next_issue(t(350));
        assert_eq!(slow, t(350));
        // …after which pacing resumes relative to the late issue.
        let next = pacer.next_issue(t(360));
        assert_eq!(next, t(450));
    }
}
