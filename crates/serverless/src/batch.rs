//! The dynamic batcher: per-function request coalescing with admission
//! control.
//!
//! Each deployed function owns a [`Batcher`]. Incoming invocations queue in
//! a bounded buffer; a batch is drained when either `max_batch_size`
//! invocations are pending or the oldest one has waited `max_wait` on the
//! virtual timeline. Submissions past the queue capacity are shed with a
//! typed error — the serverless twin of the transport layer's
//! `TransportError::Backpressure`.
//!
//! Two drain styles are supported: virtual-time pumps ([`Batcher::drain_due`]
//! driven by [`Batcher::next_deadline`], used by the gateway's run loops)
//! and a blocking worker API ([`Batcher::next_batch_blocking`]) for
//! direct-mode consumers on real threads. The blocking path is a classic
//! mutex/condvar handoff and is covered by a `bf-race` model test.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::time::Duration;

use bf_model::{VirtualDuration, VirtualTime};
use bf_race::sync::{Condvar, Mutex};

use crate::invoke::Invocation;

/// Identifies one queued invocation within its function's batcher; returned
/// by submission and echoed with the matching completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket(u64);

/// A drained batch: tickets and invocations in queue (FIFO) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    tickets: Vec<Ticket>,
    invocations: Vec<Invocation>,
}

impl Batch {
    /// Number of invocations in the batch.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Whether the batch is empty (drains never produce empty batches).
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// The batched invocations, oldest first.
    pub fn invocations(&self) -> &[Invocation] {
        &self.invocations
    }

    /// The tickets, parallel to [`Batch::invocations`].
    pub fn tickets(&self) -> &[Ticket] {
        &self.tickets
    }

    /// Decomposes into `(tickets, invocations)`.
    pub fn into_parts(self) -> (Vec<Ticket>, Vec<Invocation>) {
        (self.tickets, self.invocations)
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; the invocation was shed (admission
    /// control, mirroring the transport's `Backpressure`).
    Shed {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The batcher was closed; no further invocations are accepted.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Shed { capacity } => {
                write!(f, "invocation shed: queue at capacity {capacity}")
            }
            SubmitError::Closed => write!(f, "batcher is closed"),
        }
    }
}

impl Error for SubmitError {}

#[derive(Debug)]
struct QueueState {
    pending: VecDeque<(Ticket, Invocation)>,
    next_ticket: u64,
    shed: u64,
    closed: bool,
}

/// Per-function dynamic batcher. Configure with the `with_*` builders
/// before deploying:
///
/// ```
/// use bf_model::VirtualDuration;
/// use bf_serverless::Batcher;
///
/// let batcher = Batcher::new()
///     .with_max_batch_size(8)
///     .with_max_wait(VirtualDuration::from_millis(5))
///     .with_queue_capacity(64);
/// assert_eq!(batcher.max_batch_size(), 8);
/// ```
#[derive(Debug)]
pub struct Batcher {
    max_batch_size: usize,
    max_wait: VirtualDuration,
    queue_capacity: usize,
    batch_state: Mutex<QueueState>,
    ready: Condvar,
}

impl Default for Batcher {
    fn default() -> Self {
        Batcher::new()
    }
}

impl Batcher {
    /// A batcher with the default envelope: batches of up to 8, 5 ms
    /// maximum wait, queue capacity 64.
    pub fn new() -> Self {
        Batcher {
            max_batch_size: 8,
            max_wait: VirtualDuration::from_millis(5),
            queue_capacity: 64,
            batch_state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                next_ticket: 0,
                shed: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// A degenerate batcher that never coalesces: batch size 1, zero wait.
    /// This is the compatibility configuration for single-request handlers
    /// (see [`SingleRequest`](crate::SingleRequest)).
    pub fn unbatched() -> Self {
        Batcher::new()
            .with_max_batch_size(1)
            .with_max_wait(VirtualDuration::ZERO)
    }

    /// Sets the maximum invocations per batch.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch_size` is zero.
    pub fn with_max_batch_size(mut self, max_batch_size: usize) -> Self {
        assert!(max_batch_size >= 1, "batches need at least one slot");
        self.max_batch_size = max_batch_size;
        self
    }

    /// Sets how long the oldest pending invocation may linger (virtual
    /// time) before a partial batch is drained.
    pub fn with_max_wait(mut self, max_wait: VirtualDuration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Sets the admission-control bound: submissions beyond this many
    /// pending invocations are shed.
    ///
    /// # Panics
    ///
    /// Panics if `queue_capacity` is zero.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        assert!(queue_capacity >= 1, "queue needs at least one slot");
        self.queue_capacity = queue_capacity;
        self
    }

    /// The configured maximum batch size.
    pub fn max_batch_size(&self) -> usize {
        self.max_batch_size
    }

    /// The configured maximum linger of the oldest pending invocation.
    pub fn max_wait(&self) -> VirtualDuration {
        self.max_wait
    }

    /// The configured admission-control queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Queues one invocation.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Shed`] when the queue is at capacity (the shed is
    /// also counted, see [`Batcher::shed_total`]); [`SubmitError::Closed`]
    /// after [`Batcher::close`].
    pub fn submit(&self, invocation: Invocation) -> Result<Ticket, SubmitError> {
        let mut state = self.batch_state.lock();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.pending.len() >= self.queue_capacity {
            state.shed += 1;
            return Err(SubmitError::Shed {
                capacity: self.queue_capacity,
            });
        }
        let ticket = Ticket(state.next_ticket);
        state.next_ticket += 1;
        state.pending.push_back((ticket, invocation));
        // Wake the blocking consumer on every arrival: the first item must
        // start its linger timer, and a full batch must drain immediately.
        self.ready.notify_one();
        Ok(ticket)
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.batch_state.lock().pending.len()
    }

    /// Total invocations shed at admission since creation.
    pub fn shed_total(&self) -> u64 {
        self.batch_state.lock().shed
    }

    /// The virtual instant at which the pending queue (if any) becomes
    /// due: immediately (the oldest arrival) when a full batch is already
    /// waiting, otherwise the oldest arrival plus `max_wait`.
    pub fn next_deadline(&self) -> Option<VirtualTime> {
        let state = self.batch_state.lock();
        let (_, oldest) = state.pending.front()?;
        if state.pending.len() >= self.max_batch_size {
            Some(oldest.issued_at)
        } else {
            Some(oldest.issued_at + self.max_wait)
        }
    }

    /// Drains one batch if due at `now`: a full `max_batch_size` is always
    /// due; a partial batch is due once the oldest invocation has waited
    /// `max_wait`. Returns `None` when nothing is due (including the
    /// empty-queue case).
    pub fn drain_due(&self, now: VirtualTime) -> Option<Batch> {
        let mut state = self.batch_state.lock();
        let (_, oldest) = state.pending.front()?;
        let due = state.pending.len() >= self.max_batch_size
            || state.closed
            || now >= oldest.issued_at + self.max_wait;
        due.then(|| Self::drain_locked(&mut state, self.max_batch_size))
    }

    /// Force-drains one batch (up to `max_batch_size`) regardless of
    /// deadlines; `None` when the queue is empty. Callers flushing
    /// everything loop until `None`.
    pub fn drain_now(&self) -> Option<Batch> {
        let mut state = self.batch_state.lock();
        if state.pending.is_empty() {
            return None;
        }
        Some(Self::drain_locked(&mut state, self.max_batch_size))
    }

    /// Blocks until a batch is available and returns it, or `None` once
    /// the batcher is closed and fully drained. `linger` is the real-time
    /// bound a partial batch may wait for stragglers — the wall-clock
    /// counterpart of `max_wait` for direct-mode worker threads (model
    /// builds map it onto the race scheduler's virtual deadline).
    pub fn next_batch_blocking(&self, linger: Duration) -> Option<Batch> {
        let mut state = self.batch_state.lock();
        loop {
            if state.pending.len() >= self.max_batch_size {
                return Some(Self::drain_locked(&mut state, self.max_batch_size));
            }
            if state.closed {
                if state.pending.is_empty() {
                    return None;
                }
                return Some(Self::drain_locked(&mut state, self.max_batch_size));
            }
            if state.pending.is_empty() {
                self.ready.wait(&mut state);
            } else {
                let timed_out = self.ready.wait_for(&mut state, linger).timed_out();
                if timed_out && !state.pending.is_empty() {
                    return Some(Self::drain_locked(&mut state, self.max_batch_size));
                }
            }
        }
    }

    /// Closes the batcher: further submissions are rejected, blocked
    /// consumers drain the remainder and then observe the end of stream.
    pub fn close(&self) {
        let mut state = self.batch_state.lock();
        state.closed = true;
        self.ready.notify_all();
    }

    /// Whether [`Batcher::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.batch_state.lock().closed
    }

    fn drain_locked(state: &mut QueueState, max: usize) -> Batch {
        let take = state.pending.len().min(max);
        let mut tickets = Vec::with_capacity(take);
        let mut invocations = Vec::with_capacity(take);
        for (ticket, invocation) in state.pending.drain(..take) {
            tickets.push(ticket);
            invocations.push(invocation);
        }
        Batch {
            tickets,
            invocations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::ZERO + VirtualDuration::from_millis(ms)
    }

    fn batcher() -> Batcher {
        Batcher::new()
            .with_max_batch_size(3)
            .with_max_wait(VirtualDuration::from_millis(10))
            .with_queue_capacity(5)
    }

    #[test]
    fn empty_queue_drains_nothing() {
        let b = batcher();
        assert_eq!(b.next_deadline(), None);
        assert!(b.drain_due(t(1_000)).is_none());
        assert!(b.drain_now().is_none());
    }

    #[test]
    fn full_batch_is_due_immediately() {
        let b = batcher();
        for ms in 0..3 {
            b.submit(Invocation::at(t(ms))).expect("capacity 5");
        }
        assert_eq!(b.next_deadline(), Some(t(0)), "full batch: due at oldest");
        let batch = b.drain_due(t(2)).expect("size-triggered flush");
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.invocations()[0].issued_at, t(0), "FIFO order");
        assert!(b.drain_due(t(2)).is_none(), "queue now empty");
    }

    #[test]
    fn partial_batch_waits_for_max_wait() {
        let b = batcher();
        b.submit(Invocation::at(t(0))).expect("capacity 5");
        b.submit(Invocation::at(t(3))).expect("capacity 5");
        assert_eq!(b.next_deadline(), Some(t(10)), "oldest arrival + max_wait");
        assert!(b.drain_due(t(9)).is_none(), "not due yet");
        let batch = b.drain_due(t(10)).expect("deadline flush");
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn oversize_queue_drains_in_max_size_chunks() {
        let b = batcher();
        for ms in 0..5 {
            b.submit(Invocation::at(t(ms))).expect("capacity 5");
        }
        assert_eq!(b.drain_due(t(5)).map(|b| b.len()), Some(3));
        assert_eq!(
            b.drain_due(t(5)).map(|b| b.len()),
            None,
            "remaining 2 are not due at t=5"
        );
        assert_eq!(b.drain_now().map(|b| b.len()), Some(2), "force flush");
    }

    #[test]
    fn shed_at_capacity_is_typed_and_counted() {
        let b = batcher();
        for ms in 0..5 {
            b.submit(Invocation::at(t(ms))).expect("capacity 5");
        }
        assert_eq!(
            b.submit(Invocation::at(t(6))),
            Err(SubmitError::Shed { capacity: 5 })
        );
        assert_eq!(b.shed_total(), 1);
        assert_eq!(b.queue_depth(), 5, "shed submission did not queue");
    }

    #[test]
    fn closed_batcher_rejects_then_drains() {
        let b = batcher();
        b.submit(Invocation::at(t(0))).expect("capacity 5");
        b.close();
        assert_eq!(b.submit(Invocation::at(t(1))), Err(SubmitError::Closed));
        let batch = b.drain_due(t(0)).expect("closed queues are always due");
        assert_eq!(batch.len(), 1);
        assert_eq!(
            b.next_batch_blocking(Duration::from_millis(1)),
            None,
            "end of stream after close + drain"
        );
    }

    #[test]
    fn unbatched_preset_flushes_every_submission() {
        let b = Batcher::unbatched();
        let ticket = b.submit(Invocation::at(t(7))).expect("capacity 64");
        let batch = b.drain_due(t(7)).expect("size-1 batches are always due");
        assert_eq!(batch.tickets(), &[ticket]);
    }

    #[test]
    fn blocking_consumer_sees_producer_batches() {
        let b = std::sync::Arc::new(Batcher::new().with_max_batch_size(3));
        let producer = {
            let b = std::sync::Arc::clone(&b);
            std::thread::spawn(move || {
                for ms in 0..6 {
                    b.submit(Invocation::at(t(ms))).expect("capacity 64");
                }
                b.close();
            })
        };
        let mut received = 0;
        while let Some(batch) = b.next_batch_blocking(Duration::from_millis(1)) {
            received += batch.len();
        }
        producer.join().expect("producer");
        assert_eq!(received, 6, "no invocation lost in the handoff");
    }
}
