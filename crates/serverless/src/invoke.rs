//! The typed invocation API: request/response types exchanged between the
//! gateway, the batcher, and deployed functions.
//!
//! This replaces the original closure-based handler surface
//! (`Arc<dyn Fn(VirtualTime) -> Result<VirtualTime, String>>`), which could
//! not express batches, typed failures, or payload sizes. Existing
//! single-request handlers keep working through the [`SingleRequest`]
//! adapter, which services a batch serially — see its docs for the exact
//! timing semantics.

use std::error::Error;
use std::fmt;

use bf_model::VirtualTime;

/// One request admitted by the gateway: the client-side issue instant plus
/// the request payload size (used by profile-driven handlers to model
/// transfer time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// Virtual instant the client issued the request.
    pub issued_at: VirtualTime,
    /// Request payload size in bytes (0 when irrelevant).
    pub payload_bytes: u64,
}

impl Invocation {
    /// An invocation issued at `issued_at` with no payload accounting.
    pub fn at(issued_at: VirtualTime) -> Self {
        Invocation {
            issued_at,
            payload_bytes: 0,
        }
    }

    /// Sets the request payload size.
    pub fn with_payload_bytes(mut self, payload_bytes: u64) -> Self {
        self.payload_bytes = payload_bytes;
        self
    }
}

/// A function's response to one [`Invocation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Virtual instant the function finished servicing the request. The
    /// gateway adds its own response-path forwarding latency on top before
    /// reporting the completion to the client.
    pub done_at: VirtualTime,
}

impl Completion {
    /// A completion at `done_at`.
    pub fn at(done_at: VirtualTime) -> Self {
        Completion { done_at }
    }
}

/// A function-level failure servicing one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerError {
    reason: String,
}

impl HandlerError {
    /// A handler failure with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        HandlerError {
            reason: reason.into(),
        }
    }

    /// The failure reason.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for HandlerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "handler failed: {}", self.reason)
    }
}

impl Error for HandlerError {}

/// A deployed function: services whole batches of invocations.
///
/// The gateway dispatches each batch at a virtual instant `start` (after
/// forwarding latency and any queueing behind the previous batch) and
/// expects one result per invocation, in order. Implementations report
/// function-side completion instants; the gateway layers its response-path
/// forwarding latency on top.
pub trait BatchHandler: Send + Sync {
    /// Services `batch`, dispatched at `start`. Must return exactly
    /// `batch.len()` results, in the same order as the input.
    fn handle_batch(
        &self,
        start: VirtualTime,
        batch: &[Invocation],
    ) -> Vec<Result<Completion, HandlerError>>;
}

/// Compatibility adapter from the pre-batching single-request closure API:
/// wraps a `Fn(VirtualTime) -> Result<VirtualTime, HandlerError>` and
/// services batches serially, chaining each invocation's start instant off
/// the previous completion (a batch on this adapter gains admission-control
/// and amortised-forwarding benefits, but no service-time parallelism).
///
/// This is the migration path for existing deployments: pair it with
/// [`Batcher::unbatched`](crate::Batcher::unbatched) (as
/// [`Gateway::deploy_single`](crate::Gateway::deploy_single) does) to get
/// the exact per-request timing of the old closure `Handler` API.
pub struct SingleRequest<F> {
    f: F,
}

impl<F> SingleRequest<F>
where
    F: Fn(VirtualTime) -> Result<VirtualTime, HandlerError> + Send + Sync,
{
    /// Wraps a single-request handler closure.
    pub fn new(f: F) -> Self {
        SingleRequest { f }
    }
}

impl<F> BatchHandler for SingleRequest<F>
where
    F: Fn(VirtualTime) -> Result<VirtualTime, HandlerError> + Send + Sync,
{
    fn handle_batch(
        &self,
        start: VirtualTime,
        batch: &[Invocation],
    ) -> Vec<Result<Completion, HandlerError>> {
        let mut cursor = start;
        let mut out = Vec::with_capacity(batch.len());
        for _invocation in batch {
            match (self.f)(cursor) {
                Ok(done) => {
                    cursor = cursor.max(done);
                    out.push(Ok(Completion::at(done)));
                }
                Err(e) => out.push(Err(e)),
            }
        }
        out
    }
}

impl<F> fmt::Debug for SingleRequest<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SingleRequest").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use bf_model::VirtualDuration;

    use super::*;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::ZERO + VirtualDuration::from_millis(ms)
    }

    #[test]
    fn single_request_services_a_batch_serially() {
        let adapter = SingleRequest::new(|at| Ok(at + VirtualDuration::from_millis(10)));
        let batch = [Invocation::at(t(0)), Invocation::at(t(1))];
        let results = adapter.handle_batch(t(5), &batch);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0], Ok(Completion::at(t(15))));
        assert_eq!(results[1], Ok(Completion::at(t(25))), "chained serially");
    }

    #[test]
    fn single_request_failure_does_not_advance_the_cursor() {
        let failed_once = std::sync::atomic::AtomicBool::new(false);
        let adapter = SingleRequest::new(move |at| {
            if failed_once.swap(true, std::sync::atomic::Ordering::Relaxed) {
                Ok(at + VirtualDuration::from_millis(10))
            } else {
                Err(HandlerError::new("cold start"))
            }
        });
        let batch = [Invocation::at(t(0)), Invocation::at(t(0))];
        let results = adapter.handle_batch(t(5), &batch);
        assert_eq!(results[0], Err(HandlerError::new("cold start")));
        assert_eq!(results[1], Ok(Completion::at(t(15))), "retry from start");
    }
}
