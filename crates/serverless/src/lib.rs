#![forbid(unsafe_code)]

//! # bf-serverless — the serverless substrate
//!
//! The paper wraps each benchmark in an OpenFaaS function and drives it
//! with `hey` (one connection per function, fixed target rate). This crate
//! provides both pieces:
//!
//! * [`Gateway`] — the serverless endpoint: request forwarding with its
//!   own latency, per-function [`FunctionStats`];
//! * [`ClosedLoopPacer`] — the exact `hey -c 1 -q rate` arrival process:
//!   paced ticks, but never more than one outstanding request, so a
//!   saturated function degrades to `1/latency` throughput — the mechanism
//!   behind Tables II–IV's processed-vs-target gaps;
//! * [`table1_rates`] — the paper's Table I load matrix;
//! * [`Autoscaler`] — the gateway-side replica scaler (OpenFaaS-style
//!   per-replica load targets with scale-down hysteresis), reconciling
//!   through the cluster so every replica passes the registry's admission.

mod autoscale;
mod gateway;
mod load;

pub use autoscale::{AutoscaleError, AutoscalePolicy, Autoscaler, ReconcileAction};
pub use gateway::{run_closed_loop, FunctionStats, Gateway, GatewayError, Handler, LoadRunResult};
pub use load::{native_rates, table1_rates, ClosedLoopPacer, LoadLevel, UseCase};

#[cfg(test)]
mod proptests {
    use bf_model::{VirtualDuration, VirtualTime};
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// The pacer never issues two requests closer than the pacing
        /// interval when responses are instant, and never issues before
        /// the previous completion.
        #[test]
        fn pacer_invariants(
            rate in 1.0f64..200.0,
            latencies_ms in proptest::collection::vec(0.0f64..100.0, 1..100),
        ) {
            let mut pacer = ClosedLoopPacer::new(rate, VirtualTime::ZERO);
            let mut issue = pacer.first_issue();
            let mut prev_issue = issue;
            let mut first = true;
            for lat in latencies_ms {
                let done = issue + VirtualDuration::from_millis_f64(lat);
                issue = pacer.next_issue(done);
                prop_assert!(issue >= done, "issued before completion");
                if !first {
                    let gap = issue - prev_issue;
                    prop_assert!(
                        gap.as_secs_f64() >= (1.0 / rate) - 1e-6 || issue == done,
                        "gap {gap} under interval without backpressure"
                    );
                }
                first = false;
                prev_issue = issue;
            }
        }

        /// Under saturation (latency >> interval) the achieved rate is
        /// ~1/latency.
        #[test]
        fn saturated_loop_caps_at_inverse_latency(rate in 50.0f64..100.0) {
            let latency = VirtualDuration::from_millis(100); // 10 rq/s max
            let mut pacer = ClosedLoopPacer::new(rate, VirtualTime::ZERO);
            let mut issue = pacer.first_issue();
            let n = 50;
            for _ in 0..n {
                let done = issue + latency;
                issue = pacer.next_issue(done);
            }
            let achieved = n as f64 / (issue - VirtualTime::ZERO).as_secs_f64();
            prop_assert!((achieved - 10.0).abs() < 0.5, "achieved {achieved}");
        }
    }
}
