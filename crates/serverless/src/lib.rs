#![forbid(unsafe_code)]

//! # bf-serverless — the serverless substrate
//!
//! The paper wraps each benchmark in an OpenFaaS function and drives it
//! with `hey` (one connection per function, fixed target rate). This crate
//! provides both pieces, plus the batching/admission pipeline in front of
//! them:
//!
//! * [`Gateway`] — the serverless endpoint: typed [`Invocation`] /
//!   [`Completion`] request–response admission, request forwarding with
//!   its own latency, per-function [`FunctionStats`];
//! * [`Batcher`] — per-function dynamic batching (bounded by
//!   `max_batch_size` and `max_wait` on the virtual timeline) with
//!   admission control: a bounded queue that sheds overload as the typed
//!   [`GatewayError::Overloaded`];
//! * [`BatchHandler`] — what a deployed function implements; existing
//!   single-request closures migrate through the [`SingleRequest`]
//!   adapter (see below);
//! * [`ClosedLoopPacer`] — the exact `hey -c 1 -q rate` arrival process:
//!   paced ticks, but never more than one outstanding request, so a
//!   saturated function degrades to `1/latency` throughput — the mechanism
//!   behind Tables II–IV's processed-vs-target gaps;
//! * [`OpenLoopPacer`] — fixed-rate arrivals decoupled from completions,
//!   under which overload surfaces as queue growth and sheds instead;
//! * [`route_batch`] — batch co-location: sends a drained batch to the
//!   board that serves its accelerator most cheaply (configured >
//!   warm-staged > cold, shortest queue as the tie-break);
//! * [`table1_rates`] — the paper's Table I load matrix;
//! * [`Autoscaler`] — the gateway-side replica scaler (OpenFaaS-style
//!   per-replica load targets with scale-down hysteresis, plus
//!   queue-depth/shed-rate pressure from the batching pipeline via
//!   [`LoadSignal`]), reconciling through the cluster so every replica
//!   passes the registry's admission.
//!
//! # Migrating from the closure `Handler` API
//!
//! The pre-batching `Handler` type alias
//! (`Arc<dyn Fn(VirtualTime) -> Result<VirtualTime, String>>`) is gone
//! from the public API: it could not express batches, typed failures, or
//! payload sizes. The compatibility path is [`SingleRequest`], which
//! wraps a `Fn(VirtualTime) -> Result<VirtualTime, HandlerError>` closure
//! as a [`BatchHandler`]; [`Gateway::deploy_single`] pairs it with
//! [`Batcher::unbatched`] for the old API's exact per-request timing:
//!
//! ```
//! use bf_model::{VirtualDuration, VirtualTime};
//! use bf_serverless::Gateway;
//!
//! let gateway = Gateway::new().with_forward_latency(VirtualDuration::from_millis(1));
//! gateway.deploy_single("echo", |at| Ok(at + VirtualDuration::from_millis(10)));
//! let done = gateway.invoke("echo", VirtualTime::ZERO)?;
//! assert_eq!(done, VirtualTime::ZERO + VirtualDuration::from_millis(12));
//! # Ok::<(), bf_serverless::GatewayError>(())
//! ```

mod autoscale;
mod batch;
mod colocate;
mod gateway;
mod invoke;
mod load;

pub use autoscale::{AutoscaleError, AutoscalePolicy, Autoscaler, LoadSignal, ReconcileAction};
pub use batch::{Batch, Batcher, SubmitError, Ticket};
pub use colocate::{board_snapshots, route_batch, BoardSnapshot, BoardWarmth};
pub use gateway::{
    run_closed_loop, run_open_loop, FunctionStats, Gateway, GatewayError, LoadRunResult,
    OpenLoopResult, Outcome,
};
pub use invoke::{BatchHandler, Completion, HandlerError, Invocation, SingleRequest};
pub use load::{native_rates, table1_rates, ClosedLoopPacer, LoadLevel, OpenLoopPacer, UseCase};

#[cfg(test)]
mod proptests {
    use bf_model::{VirtualDuration, VirtualTime};
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// The pacer never issues two requests closer than the pacing
        /// interval when responses are instant, and never issues before
        /// the previous completion.
        #[test]
        fn pacer_invariants(
            rate in 1.0f64..200.0,
            latencies_ms in proptest::collection::vec(0.0f64..100.0, 1..100),
        ) {
            let mut pacer = ClosedLoopPacer::new(rate, VirtualTime::ZERO);
            let mut issue = pacer.first_issue();
            let mut prev_issue = issue;
            let mut first = true;
            for lat in latencies_ms {
                let done = issue + VirtualDuration::from_millis_f64(lat);
                issue = pacer.next_issue(done);
                prop_assert!(issue >= done, "issued before completion");
                if !first {
                    let gap = issue - prev_issue;
                    prop_assert!(
                        gap.as_secs_f64() >= (1.0 / rate) - 1e-6 || issue == done,
                        "gap {gap} under interval without backpressure"
                    );
                }
                first = false;
                prev_issue = issue;
            }
        }

        /// Random interleavings of arrivals and deadline-driven drains
        /// never lose or duplicate an invocation, never produce a batch
        /// over `max_batch_size`, and only flush partial batches at or
        /// after the oldest member's deadline.
        #[test]
        fn batcher_flush_boundaries_hold_under_interleaving(
            max_batch in 1usize..6,
            max_wait_ms in 0u64..20,
            // (arrival gap ms, drain?) script
            script in proptest::collection::vec((0u64..15, any::<bool>()), 1..60),
        ) {
            let batcher = Batcher::new()
                .with_max_batch_size(max_batch)
                .with_max_wait(VirtualDuration::from_millis(max_wait_ms))
                .with_queue_capacity(1024);
            let mut now = VirtualTime::ZERO;
            let mut submitted = 0u64;
            let mut drained = 0u64;
            let mut tickets = std::collections::BTreeSet::new();
            for (gap_ms, drain) in script {
                now = now + VirtualDuration::from_millis(gap_ms);
                if drain {
                    if let Some(batch) = batcher.drain_due(now) {
                        prop_assert!(batch.len() <= max_batch, "oversized batch");
                        let oldest = batch.invocations()[0].issued_at;
                        prop_assert!(
                            batch.len() == max_batch
                                || now >= oldest + VirtualDuration::from_millis(max_wait_ms),
                            "partial batch drained before its deadline"
                        );
                        drained += batch.len() as u64;
                        for ticket in batch.tickets() {
                            prop_assert!(tickets.insert(*ticket), "duplicate ticket");
                        }
                    }
                } else {
                    let ticket = batcher.submit(Invocation::at(now));
                    prop_assert!(ticket.is_ok(), "capacity 1024 never sheds here");
                    submitted += 1;
                }
            }
            while let Some(batch) = batcher.drain_now() {
                drained += batch.len() as u64;
                for ticket in batch.tickets() {
                    prop_assert!(tickets.insert(*ticket), "duplicate ticket");
                }
            }
            prop_assert_eq!(submitted, drained, "lost or invented invocations");
        }

        /// Under saturation (latency >> interval) the achieved rate is
        /// ~1/latency.
        #[test]
        fn saturated_loop_caps_at_inverse_latency(rate in 50.0f64..100.0) {
            let latency = VirtualDuration::from_millis(100); // 10 rq/s max
            let mut pacer = ClosedLoopPacer::new(rate, VirtualTime::ZERO);
            let mut issue = pacer.first_issue();
            let n = 50;
            for _ in 0..n {
                let done = issue + latency;
                issue = pacer.next_issue(done);
            }
            let achieved = n as f64 / (issue - VirtualTime::ZERO).as_secs_f64();
            prop_assert!((achieved - 10.0).abs() < 0.5, "achieved {achieved}");
        }
    }
}
