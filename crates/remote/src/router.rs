//! The Remote Library's central router: keeps the list of available
//! platforms (Device Managers) and opens connections on demand
//! (paper §III-A).

use std::sync::Arc;

use bf_devmgr::DeviceManager;
use bf_model::VirtualClock;
use bf_ocl::{ClError, ClResult, Device, Platform};
use bf_rpc::PathCosts;

use crate::backend::RemoteBackend;

/// Keeps the addresses (in this reproduction: handles) of the Device
/// Managers a client may use, and builds [`Platform`]s of remote devices.
#[derive(Debug, Clone, Default)]
pub struct Router {
    managers: Vec<DeviceManager>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a Device Manager (one per `DEVICE_MANAGER_ADDRESSES` entry
    /// in the real system).
    pub fn add_manager(&mut self, manager: DeviceManager) -> &mut Self {
        self.managers.push(manager);
        self
    }

    /// The registered managers.
    pub fn managers(&self) -> &[DeviceManager] {
        &self.managers
    }

    /// Number of reachable devices.
    pub fn len(&self) -> usize {
        self.managers.len()
    }

    /// Whether no manager is registered.
    pub fn is_empty(&self) -> bool {
        self.managers.is_empty()
    }

    /// Connects `client_name` to the `index`-th manager, producing an
    /// OpenCL [`Device`] whose backend is the Remote Library.
    ///
    /// # Errors
    ///
    /// Returns [`ClError::DeviceNotFound`] for an out-of-range index, or a
    /// transport failure if the manager is unreachable.
    pub fn connect(
        &self,
        index: usize,
        client_name: &str,
        costs: PathCosts,
        clock: VirtualClock,
    ) -> ClResult<Device> {
        let manager = self.managers.get(index).ok_or(ClError::DeviceNotFound)?;
        let endpoint = manager.connect(client_name, costs);
        let backend = RemoteBackend::connect(endpoint, clock)?;
        Ok(Device::new(Arc::new(backend)))
    }

    /// Builds a [`Platform`] exposing every registered manager as a device,
    /// all sharing `clock` (one client application = one host timeline).
    ///
    /// # Errors
    ///
    /// Fails if any manager is unreachable.
    pub fn platform(
        &self,
        client_name: &str,
        costs: PathCosts,
        clock: VirtualClock,
    ) -> ClResult<Platform> {
        let mut devices = Vec::with_capacity(self.managers.len());
        for i in 0..self.managers.len() {
            devices.push(self.connect(i, client_name, costs, clock.clone())?);
        }
        Ok(Platform::new("BlastFunction Remote OpenCL", devices))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bf_devmgr::DeviceManagerConfig;
    use bf_fpga::{Board, BoardSpec};
    use bf_model::{node_a, node_b, node_c};
    use bf_ocl::BitstreamCatalog;
    use parking_lot::Mutex;

    use super::*;

    #[test]
    fn platform_exposes_every_manager_as_a_device() {
        let mut router = Router::new();
        for node in [node_a(), node_b(), node_c()] {
            let id = format!("fpga-{}", node.id().as_str().to_lowercase());
            let board = Arc::new(Mutex::new(Board::new(BoardSpec::de5a_net(), *node.pcie())));
            router.add_manager(DeviceManager::new(
                DeviceManagerConfig::standalone(id),
                node,
                board,
                BitstreamCatalog::new(),
            ));
        }
        assert_eq!(router.len(), 3);
        let clock = VirtualClock::new();
        let platform = router
            .platform("multi-fn", PathCosts::local_grpc(), clock)
            .expect("all managers reachable");
        assert_eq!(platform.devices().len(), 3);
        let nodes: Vec<String> = platform
            .devices()
            .iter()
            .map(|d| d.info().node.to_string())
            .collect();
        assert_eq!(nodes, vec!["A", "B", "C"], "devices in registration order");
        assert!(platform.device(3).is_err(), "out-of-range index");
    }

    #[test]
    fn empty_router_finds_no_device() {
        let router = Router::new();
        assert!(router.is_empty());
        let err = router
            .connect(0, "f", PathCosts::local_grpc(), VirtualClock::new())
            .expect_err("no device");
        assert_eq!(err, ClError::DeviceNotFound);
    }
}
