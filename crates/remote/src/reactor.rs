//! The client-side reactor: one dispatcher thread multiplexing every
//! connection's completion stream.
//!
//! Replaces the old thread-per-connection puller. Each [`Connection`]
//! registers its completion-stream tap ([`FrameRx`]) here; the reactor
//! polls all taps through one [`Poller`] (round-robin fairness), decodes
//! each tagged response and dispatches it on the owning connection
//! (Fig. 2 steps 5–6).
//!
//! The reactor holds only a `Weak` reference to each connection, so a
//! dropped `Connection` is not kept alive by its own completion stream:
//! the client's request sender drops with it, the manager reaps the
//! session, the server side closes, and the closed stream is the readiness
//! edge that tells the reactor to forget the slot — shutdown is
//! event-driven end to end.
//!
//! [`Connection`]: crate::connection::Connection

use std::sync::{OnceLock, Weak};

use bf_rpc::{FrameRx, PollEvent, Poller, ResponseEnvelope, Token, Waker, WireDecode};
// bf-lint: allow(raw_sync): control-plane channel into the reactor loop;
// only try_recv'd after a modeled waker readiness edge
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};

use crate::connection::{self, ConnectionInner};

/// Frames handled per readiness event before the next round-robin scan, so
/// one chatty manager connection cannot starve the others.
const FRAME_BATCH: usize = 32;

pub(crate) enum Control {
    Register {
        frames: FrameRx,
        conn: Weak<ConnectionInner>,
    },
}

/// Handle to a completion-dispatching reactor thread.
///
/// Most callers use the process-wide instance via [`Connection::new`];
/// [`Reactor::new`] spawns a private one (tests, isolation).
///
/// [`Connection::new`]: crate::connection::Connection::new
#[derive(Clone)]
pub struct Reactor {
    control: Sender<Control>,
    waker: Waker,
}

impl Default for Reactor {
    fn default() -> Self {
        Reactor::new()
    }
}

impl Reactor {
    /// Spawns a dedicated reactor thread. The thread exits once every
    /// handle to this `Reactor` is dropped and no live connection remains.
    pub fn new() -> Reactor {
        let mut poller = Poller::new();
        let (wake_token, waker) = poller.add_waker();
        let (control, control_rx) = bounded(64);
        std::thread::Builder::new()
            .name("bf-remote-reactor".to_string())
            .spawn(move || reactor_thread(control_rx, poller, wake_token))
            // bf-lint: allow(panic): thread-spawn failure is OS resource
            // exhaustion — a client library without its reactor is dead.
            .expect("spawn remote reactor thread");
        Reactor { control, waker }
    }

    /// The process-wide reactor shared by default-constructed connections.
    pub fn global() -> &'static Reactor {
        static GLOBAL: OnceLock<Reactor> = OnceLock::new();
        GLOBAL.get_or_init(Reactor::new)
    }

    /// Adopts one connection's completion stream.
    pub(crate) fn register(&self, frames: FrameRx, conn: Weak<ConnectionInner>) {
        if self
            .control
            .send(Control::Register { frames, conn })
            .is_ok()
        {
            self.waker.wake();
        }
        // A dead reactor thread (impossible while this handle exists, since
        // it only exits once control disconnects) would leave responses
        // unpulled; sends surface that through sync-call channel errors.
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor").finish_non_exhaustive()
    }
}

// bf-flow: entry(remote_reactor)
fn reactor_thread(control_rx: Receiver<Control>, mut poller: Poller, wake_token: Token) {
    let mut conns: std::collections::HashMap<Token, (FrameRx, Weak<ConnectionInner>)> =
        std::collections::HashMap::new();
    let mut control_open = true;
    loop {
        if !control_open && conns.is_empty() {
            return;
        }
        match poller.poll(None) {
            PollEvent::TimedOut => {}
            PollEvent::Ready(token) if token == wake_token => loop {
                match control_rx.try_recv() {
                    Ok(Control::Register { frames, conn }) => {
                        let token = poller.register(frames.clone());
                        // bf-flow: allow(hot_alloc): one entry per live
                        // connection, forgotten when its stream closes —
                        // bounded by connection count, not by traffic
                        conns.insert(token, (frames, conn));
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        control_open = false;
                        poller.deregister(wake_token);
                        break;
                    }
                }
            },
            PollEvent::Ready(token) => {
                let mut dead = false;
                if let Some((frames, weak)) = conns.get(&token) {
                    for _ in 0..FRAME_BATCH {
                        match frames.try_recv_frame() {
                            Ok(Some(frame)) => match weak.upgrade() {
                                Some(inner) => {
                                    // Malformed frames are dropped; the
                                    // connection stays up.
                                    if let Ok(resp) = ResponseEnvelope::from_bytes(frame) {
                                        connection::handle_response(&inner, resp);
                                    }
                                }
                                None => {
                                    dead = true;
                                    break;
                                }
                            },
                            Ok(None) => break,
                            Err(_) => {
                                // Manager gone: fail outstanding operations
                                // on the connection, if anyone still holds
                                // it, and forget the slot.
                                if let Some(inner) = weak.upgrade() {
                                    connection::fail_pending(&inner);
                                }
                                dead = true;
                                break;
                            }
                        }
                    }
                }
                if dead {
                    poller.deregister(token);
                    conns.remove(&token);
                }
            }
        }
    }
}
