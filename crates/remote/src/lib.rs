#![forbid(unsafe_code)]

//! # bf-remote — the BlastFunction Remote OpenCL Library
//!
//! A drop-in implementation of the `bf-ocl` [`Backend`] that transparently
//! remotes every OpenCL call to a Device Manager (paper §III-A):
//!
//! * the [`Router`] keeps the list of available platforms (managers) and
//!   opens connections;
//! * a shared [`Reactor`] thread multiplexes every connection's bounded
//!   completion stream through one poller, pulling tagged responses and
//!   retrieving the matching event;
//! * every asynchronous call is tracked by a Fig. 2 [`OpStateMachine`]
//!   (`INIT → FIRST → BUFFER → COMPLETE`) that updates the OpenCL event
//!   status as it advances, so `clWaitForEvents`-style polling works
//!   exactly as the specification says;
//! * bulk data takes the shared-memory path (single copy) when the session
//!   was granted a segment, and the gRPC path (serialization + extra
//!   copies) otherwise.
//!
//! The headline property — *transparency* — is testable: the doc-test and
//! integration tests run identical host code against a [`NativeBackend`]
//! and a [`RemoteBackend`] and obtain identical outputs.
//!
//! [`Backend`]: bf_ocl::Backend
//! [`NativeBackend`]: bf_ocl::NativeBackend

mod backend;
mod connection;
mod reactor;
mod router;
mod state_machine;

/// The bf-sync facade (re-exported from `bf-race`): synchronization in
/// this crate goes through it so the connection and reactor can run under
/// the deterministic model scheduler (`bf-race --features model`).
pub use bf_race::sync;

pub use backend::RemoteBackend;
pub use connection::{map_error, sync_rtt, Connection};
pub use reactor::Reactor;
pub use router::Router;
pub use state_machine::{MachineState, OpStateMachine};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use bf_devmgr::{DeviceManager, DeviceManagerConfig};
    use bf_fpga::{
        Bitstream, Board, BoardSpec, DeviceMemory, FnKernel, KernelDescriptor, KernelInvocation,
        Payload,
    };
    use bf_model::{node_b, PcieGeneration, PcieLink, VirtualClock, VirtualDuration};
    use bf_ocl::{BitstreamCatalog, Device, EventStatus, NativeBackend, NdRange};
    use bf_rpc::PathCosts;
    use parking_lot::Mutex;

    use super::*;

    fn catalog() -> BitstreamCatalog {
        let scale = FnKernel::new(
            |_inv: &KernelInvocation| VirtualDuration::from_micros(200),
            |inv: &KernelInvocation, mem: &mut DeviceMemory| {
                let buf = inv.arg(0)?.as_buffer()?;
                let factor = inv.arg(1)?.as_u32()? as u8;
                for b in mem.bytes_mut(buf)? {
                    *b = b.wrapping_mul(factor);
                }
                Ok(())
            },
        );
        let mut cat = BitstreamCatalog::new();
        cat.register(Arc::new(Bitstream::new(
            "scale",
            vec![KernelDescriptor::new("scale", Arc::new(scale))],
        )));
        cat
    }

    fn board() -> Arc<Mutex<Board>> {
        Arc::new(Mutex::new(Board::new(
            BoardSpec::de5a_net(),
            PcieLink::new(PcieGeneration::Gen3, 8),
        )))
    }

    fn manager() -> DeviceManager {
        DeviceManager::new(
            DeviceManagerConfig::standalone("fpga-b"),
            node_b(),
            board(),
            catalog(),
        )
    }

    /// The host program used by the transparency tests: identical code for
    /// every backend, exactly the paper's "no code rewriting" claim.
    fn host_program(device: &Device, input: &[u8]) -> Vec<u8> {
        let ctx = device.create_context().expect("context");
        let program = ctx.build_program("scale").expect("program");
        let kernel = program.create_kernel("scale").expect("kernel");
        let buf = ctx.create_buffer(input.len() as u64).expect("buffer");
        let queue = ctx.create_queue().expect("queue");
        queue.write(&buf, input.to_vec()).expect("write");
        kernel.set_arg_buffer(0, &buf).expect("arg 0");
        kernel.set_arg(1, bf_ocl::ArgValue::U32(3)).expect("arg 1");
        queue
            .launch(&kernel, NdRange::d1(input.len() as u64))
            .expect("launch");
        queue.finish().expect("finish");
        queue.read_vec(&buf).expect("read")
    }

    #[test]
    fn remote_execution_matches_native_bit_for_bit() {
        let input: Vec<u8> = (0..=255).collect();
        let expected: Vec<u8> = input.iter().map(|b| b.wrapping_mul(3)).collect();

        let native = Device::new(Arc::new(NativeBackend::new(
            node_b(),
            board(),
            catalog(),
            VirtualClock::new(),
            "native",
        )));
        assert_eq!(host_program(&native, &input), expected);

        let mut router = Router::new();
        router.add_manager(manager());
        for costs in [PathCosts::local_shm(), PathCosts::local_grpc()] {
            let device = router
                .connect(0, "remote-fn", costs, VirtualClock::new())
                .expect("connect");
            assert_eq!(host_program(&device, &input), expected, "costs {costs:?}");
        }
    }

    #[test]
    fn remote_adds_control_overhead_over_native() {
        let input = vec![1u8; 1 << 20];

        let native_clock = VirtualClock::new();
        let native = Device::new(Arc::new(NativeBackend::new(
            node_b(),
            board(),
            catalog(),
            native_clock.clone(),
            "native",
        )));
        host_program(&native, &input);
        let native_t = native_clock.now();

        let mut router = Router::new();
        router.add_manager(manager());
        let shm_clock = VirtualClock::new();
        let device = router
            .connect(0, "remote-fn", PathCosts::local_shm(), shm_clock.clone())
            .expect("connect");
        host_program(&device, &input);
        let shm_t = shm_clock.now();

        let mut router2 = Router::new();
        router2.add_manager(manager());
        let grpc_clock = VirtualClock::new();
        let device = router2
            .connect(0, "remote-fn", PathCosts::local_grpc(), grpc_clock.clone())
            .expect("connect");
        host_program(&device, &input);
        let grpc_t = grpc_clock.now();

        assert!(
            shm_t > native_t,
            "shm {shm_t} must exceed native {native_t}"
        );
        assert!(grpc_t > shm_t, "grpc {grpc_t} must exceed shm {shm_t}");
    }

    #[test]
    fn async_events_progress_through_statuses() {
        let mut router = Router::new();
        router.add_manager(manager());
        let device = router
            .connect(0, "remote-fn", PathCosts::local_shm(), VirtualClock::new())
            .expect("connect");
        let ctx = device.create_context().expect("ctx");
        let _prog = ctx.build_program("scale").expect("program");
        let buf = ctx.create_buffer(1 << 16).expect("buffer");
        let queue = ctx.create_queue().expect("queue");
        let ev = queue
            .write_async(&buf, 0, Payload::Synthetic(1 << 16))
            .expect("enqueue");
        queue.flush().expect("flush");
        ev.wait().expect("wait");
        assert_eq!(ev.status(), EventStatus::Complete);
        let profile = ev.profile();
        assert!(profile.ended >= profile.started);
        assert!(
            ev.observed_at() >= profile.ended,
            "observed adds the return hop"
        );
    }

    #[test]
    fn errors_surface_through_events_and_calls() {
        let mut router = Router::new();
        router.add_manager(manager());
        let device = router
            .connect(0, "remote-fn", PathCosts::local_grpc(), VirtualClock::new())
            .expect("connect");
        let ctx = device.create_context().expect("ctx");
        assert!(ctx.build_program("missing-bitstream").is_err());
        let buf = ctx.create_buffer(16).expect("buffer");
        let queue = ctx.create_queue().expect("queue");
        // Out-of-bounds write fails asynchronously via the event.
        let ev = queue
            .write_async(&buf, 8, vec![0u8; 16])
            .expect("enqueue accepted");
        queue.flush().expect("flush");
        assert!(ev.wait().is_err());
        assert_eq!(ev.status(), EventStatus::Failed);
    }

    #[test]
    fn shm_connection_actually_uses_the_segment() {
        let mgr = manager();
        let mut router = Router::new();
        router.add_manager(mgr);
        let device = router
            .connect(0, "remote-fn", PathCosts::local_shm(), VirtualClock::new())
            .expect("connect");
        host_program(&device, &[7u8; 4096]);
        // After a full round trip every staged region must be freed again.
        let backend = device.backend();
        let _ = backend; // segment introspection is internal; absence of leaks is
                         // covered by repeated runs below not exhausting the segment
        for _ in 0..8 {
            host_program(&device, &[9u8; 4096]);
        }
    }

    #[test]
    fn markers_and_barriers_fence_the_queue() {
        let mut router = Router::new();
        router.add_manager(manager());
        let clock = VirtualClock::new();
        let device = router
            .connect(0, "remote-fn", PathCosts::local_shm(), clock.clone())
            .expect("connect");
        let ctx = device.create_context().expect("ctx");
        let _prog = ctx.build_program("scale").expect("program");
        let buf = ctx.create_buffer(1 << 20).expect("buffer");
        let queue = ctx.create_queue().expect("queue");
        let w = queue
            .write_async(&buf, 0, Payload::Synthetic(1 << 20))
            .expect("write");
        // The barrier seals the open task (clEnqueueBarrier as a task
        // boundary, paper §III-B) and completes after the write.
        let barrier = queue.enqueue_barrier().expect("barrier");
        barrier.wait().expect("barrier drained");
        assert_eq!(
            w.status(),
            EventStatus::Complete,
            "fence implies the write completed"
        );
        assert!(
            barrier.observed_at() >= w.observed_at(),
            "barrier completes at or after the write"
        );
        // A marker on an idle queue completes quickly.
        let marker = queue.enqueue_marker().expect("marker");
        marker.wait().expect("marker");
    }

    #[test]
    fn completion_callbacks_fire_from_the_connection_thread() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let mut router = Router::new();
        router.add_manager(manager());
        let device = router
            .connect(0, "remote-fn", PathCosts::local_shm(), VirtualClock::new())
            .expect("connect");
        let ctx = device.create_context().expect("ctx");
        let _prog = ctx.build_program("scale").expect("program");
        let buf = ctx.create_buffer(1 << 10).expect("buffer");
        let queue = ctx.create_queue().expect("queue");
        let fired = Arc::new(AtomicU64::new(0));
        let ev = queue
            .write_async(&buf, 0, Payload::Synthetic(1 << 10))
            .expect("write");
        let f = fired.clone();
        ev.on_complete(move |status| {
            assert_eq!(status, EventStatus::Complete);
            f.fetch_add(1, Ordering::SeqCst);
        });
        queue.finish().expect("finish");
        ev.wait().expect("wait");
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn multiple_parallel_command_queues_per_client() {
        // PipeCNN "calls several kernels iteratively with multiple parallel
        // command queues": two queues in one session must work and their
        // tasks must both execute (FIFO-serialized on the board).
        let mut router = Router::new();
        router.add_manager(manager());
        let device = router
            .connect(0, "remote-fn", PathCosts::local_shm(), VirtualClock::new())
            .expect("connect");
        let ctx = device.create_context().expect("ctx");
        let program = ctx.build_program("scale").expect("program");
        let kernel = program.create_kernel("scale").expect("kernel");
        let buf_a = ctx.create_buffer(64).expect("a");
        let buf_b = ctx.create_buffer(64).expect("b");
        let q1 = ctx.create_queue().expect("q1");
        let q2 = ctx.create_queue().expect("q2");
        q1.write(&buf_a, vec![2u8; 64]).expect("write a");
        q2.write(&buf_b, vec![5u8; 64]).expect("write b");
        kernel.set_arg_buffer(0, &buf_a).expect("arg");
        kernel.set_arg(1, bf_ocl::ArgValue::U32(3)).expect("arg");
        q1.launch(&kernel, NdRange::d1(64)).expect("launch a");
        q1.finish().expect("finish q1");
        assert_eq!(q1.read_vec(&buf_a).expect("read a"), vec![6u8; 64]);
        // Queue 2's buffer is untouched by queue 1's kernel.
        assert_eq!(q2.read_vec(&buf_b).expect("read b"), vec![5u8; 64]);
    }

    #[test]
    fn pipelined_ops_share_one_control_round_trip() {
        // Async write + kernel + read, one finish: the control overhead is
        // ~1 hop at entry and ~1 at exit, not 2 per operation — the shape
        // behind Fig. 4(b)'s constant ~2 ms gap.
        let mut router = Router::new();
        router.add_manager(manager());
        let clock = VirtualClock::new();
        let device = router
            .connect(0, "remote-fn", PathCosts::local_shm(), clock.clone())
            .expect("connect");
        let ctx = device.create_context().expect("ctx");
        let program = ctx.build_program("scale").expect("program");
        let kernel = program.create_kernel("scale").expect("kernel");
        let buf = ctx.create_buffer(64).expect("buffer");
        let queue = ctx.create_queue().expect("queue");

        let t0 = clock.now();
        let _w = queue.write_async(&buf, 0, vec![1u8; 64]).expect("write");
        kernel.set_arg_buffer(0, &buf).expect("arg 0");
        kernel.set_arg(1, bf_ocl::ArgValue::U32(2)).expect("arg 1");
        let _k = queue.launch(&kernel, NdRange::d1(64)).expect("kernel");
        let _r = queue.read_async(&buf, 0, 64).expect("read");
        queue.finish().expect("finish");
        let elapsed = clock.now() - t0;
        // Device time here is ~0.4 ms (two tiny DMAs + 200 us kernel); the
        // overhead budget leaves well under 4 control hops (2 ms).
        assert!(
            elapsed < VirtualDuration::from_millis_f64(3.0),
            "pipelined round trip took {elapsed}"
        );
    }
}
