//! The Remote OpenCL Library's [`Backend`] implementation — the transparent
//! layer that lets unmodified host code drive a shared remote board.

use crate::sync::Mutex;
use bf_cache::content_digest;
use bf_fpga::Payload;
use bf_model::{NodeId, VirtualClock, VirtualTime};
use bf_ocl::{
    ArgValue, Backend, ClError, ClResult, CommandType, ContextId, DeviceInfo, Event, KernelId,
    MemId, NdRange, ProgramId, QueueId,
};
use bf_rpc::{DataRef, ErrorCode, Request, Response, WireArg};

use crate::connection::{map_error, Connection};

/// OpenCL backend that remotes every call to a Device Manager over the
/// connection's gRPC-like channel, using the shared-memory data path when
/// granted.
///
/// Virtual-time behaviour mirrors the paper's measurements: synchronous
/// (context/information) methods cost one control round trip; asynchronous
/// command-queue methods are pipelined — the client pays payload staging
/// (serialization + copies, or the single shm copy) and observes
/// completions one control hop after the device finishes.
pub struct RemoteBackend {
    device_id: String,
    node: NodeId,
    conn: Connection,
    clock: VirtualClock,
    /// Client-side virtual instant when the last staged payload finished
    /// copying/serializing; keeps pipelined writes from time-travelling.
    staging_cursor: Mutex<VirtualTime>,
    device_info: Mutex<DeviceInfo>,
}

impl RemoteBackend {
    /// Connects to a manager endpoint and primes the device-info cache.
    ///
    /// # Errors
    ///
    /// Fails when the manager is unreachable.
    pub fn connect(endpoint: bf_devmgr::ManagerEndpoint, clock: VirtualClock) -> ClResult<Self> {
        let device_id = endpoint.device_id.clone();
        let node = endpoint.node.clone();
        let conn = Connection::new(endpoint);
        let (resp, observed) = conn.call(
            Request::Hello {
                client_name: String::new(),
                shm: conn.shm().is_some(),
            },
            clock.now(),
        )?;
        clock.advance_to(observed);
        let Response::Handle { .. } = resp else {
            return Err(ClError::TransportFailure(format!(
                "bad hello response: {resp:?}"
            )));
        };
        let backend = RemoteBackend {
            device_id,
            node: node.clone(),
            conn,
            clock,
            staging_cursor: Mutex::new(VirtualTime::ZERO),
            device_info: Mutex::new(DeviceInfo {
                name: String::new(),
                vendor: String::new(),
                platform: String::new(),
                memory_bytes: 0,
                node,
                bitstream: None,
            }),
        };
        backend.refresh_info()?;
        Ok(backend)
    }

    /// The manager's device id.
    pub fn device_id(&self) -> &str {
        &self.device_id
    }

    /// The underlying connection (for tests and instrumentation).
    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    fn refresh_info(&self) -> ClResult<()> {
        let (resp, observed) = self.conn.call(Request::GetDeviceInfo, self.clock.now())?;
        self.clock.advance_to(observed);
        if let Response::DeviceInfo {
            name,
            vendor,
            platform,
            memory_bytes,
            node,
            bitstream,
        } = resp
        {
            *self.device_info.lock() = DeviceInfo {
                name,
                vendor,
                platform,
                memory_bytes,
                node: NodeId::new(node),
                bitstream,
            };
            Ok(())
        } else {
            Err(ClError::TransportFailure(
                "bad device info response".to_string(),
            ))
        }
    }

    fn sync_handle(&self, body: Request) -> ClResult<u64> {
        let (resp, observed) = self.conn.call(body, self.clock.now())?;
        self.clock.advance_to(observed);
        match resp {
            Response::Handle { id } => Ok(id),
            other => Err(ClError::TransportFailure(format!(
                "expected handle, got {other:?}"
            ))),
        }
    }

    fn sync_ack(&self, body: Request) -> ClResult<()> {
        let (resp, observed) = self.conn.call(body, self.clock.now())?;
        self.clock.advance_to(observed);
        match resp {
            Response::Ack | Response::Handle { .. } => Ok(()),
            other => Err(ClError::TransportFailure(format!(
                "expected ack, got {other:?}"
            ))),
        }
    }

    /// Requests a board reconfiguration to `bitstream`, subject to the
    /// manager's [`ReconfigPolicy`] (in a full deployment the Accelerators
    /// Registry validates this, §III-C).
    ///
    /// # Errors
    ///
    /// Returns [`ClError::AccessDenied`] when the policy refuses.
    ///
    /// [`ReconfigPolicy`]: bf_devmgr::ReconfigPolicy
    pub fn reconfigure(&self, bitstream: &str) -> ClResult<()> {
        self.sync_ack(Request::Reconfigure {
            bitstream: bitstream.to_string(),
        })
    }

    /// Stages a write payload onto the data path: real bytes are copied
    /// into the shm segment (one copy) or shipped inline (gRPC); the
    /// staging cursor advances by the payload cost either way. Returns the
    /// wire reference, the shm region to free on completion, and the
    /// instant the payload is ready to send.
    fn stage_payload(&self, payload: Payload) -> ClResult<(DataRef, Option<u64>, VirtualTime)> {
        let len = payload.len();
        let mut cursor = self.staging_cursor.lock();
        let start = self.clock.now().max(*cursor);
        let ready = start + self.conn.costs().outbound_payload_cost(len);
        *cursor = ready;
        drop(cursor);

        let (data, region) = match (self.conn.shm(), payload) {
            (Some(shm), Payload::Data(bytes)) => match shm.alloc(len) {
                Ok(offset) => {
                    // Adopt the client's refcounted buffer into the
                    // region — no copy on the shm path.
                    shm.write_bytes(offset, bytes)
                        .map_err(|e| ClError::TransportFailure(e.to_string()))?;
                    (DataRef::Shm { offset, len }, Some(offset))
                }
                // Segment exhausted: degrade to the inline path.
                Err(_) => (DataRef::Inline(bytes.into()), None),
            },
            (_, Payload::Data(bytes)) => (DataRef::Inline(bytes.into()), None),
            (_, Payload::Synthetic(n)) => (DataRef::Synthetic(n), None),
        };
        Ok((data, region, ready))
    }

    fn pipeline_now(&self) -> VirtualTime {
        self.clock.now().max(*self.staging_cursor.lock())
    }

    /// Attempts an `EnqueueWrite` carrying only the payload's digest and
    /// blocks for the manager's verdict: `Enqueued` confirms the cache
    /// hit, `CacheMiss` asks for an inline resend. Waiting here (one
    /// control hop) keeps queue order — nothing else can slip between the
    /// digest attempt and its inline retry.
    ///
    /// # Errors
    ///
    /// Manager errors other than `CacheMiss` fail the event and map to
    /// [`ClError`]; so does a vanished connection.
    fn try_digest_write(
        &self,
        queue: QueueId,
        buffer: MemId,
        offset: u64,
        digest: u128,
        len: u64,
        event: &Event,
    ) -> ClResult<DigestOutcome> {
        let sent = self.pipeline_now();
        let rx = self.conn.submit_op_acked(
            Request::EnqueueWrite {
                queue: queue.0,
                buffer: buffer.0,
                offset,
                data: DataRef::Digest { digest, len },
            },
            sent,
            event.clone(),
        )?;
        match rx.recv() {
            Ok(Ok(observed)) => Ok(DigestOutcome::Hit(observed)),
            Ok(Err((ErrorCode::CacheMiss, _))) => Ok(DigestOutcome::Miss),
            Ok(Err((code, message))) => {
                let err = map_error(code, message);
                event.fail(err.clone());
                Err(err)
            }
            // The reactor already failed the event via `fail_pending`.
            Err(_) => Err(ClError::TransportFailure(
                "connection thread gone".to_string(),
            )),
        }
    }
}

/// Verdict of a digest-addressed write attempt.
enum DigestOutcome {
    /// The manager held the content; the write is enqueued, observed at
    /// this client-side instant.
    Hit(VirtualTime),
    /// The manager no longer holds the content; resend inline.
    Miss,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("device_id", &self.device_id)
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

impl Backend for RemoteBackend {
    fn device_info(&self) -> DeviceInfo {
        let _ = self.refresh_info();
        self.device_info.lock().clone()
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn create_context(&self) -> ClResult<ContextId> {
        self.sync_handle(Request::CreateContext).map(ContextId)
    }

    fn build_program(&self, _ctx: ContextId, bitstream: &str) -> ClResult<ProgramId> {
        self.sync_handle(Request::BuildProgram {
            bitstream: bitstream.to_string(),
        })
        .map(ProgramId)
    }

    fn create_kernel(&self, program: ProgramId, name: &str) -> ClResult<KernelId> {
        self.sync_handle(Request::CreateKernel {
            program: program.0,
            name: name.to_string(),
        })
        .map(KernelId)
    }

    fn set_kernel_arg(&self, kernel: KernelId, index: u32, arg: ArgValue) -> ClResult<()> {
        let wire = match arg {
            ArgValue::Buffer(mem) => WireArg::Buffer(mem.0),
            ArgValue::U32(v) => WireArg::U32(v),
            ArgValue::I32(v) => WireArg::I32(v),
            ArgValue::U64(v) => WireArg::U64(v),
            ArgValue::F32(v) => WireArg::F32(v),
        };
        // Fire-and-forget: channel FIFO guarantees the argument lands
        // before any subsequent launch; errors surface at launch time.
        self.conn.cast(
            Request::SetKernelArg {
                kernel: kernel.0,
                index,
                arg: wire,
            },
            self.clock.now(),
        )
    }

    fn create_buffer(&self, ctx: ContextId, len: u64) -> ClResult<MemId> {
        self.sync_handle(Request::CreateBuffer {
            context: ctx.0,
            len,
        })
        .map(MemId)
    }

    fn release_buffer(&self, buffer: MemId) -> ClResult<()> {
        // Fire-and-forget so dropping a Buffer never blocks (C-DTOR-BLOCK).
        self.conn.cast(
            Request::ReleaseBuffer { buffer: buffer.0 },
            self.clock.now(),
        )
    }

    fn create_queue(&self, ctx: ContextId) -> ClResult<QueueId> {
        self.sync_handle(Request::CreateQueue { context: ctx.0 })
            .map(QueueId)
    }

    fn enqueue_write(
        &self,
        queue: QueueId,
        buffer: MemId,
        offset: u64,
        payload: Payload,
        blocking: bool,
    ) -> ClResult<Event> {
        let event = Event::new(CommandType::WriteBuffer, self.clock.now());
        event.attach_clock(self.clock.clone());
        // Content addressing rides the inline (gRPC) data path: when the
        // manager advertises a payload cache and is believed to hold these
        // exact bytes, a 16-byte (truncated SHA-256) digest reference
        // replaces the payload.
        let digest = match (self.conn.digest_tracker(), self.conn.shm(), &payload) {
            (Some(tracker), None, Payload::Data(bytes)) => {
                Some((tracker, content_digest(bytes), bytes.len() as u64))
            }
            _ => None,
        };
        if let Some((tracker, digest, len)) = digest {
            if tracker.holds(digest) {
                match self.try_digest_write(queue, buffer, offset, digest, len, &event)? {
                    DigestOutcome::Hit(observed) => {
                        // Zero payload bytes on the wire; the caller pays
                        // one control round trip instead of staging.
                        self.clock.advance_to(observed);
                        if blocking {
                            self.conn
                                .cast(Request::Flush { queue: queue.0 }, observed)?;
                            event.wait()?;
                        }
                        return Ok(event);
                    }
                    DigestOutcome::Miss => {
                        // Stale tracker entry — the manager evicted since
                        // we last sent. Degrade to one inline (re)send.
                        tracker.forget(digest);
                    }
                }
            }
        }
        let (data, region, ready) = self.stage_payload(payload)?;
        if let (Some((tracker, digest, _)), DataRef::Inline(_)) = (digest, &data) {
            // The manager admits inline payloads at staging time, so the
            // next identical write can travel as a digest.
            // bf-taint: allow(taint_auth): `digest` is recomputed locally
            // from the payload bytes (content_digest above); the pattern
            // binding inherits the tuple's taint only because the
            // analysis binds destructured names coarsely.
            tracker.note_sent(digest);
        }
        self.conn.submit_op(
            Request::EnqueueWrite {
                queue: queue.0,
                buffer: buffer.0,
                offset,
                data,
            },
            ready,
            event.clone(),
            region,
            None,
        )?;
        if blocking {
            self.conn.cast(Request::Flush { queue: queue.0 }, ready)?;
            event.wait()?;
        }
        Ok(event)
    }

    fn enqueue_read(
        &self,
        queue: QueueId,
        buffer: MemId,
        offset: u64,
        len: u64,
        blocking: bool,
    ) -> ClResult<Event> {
        let event = Event::new(CommandType::ReadBuffer, self.clock.now());
        event.attach_clock(self.clock.clone());
        let sent = self.pipeline_now();
        self.conn.submit_op(
            Request::EnqueueRead {
                queue: queue.0,
                buffer: buffer.0,
                offset,
                len,
            },
            sent,
            event.clone(),
            None,
            Some(len),
        )?;
        if blocking {
            self.conn.cast(Request::Flush { queue: queue.0 }, sent)?;
            event.wait()?;
        }
        Ok(event)
    }

    fn enqueue_kernel(&self, queue: QueueId, kernel: KernelId, work: NdRange) -> ClResult<Event> {
        let event = Event::new(CommandType::NdRangeKernel, self.clock.now());
        event.attach_clock(self.clock.clone());
        let sent = self.pipeline_now();
        self.conn.submit_op(
            Request::EnqueueKernel {
                queue: queue.0,
                kernel: kernel.0,
                work: work.0,
            },
            sent,
            event.clone(),
            None,
            None,
        )?;
        Ok(event)
    }

    fn enqueue_copy(
        &self,
        queue: QueueId,
        src: MemId,
        dst: MemId,
        src_offset: u64,
        dst_offset: u64,
        len: u64,
    ) -> ClResult<Event> {
        let event = Event::new(CommandType::CopyBuffer, self.clock.now());
        event.attach_clock(self.clock.clone());
        let sent = self.pipeline_now();
        self.conn.submit_op(
            Request::EnqueueCopy {
                queue: queue.0,
                src: src.0,
                dst: dst.0,
                src_offset,
                dst_offset,
                len,
            },
            sent,
            event.clone(),
            None,
            None,
        )?;
        Ok(event)
    }

    fn enqueue_marker(&self, queue: QueueId) -> ClResult<Event> {
        // A non-blocking fence: the manager answers the tag once the
        // sealed task (and everything before it in the central queue) has
        // drained.
        let event = Event::new(CommandType::Marker, self.clock.now());
        event.attach_clock(self.clock.clone());
        let sent = self.pipeline_now();
        self.conn.submit_op(
            Request::Finish { queue: queue.0 },
            sent,
            event.clone(),
            None,
            None,
        )?;
        Ok(event)
    }

    fn enqueue_barrier(&self, queue: QueueId) -> ClResult<Event> {
        // The paper lists clEnqueueBarrier with clFinish/clFlush as a task
        // boundary: it seals the open task (the fence request does both).
        self.enqueue_marker(queue)
    }

    fn flush(&self, queue: QueueId) -> ClResult<()> {
        self.conn
            .cast(Request::Flush { queue: queue.0 }, self.pipeline_now())
    }

    fn finish(&self, queue: QueueId) -> ClResult<()> {
        let observed = self.conn.fence(queue.0, self.pipeline_now())?;
        self.clock.advance_to(observed);
        Ok(())
    }
}
