//! The client-side connection: request sending and tag → event dispatch
//! (paper Fig. 2, steps 3–6). Completion pulling lives in the shared
//! [`Reactor`](crate::Reactor), which multiplexes every connection's
//! bounded completion stream on one dispatcher thread and calls back into
//! [`handle_response`] here.

use std::collections::HashMap;
use std::sync::Arc;

use bf_cache::DigestTracker;
use bf_fpga::Payload;
use bf_model::{VirtualDuration, VirtualTime};
use bf_ocl::{ClError, ClResult, Event};
use bf_rpc::{
    ClientId, DataRef, ErrorCode, PathCosts, Request, RequestEnvelope, Response, ResponseEnvelope,
    ShmSegment,
};
// bf-lint: allow(raw_sync): one-shot rendezvous channels pairing a blocked
// sync caller with its response; created fresh per call, never contended
use crossbeam::channel::{bounded, Receiver, Sender};

use crate::reactor::Reactor;
use crate::state_machine::OpStateMachine;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;

/// Digests remembered per connection. Deliberately generous next to a
/// manager cache's typical entry count: a stale tracker entry costs one
/// `CacheMiss` round trip, a forgotten one costs a full payload send.
const TRACKER_ENTRIES: usize = 1024;

/// What the connection thread should do with a tagged response.
enum Pending {
    /// Forward the first response to a blocked caller (sync methods).
    Sync(Sender<ResponseEnvelope>),
    /// Forward the first `Completed`/`Error`, swallowing the `Enqueued`
    /// submission ack (`Finish` fences).
    Fence(Sender<ResponseEnvelope>),
    /// Drive an asynchronous operation's state machine and OpenCL event.
    Op(Box<OpPending>),
    /// Drop the response (fire-and-forget `Flush` acks).
    Discard,
}

struct OpPending {
    event: Event,
    machine: OpStateMachine,
    /// Shm region to release once the manager consumed a write payload.
    write_region: Option<u64>,
    /// Expected read length (reads only), for cost accounting.
    read_len: Option<u64>,
    /// One-shot verdict channel for acked submissions ([`Connection::
    /// submit_op_acked`]): `Ok(observed)` on `Enqueued`, the error pair on
    /// a NACK. While armed, a manager error is *not* applied to the event
    /// — the blocked submitter decides (e.g. resend inline after a
    /// `CacheMiss`).
    ack: Option<Sender<AckVerdict>>,
}

/// First-response verdict of an acked submission.
pub(crate) type AckVerdict = Result<VirtualTime, (ErrorCode, String)>;

pub(crate) struct ConnectionInner {
    client: ClientId,
    channel: bf_rpc::ClientChannel,
    costs: PathCosts,
    shm: Option<ShmSegment>,
    pending: Mutex<HashMap<u64, Pending>>,
    next_tag: AtomicU64,
    /// Digests the manager's payload cache is believed to hold; present
    /// only when the endpoint advertised a cache.
    tracker: Option<DigestTracker>,
}

/// A live connection to one Device Manager.
///
/// Cloning shares the connection. The shared [`Reactor`] pulls tagged
/// responses from the completion stream and either wakes a blocked
/// synchronous caller or advances the matching operation's state machine
/// and OpenCL event.
#[derive(Clone)]
pub struct Connection {
    inner: Arc<ConnectionInner>,
}

impl Connection {
    /// Wraps an endpoint handed out by
    /// [`bf_devmgr::DeviceManager::connect`], registering its completion
    /// stream with the process-wide [`Reactor`].
    pub fn new(endpoint: bf_devmgr::ManagerEndpoint) -> Self {
        Self::with_reactor(Reactor::global(), endpoint)
    }

    /// Like [`Connection::new`] with an explicit reactor (tests,
    /// isolation).
    pub fn with_reactor(reactor: &Reactor, endpoint: bf_devmgr::ManagerEndpoint) -> Self {
        let inner = Arc::new(ConnectionInner {
            client: endpoint.client,
            channel: endpoint.channel,
            costs: endpoint.costs,
            shm: endpoint.shm,
            pending: Mutex::new(HashMap::new()),
            next_tag: AtomicU64::new(1),
            tracker: endpoint.cache.then(|| DigestTracker::new(TRACKER_ENTRIES)),
        });
        // The reactor gets a non-owning tap plus a Weak backref, so this
        // connection's lifetime stays with its callers: dropping the last
        // handle drops the request sender, which is what tells the manager
        // to reap the session.
        reactor.register(inner.channel.completions(), Arc::downgrade(&inner));
        Connection { inner }
    }

    /// The session id on the manager.
    pub fn client(&self) -> ClientId {
        self.inner.client
    }

    /// This connection's cost profile.
    pub fn costs(&self) -> &PathCosts {
        &self.inner.costs
    }

    /// The shared-memory segment, when granted.
    pub fn shm(&self) -> Option<&ShmSegment> {
        self.inner.shm.as_ref()
    }

    /// The digest tracker, when the manager advertised a payload cache.
    pub fn digest_tracker(&self) -> Option<&DigestTracker> {
        self.inner.tracker.as_ref()
    }

    fn fresh_tag(&self) -> u64 {
        self.inner.next_tag.fetch_add(1, Ordering::SeqCst)
    }

    /// Sends a synchronous (context/information) request and blocks for its
    /// response. Returns the response body and the virtual instant the
    /// client observes it (manager completion + return hop).
    ///
    /// # Errors
    ///
    /// Transport failures and manager-side errors map to [`ClError`].
    pub fn call(&self, body: Request, sent_at: VirtualTime) -> ClResult<(Response, VirtualTime)> {
        let tag = self.fresh_tag();
        let (tx, rx) = bounded(1);
        self.inner.pending.lock().insert(tag, Pending::Sync(tx));
        self.send(tag, body, sent_at)?;
        let resp = rx
            .recv()
            .map_err(|_| ClError::TransportFailure("connection thread gone".to_string()))?;
        let observed = resp.sent_at + self.inner.costs.control_hop();
        match resp.body {
            Response::Error { code, message } => Err(map_error(code, message)),
            body => Ok((body, observed)),
        }
    }

    /// Sends a `Finish` fence and blocks until the task drains. Returns the
    /// observed completion instant.
    ///
    /// # Errors
    ///
    /// Transport failures and manager-side errors map to [`ClError`].
    pub fn fence(&self, queue: u64, sent_at: VirtualTime) -> ClResult<VirtualTime> {
        let tag = self.fresh_tag();
        let (tx, rx) = bounded(1);
        self.inner.pending.lock().insert(tag, Pending::Fence(tx));
        self.send(tag, Request::Finish { queue }, sent_at)?;
        let resp = rx
            .recv()
            .map_err(|_| ClError::TransportFailure("connection thread gone".to_string()))?;
        let observed = resp.sent_at + self.inner.costs.control_hop();
        match resp.body {
            Response::Error { code, message } => Err(map_error(code, message)),
            _ => Ok(observed),
        }
    }

    /// Sends a fire-and-forget request (e.g. `Flush`) whose ack is dropped.
    ///
    /// # Errors
    ///
    /// Returns a transport failure if the manager is gone.
    pub fn cast(&self, body: Request, sent_at: VirtualTime) -> ClResult<()> {
        let tag = self.fresh_tag();
        self.inner.pending.lock().insert(tag, Pending::Discard);
        self.send(tag, body, sent_at)
    }

    /// Sends an asynchronous command-queue operation tracked by `event`.
    /// The connection thread drives the event through the Fig. 2 state
    /// machine as responses arrive.
    ///
    /// # Errors
    ///
    /// Returns a transport failure if the manager is gone.
    pub fn submit_op(
        &self,
        body: Request,
        sent_at: VirtualTime,
        event: Event,
        write_region: Option<u64>,
        read_len: Option<u64>,
    ) -> ClResult<()> {
        let tag = self.fresh_tag();
        let machine = OpStateMachine::new(event.command());
        self.inner.pending.lock().insert(
            tag,
            Pending::Op(Box::new(OpPending {
                event,
                machine,
                write_region,
                read_len,
                ack: None,
            })),
        );
        self.send(tag, body, sent_at)
    }

    /// Like [`submit_op`](Self::submit_op), but returns a one-shot
    /// receiver for the manager's first response: `Ok(observed_instant)`
    /// once the operation is `Enqueued`, or the NACK pair. While the ack
    /// is outstanding a manager error is handed to the receiver *instead
    /// of* the event, so the caller can retry (the `CacheMiss` inline
    /// resend) without the event ever observing a failure.
    ///
    /// # Errors
    ///
    /// Returns a transport failure if the manager is gone.
    pub(crate) fn submit_op_acked(
        &self,
        body: Request,
        sent_at: VirtualTime,
        event: Event,
    ) -> ClResult<Receiver<AckVerdict>> {
        let tag = self.fresh_tag();
        let machine = OpStateMachine::new(event.command());
        let (tx, rx) = bounded(1);
        self.inner.pending.lock().insert(
            tag,
            Pending::Op(Box::new(OpPending {
                event,
                machine,
                write_region: None,
                read_len: None,
                ack: Some(tx),
            })),
        );
        self.send(tag, body, sent_at)?;
        Ok(rx)
    }

    fn send(&self, tag: u64, body: Request, sent_at: VirtualTime) -> ClResult<()> {
        self.inner
            .channel
            .send(&RequestEnvelope {
                tag,
                client: self.inner.client,
                sent_at,
                body,
            })
            .map_err(|e| {
                self.inner.pending.lock().remove(&tag);
                ClError::TransportFailure(e.to_string())
            })
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("client", &self.inner.client)
            .field("pending", &self.inner.pending.lock().len())
            .finish()
    }
}

/// Dispatches one tagged response pulled by the reactor: retrieves the
/// corresponding event (Fig. 2 step 5), then advances its state machine
/// and OpenCL status (step 6).
pub(crate) fn handle_response(inner: &Arc<ConnectionInner>, resp: ResponseEnvelope) {
    let mut pending = inner.pending.lock();
    match pending.remove(&resp.tag) {
        None => {} // stale tag (already failed locally)
        Some(Pending::Discard) => {}
        Some(Pending::Sync(tx)) => {
            let _ = tx.send(resp);
        }
        Some(Pending::Fence(tx)) => match resp.body {
            Response::Enqueued | Response::Ack => {
                // bf-flow: allow(hot_alloc): re-insert of the entry removed
                // three lines up — no net growth of the pending map
                pending.insert(resp.tag, Pending::Fence(tx));
            }
            _ => {
                let _ = tx.send(resp);
            }
        },
        Some(Pending::Op(mut op)) => {
            let tag = resp.tag;
            let keep = advance_op(inner, &mut op, resp);
            if keep {
                // bf-flow: allow(hot_alloc): re-insert of the in-flight op
                // just removed under the same tag — no net growth
                pending.insert(tag, Pending::Op(op));
            }
        }
    }
}

/// Called by the reactor when the completion stream closes (manager gone):
/// fails every outstanding operation.
pub(crate) fn fail_pending(inner: &Arc<ConnectionInner>) {
    let mut pending = inner.pending.lock();
    for (_, entry) in pending.drain() {
        if let Pending::Op(op) = entry {
            op.event
                .fail(ClError::TransportFailure("connection closed".to_string()));
        }
    }
}

/// Applies one response to an in-flight operation. Returns whether the
/// entry should stay registered (i.e. more responses are expected).
fn advance_op(inner: &Arc<ConnectionInner>, op: &mut OpPending, resp: ResponseEnvelope) -> bool {
    match resp.body {
        Response::Enqueued => {
            op.machine.on_enqueued();
            // Submission instant at the manager, observed locally.
            op.event.mark_submitted(resp.sent_at);
            if let Some(ack) = op.ack.take() {
                let _ = ack.send(Ok(resp.sent_at + inner.costs.control_hop()));
            }
            true
        }
        Response::Completed {
            started_at,
            ended_at,
            data,
        } => {
            let mut observed = ended_at + inner.costs.control_hop();
            let payload = match data {
                None => None,
                Some(DataRef::Synthetic(len)) => {
                    op.machine.on_buffer();
                    observed += inner.costs.inbound_payload_cost(len);
                    Some(Payload::Synthetic(len))
                }
                Some(DataRef::Inline(bytes)) => {
                    op.machine.on_buffer();
                    observed += inner.costs.inbound_payload_cost(bytes.len() as u64);
                    // The payload moves through as a refcounted view of
                    // the response frame — no copy.
                    Some(Payload::Data(bytes.into_bytes()))
                }
                // Managers never answer reads with digest references.
                Some(DataRef::Digest { .. }) => {
                    op.machine.on_error();
                    op.event.fail(ClError::TransportFailure(
                        "manager sent a digest reference for a read".to_string(),
                    ));
                    return false;
                }
                Some(DataRef::Shm { offset, len }) => {
                    op.machine.on_buffer();
                    observed += inner.costs.inbound_payload_cost(len);
                    match inner.shm.as_ref() {
                        Some(shm) => match shm.read(offset, len) {
                            Ok(bytes) => {
                                let _ = shm.free(offset);
                                Some(Payload::Data(bytes))
                            }
                            Err(e) => {
                                op.machine.on_error();
                                op.event.fail(ClError::TransportFailure(e.to_string()));
                                return false;
                            }
                        },
                        None => {
                            op.machine.on_error();
                            op.event.fail(ClError::TransportFailure(
                                "manager sent shm data on a grpc connection".to_string(),
                            ));
                            return false;
                        }
                    }
                }
            };
            let _ = op.read_len;
            if let Some(region) = op.write_region.take() {
                if let Some(shm) = inner.shm.as_ref() {
                    let _ = shm.free(region);
                }
            }
            op.machine.on_completed();
            op.event
                .complete_at(started_at, ended_at, observed, payload);
            false
        }
        Response::Error { code, message } => {
            if let (Some(region), Some(shm)) = (op.write_region.take(), inner.shm.as_ref()) {
                let _ = shm.free(region);
            }
            if let Some(ack) = op.ack.take() {
                // The blocked submitter owns the verdict: a `CacheMiss`
                // turns into an inline resend on the same (untouched)
                // event rather than a failure.
                let _ = ack.send(Err((code, message)));
                return false;
            }
            op.machine.on_error();
            op.event.fail(map_error(code, message));
            false
        }
        // Control responses never target op tags.
        _ => true,
    }
}

/// Maps manager error codes onto OpenCL error classes.
pub fn map_error(code: ErrorCode, message: String) -> ClError {
    match code {
        ErrorCode::InvalidHandle => ClError::InvalidOperation(message),
        ErrorCode::AccessDenied => ClError::AccessDenied(message),
        ErrorCode::OutOfResources => ClError::OutOfResources(message),
        ErrorCode::OutOfBounds => ClError::OutOfBounds(message),
        ErrorCode::BuildFailure => ClError::BuildProgramFailure(message),
        ErrorCode::InvalidLaunch => ClError::InvalidKernelLaunch(message),
        ErrorCode::ReconfigurationRefused => ClError::AccessDenied(message),
        ErrorCode::Internal => ClError::TransportFailure(message),
        // A cache miss is normally consumed by the inline-resend path in
        // `handle_response`; one that leaks means the retry state was
        // already gone, which only a broken connection can cause.
        ErrorCode::CacheMiss => ClError::TransportFailure(message),
    }
}

/// Convenience: total control-plane round trip for a synchronous call on
/// `costs` (request hop + response hop).
pub fn sync_rtt(costs: &PathCosts) -> VirtualDuration {
    costs.control_hop() * 2
}
