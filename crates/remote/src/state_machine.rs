//! Per-operation event state machines (paper Fig. 2).
//!
//! Every asynchronous OpenCL call is tracked by a small state machine the
//! connection thread advances as tagged responses arrive:
//!
//! * **INIT** — the call metadata has been sent to the Device Manager;
//! * **FIRST** — the manager acknowledged the command entering the
//!   client's open task ([`bf_rpc::Response::Enqueued`]);
//! * **BUFFER** — bulk data is in flight (reads: the result payload is
//!   being copied out of the completion);
//! * **COMPLETE** — the operation finished; the OpenCL event status turns
//!   `Complete` and waiters are released.

use bf_ocl::CommandType;

/// The Fig. 2 states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MachineState {
    /// Call metadata sent.
    Init,
    /// Command accepted into the open task.
    First,
    /// Bulk data transfer step.
    Buffer,
    /// Terminal success.
    Complete,
    /// Terminal failure.
    Failed,
}

impl MachineState {
    /// Whether the machine has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, MachineState::Complete | MachineState::Failed)
    }
}

/// Every legal Fig. 2 transition, as `(from, to)` pairs.
///
/// Progress is strictly forward: `INIT` may be skipped past when responses
/// race on the wire (a completion can overtake the `Enqueued` ack), both
/// terminals absorb, and nothing ever returns to an earlier state.
/// Identity pairs are deliberately absent — a no-op must be filtered by
/// the caller, not recorded as a transition.
pub const LEGAL_TRANSITIONS: &[(MachineState, MachineState)] = &[
    (MachineState::Init, MachineState::First),
    (MachineState::Init, MachineState::Buffer),
    (MachineState::Init, MachineState::Complete),
    (MachineState::Init, MachineState::Failed),
    (MachineState::First, MachineState::Buffer),
    (MachineState::First, MachineState::Complete),
    (MachineState::First, MachineState::Failed),
    (MachineState::Buffer, MachineState::Complete),
    (MachineState::Buffer, MachineState::Failed),
];

/// Whether `from → to` appears in [`LEGAL_TRANSITIONS`].
pub fn is_legal_transition(from: MachineState, to: MachineState) -> bool {
    LEGAL_TRANSITIONS.contains(&(from, to))
}

/// One operation's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStateMachine {
    kind: CommandType,
    state: MachineState,
}

impl OpStateMachine {
    /// Creates a machine in `INIT` for the given command.
    pub fn new(kind: CommandType) -> Self {
        OpStateMachine {
            kind,
            state: MachineState::Init,
        }
    }

    /// The tracked command type.
    pub fn kind(&self) -> CommandType {
        self.kind
    }

    /// Current state.
    pub fn state(&self) -> MachineState {
        self.state
    }

    /// The manager acknowledged the command (`Enqueued`): INIT → FIRST.
    /// Late or duplicate acks are ignored.
    pub fn on_enqueued(&mut self) {
        if self.state == MachineState::Init {
            self.transition(MachineState::First);
        }
    }

    /// The operation completed. Reads pass through `BUFFER` (payload
    /// copy-out) before `COMPLETE`; other commands go straight to
    /// `COMPLETE`. Returns whether the transition was accepted.
    pub fn on_completed(&mut self) -> bool {
        if self.state.is_terminal() {
            return false;
        }
        self.transition(MachineState::Complete);
        true
    }

    /// The read payload is being copied out: FIRST/INIT → BUFFER.
    pub fn on_buffer(&mut self) {
        if !self.state.is_terminal() && self.state != MachineState::Buffer {
            self.transition(MachineState::Buffer);
        }
    }

    /// The operation failed. Returns whether the transition was accepted.
    pub fn on_error(&mut self) -> bool {
        if self.state.is_terminal() {
            return false;
        }
        self.transition(MachineState::Failed);
        true
    }

    /// Central transition funnel: every state change passes through here,
    /// so a debug build catches any advance not in [`LEGAL_TRANSITIONS`]
    /// the moment it happens.
    fn transition(&mut self, to: MachineState) {
        debug_assert!(
            is_legal_transition(self.state, to),
            "illegal Fig. 2 transition {:?} -> {to:?} for {:?}",
            self.state,
            self.kind,
        );
        self.state = to;
    }

    /// Test-only: drive the funnel with an arbitrary target state to
    /// exercise the debug assertion.
    #[cfg(test)]
    pub(crate) fn force_transition(&mut self, to: MachineState) {
        self.transition(to);
    }
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;

    use super::*;

    #[test]
    fn transition_table_is_a_strict_forward_order() {
        for &(from, to) in LEGAL_TRANSITIONS {
            assert!(
                !from.is_terminal(),
                "terminal {from:?} must absorb, not transition"
            );
            assert_ne!(from, to, "identity pairs are no-ops, not transitions");
        }
        // Nothing ever returns to Init, and terminals have no successors.
        for &to in &[
            MachineState::Init,
            MachineState::First,
            MachineState::Buffer,
            MachineState::Complete,
        ] {
            assert!(!is_legal_transition(MachineState::Complete, to));
            assert!(!is_legal_transition(MachineState::Failed, to));
            assert!(!is_legal_transition(to, MachineState::Init));
        }
        assert!(!is_legal_transition(
            MachineState::Buffer,
            MachineState::First
        ));
    }

    #[cfg(debug_assertions)]
    #[test]
    fn illegal_transition_panics_in_debug_builds() {
        let result = std::thread::Builder::new()
            .name("bf-illegal-transition".into())
            .spawn(|| {
                let mut m = OpStateMachine::new(CommandType::WriteBuffer);
                assert!(m.on_completed());
                // Complete is terminal: forcing a regression must trip the
                // debug assertion.
                m.force_transition(MachineState::First);
            })
            .expect("spawn probe thread")
            .join();
        assert!(
            result.is_err(),
            "regressing out of a terminal state must panic"
        );
    }

    proptest! {
        #[test]
        fn random_interleavings_never_produce_illegal_transitions(
            seq in proptest::collection::vec(0u8..4, 0..16),
        ) {
            // Whatever order acks, buffers, completions, and errors arrive
            // in, every observed state change is in LEGAL_TRANSITIONS.
            let mut m = OpStateMachine::new(CommandType::ReadBuffer);
            let mut prev = m.state();
            for step in seq {
                match step {
                    0 => m.on_enqueued(),
                    1 => m.on_buffer(),
                    2 => {
                        m.on_completed();
                    }
                    _ => {
                        m.on_error();
                    }
                }
                let state = m.state();
                prop_assert!(
                    state == prev || is_legal_transition(prev, state),
                    "illegal {prev:?} -> {state:?}",
                );
                prev = state;
            }
        }
    }

    #[test]
    fn write_lifecycle() {
        let mut m = OpStateMachine::new(CommandType::WriteBuffer);
        assert_eq!(m.state(), MachineState::Init);
        m.on_enqueued();
        assert_eq!(m.state(), MachineState::First);
        assert!(m.on_completed());
        assert_eq!(m.state(), MachineState::Complete);
        assert!(m.state().is_terminal());
    }

    #[test]
    fn read_passes_through_buffer() {
        let mut m = OpStateMachine::new(CommandType::ReadBuffer);
        m.on_enqueued();
        m.on_buffer();
        assert_eq!(m.state(), MachineState::Buffer);
        assert!(m.on_completed());
    }

    #[test]
    fn completion_without_ack_is_accepted() {
        // The Enqueued ack and the completion race on the wire; a machine
        // must tolerate the completion arriving first.
        let mut m = OpStateMachine::new(CommandType::NdRangeKernel);
        assert!(m.on_completed());
        m.on_enqueued(); // late ack ignored
        assert_eq!(m.state(), MachineState::Complete);
    }

    #[test]
    fn terminal_states_absorb_everything() {
        let mut m = OpStateMachine::new(CommandType::WriteBuffer);
        assert!(m.on_error());
        assert!(!m.on_completed());
        assert!(!m.on_error());
        m.on_buffer();
        assert_eq!(m.state(), MachineState::Failed);
    }

    #[test]
    fn machine_state_is_monotone_under_any_response_order() {
        // Exhaustive over all 4^5 transition sequences: the observed state
        // sequence never regresses and at most one terminal is reached.
        fn apply(m: &mut OpStateMachine, t: u8) {
            match t {
                0 => m.on_enqueued(),
                1 => m.on_buffer(),
                2 => {
                    m.on_completed();
                }
                _ => {
                    m.on_error();
                }
            }
        }
        fn rank(s: MachineState) -> u8 {
            match s {
                MachineState::Init => 0,
                MachineState::First => 1,
                MachineState::Buffer => 2,
                MachineState::Complete | MachineState::Failed => 3,
            }
        }
        for seq in 0..4u32.pow(5) {
            let mut m = OpStateMachine::new(CommandType::ReadBuffer);
            let mut prev = rank(m.state());
            let mut terminal: Option<MachineState> = None;
            for step in 0..5 {
                apply(&mut m, ((seq >> (2 * step)) & 3) as u8);
                let state = m.state();
                assert!(rank(state) >= prev, "regressed in seq {seq}");
                prev = rank(state);
                match (terminal, state.is_terminal()) {
                    (None, true) => terminal = Some(state),
                    (Some(t), true) => assert_eq!(t, state, "terminal flipped in seq {seq}"),
                    _ => {}
                }
            }
        }
    }
}
