//! Host-side datapath benchmark: bytes memcpy'd and wall-clock time per
//! EnqueueWrite → Read round trip.
//!
//! Unlike the Fig. 4 sweeps (virtual-time, `Payload::Synthetic`), this
//! benchmark pushes *real* bytes through the full client → codec →
//! transport → session → device → response chain and reports two numbers
//! per (size, transport) point:
//!
//! * `copied_bytes_per_rtt` — the deterministic sum of every host-side
//!   payload memcpy, reported by [`bf_metrics::copy_counters`]. This is
//!   the quantity the zero-copy payload path is meant to shrink, and it
//!   is stable across machines, so CI diffs it.
//! * `wall_ms_per_rtt` — host wall-clock per round trip. Noisy; recorded
//!   for the archived full-ladder run but excluded from CI comparison.
//!
//! The embedded [`baseline_copied_bytes`] table pins the pre-refactor
//! (`Vec<u8>`-everywhere) copy costs so every run shows its reduction
//! factor against the old datapath.

use serde::Serialize;

use crate::{fig4_device, human_bytes, System};
use bf_fpga::Payload;
use bf_ocl::ClResult;

/// The full 1 KB → 2 GB ladder (the Fig. 4(a) transfer sizes).
pub const LADDER: [u64; 9] = [
    1 << 10,
    16 << 10,
    256 << 10,
    1 << 20,
    16 << 20,
    128 << 20,
    512 << 20,
    1 << 30,
    2 << 30,
];

/// The CI smoke subset (kept ≤ 1 MB so the step stays cheap).
pub const SMOKE: [u64; 4] = [1 << 10, 16 << 10, 256 << 10, 1 << 20];

/// One measured (size, transport) point.
#[derive(Debug, Clone, Serialize)]
pub struct DatapathRow {
    /// Payload size in bytes (written once, read back once).
    pub bytes: u64,
    /// Human-readable size label.
    pub label: String,
    /// Transport: `"grpc"` or `"shm"`.
    pub system: String,
    /// Round trips averaged over.
    pub iterations: u32,
    /// Host bytes memcpy'd per round trip (deterministic).
    pub copied_bytes_per_rtt: u64,
    /// Individual memcpy operations per round trip (deterministic).
    pub copy_ops_per_rtt: u64,
    /// Pre-refactor copied bytes per round trip, if the size is in the
    /// embedded baseline table.
    pub baseline_copied_bytes_per_rtt: Option<u64>,
    /// `baseline / current` copy-volume reduction factor.
    pub copy_reduction: Option<f64>,
    /// Host wall-clock milliseconds per round trip (noisy; not CI-diffed).
    pub wall_ms_per_rtt: f64,
}

/// Pre-refactor (`Vec<u8>` payloads end-to-end) copied bytes per round
/// trip, captured on the instrumented old datapath before the zero-copy
/// change landed. `None` for sizes outside the measured ladder.
pub fn baseline_copied_bytes(bytes: u64, system: &str) -> Option<u64> {
    // (size, grpc, shm) — each entry is bytes memcpy'd per
    // EnqueueWrite(N) → Read(N) round trip on the old datapath: 7 copies
    // per byte over gRPC, 6 over shm. At ≥ 1 GB the payload exceeds the
    // shm segment and the connection falls back to inline staging, so the
    // shm column matches gRPC there.
    const BASELINE: [(u64, u64, u64); 9] = [
        (1 << 10, 7 << 10, 6 << 10),
        (16 << 10, 7 * (16 << 10), 6 * (16 << 10)),
        (256 << 10, 7 * (256 << 10), 6 * (256 << 10)),
        (1 << 20, 7 << 20, 6 << 20),
        (16 << 20, 7 * (16 << 20), 6 * (16 << 20)),
        (128 << 20, 7 * (128 << 20), 6 * (128 << 20)),
        (512 << 20, 7 * (512 << 20), 6 * (512 << 20)),
        (1 << 30, 7 << 30, 7 << 30),
        (2 << 30, 7 * (2 << 30), 7 * (2 << 30)),
    ];
    let row = BASELINE.iter().find(|(b, _, _)| *b == bytes)?;
    match system {
        "grpc" => Some(row.1),
        "shm" => Some(row.2),
        _ => None,
    }
}

fn system_tag(system: System) -> &'static str {
    match system {
        System::BlastFunction => "grpc",
        System::BlastFunctionShm => "shm",
        System::Native => "native",
    }
}

fn measure_one(system: System, bytes: u64) -> ClResult<DatapathRow> {
    let (device, _clock) = fig4_device(system);
    let ctx = device.create_context()?;
    let buf = ctx.create_buffer(bytes)?;
    let queue = ctx.create_queue()?;
    let iterations: u32 = if bytes <= 1 << 20 { 8 } else { 1 };
    let payload: Payload = vec![0xA5u8; bytes as usize].into();

    // Warm-up round trip: materializes the device buffer and spins up the
    // session so steady-state iterations measure only the datapath.
    queue.write(&buf, payload.clone())?;
    let _ = queue.read_vec(&buf)?;

    let before = bf_metrics::copy_counters();
    // bf-lint: allow(wall_clock): this benchmark measures real host time
    // spent moving payload bytes; the virtual clock models device/network
    // latency, not host memcpy throughput.
    let t0 = std::time::Instant::now();
    for _ in 0..iterations {
        queue.write(&buf, payload.clone())?;
        let _ = queue.read_vec(&buf)?;
    }
    let wall = t0.elapsed();
    let delta = bf_metrics::copy_counters().since(before);

    let copied = delta.bytes / u64::from(iterations);
    let tag = system_tag(system);
    let baseline = baseline_copied_bytes(bytes, tag);
    Ok(DatapathRow {
        bytes,
        label: human_bytes(bytes),
        system: tag.to_string(),
        iterations,
        copied_bytes_per_rtt: copied,
        copy_ops_per_rtt: delta.ops / u64::from(iterations),
        baseline_copied_bytes_per_rtt: baseline,
        copy_reduction: baseline
            .filter(|_| copied > 0)
            .map(|b| b as f64 / copied as f64),
        wall_ms_per_rtt: wall.as_secs_f64() * 1e3 / f64::from(iterations),
    })
}

/// Runs the write→read ladder over both BlastFunction transports.
pub fn datapath_rows(sizes: &[u64]) -> Vec<DatapathRow> {
    let mut rows = Vec::new();
    for &bytes in sizes {
        for system in [System::BlastFunction, System::BlastFunctionShm] {
            // bf-lint: allow(panic): the rig drives a fixed known-good
            // deployment; an OpenCL error here is a harness bug.
            rows.push(measure_one(system, bytes).expect("datapath op on known-good rig"));
        }
    }
    rows
}

/// Renders the ladder as an aligned text table.
pub fn render_datapath(title: &str, rows: &[DatapathRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<8} {:>6} {:>16} {:>8} {:>16} {:>10} {:>12}\n",
        "size", "path", "copied/rtt", "ops", "baseline", "reduction", "wall/rtt"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>6} {:>16} {:>8} {:>16} {:>10} {:>10.3}ms\n",
            r.label,
            r.system,
            r.copied_bytes_per_rtt,
            r.copy_ops_per_rtt,
            r.baseline_copied_bytes_per_rtt
                .map_or_else(|| "-".to_string(), |b| b.to_string()),
            r.copy_reduction
                .map_or_else(|| "-".to_string(), |f| format!("{f:.2}x")),
            r.wall_ms_per_rtt,
        ));
    }
    out
}

/// The deterministic copy-accounting fields of one archived row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchivedCopyRow {
    /// Payload size in bytes.
    pub bytes: u64,
    /// Transport tag.
    pub system: String,
    /// Host bytes memcpy'd per round trip.
    pub copied_bytes_per_rtt: u64,
    /// Memcpy operations per round trip.
    pub copy_ops_per_rtt: u64,
}

/// Extracts the deterministic copy fields from an archived
/// `BENCH_datapath.json` document. Returns `None` when the document does
/// not have the expected shape.
pub fn parse_archive(doc: &serde_json::Value) -> Option<Vec<ArchivedCopyRow>> {
    doc.as_array()?
        .iter()
        .map(|row| {
            let obj = row.as_object()?;
            Some(ArchivedCopyRow {
                bytes: obj.get("bytes")?.as_u64()?,
                system: obj.get("system")?.as_str()?.to_string(),
                copied_bytes_per_rtt: obj.get("copied_bytes_per_rtt")?.as_u64()?,
                copy_ops_per_rtt: obj.get("copy_ops_per_rtt")?.as_u64()?,
            })
        })
        .collect()
}

/// Compares the deterministic copy-accounting fields of `rows` against the
/// matching rows of an archived run, returning a list of mismatch
/// descriptions (empty when consistent). Rows missing from the archive are
/// ignored; wall-clock fields are never compared.
pub fn check_against_archive(rows: &[DatapathRow], archived: &[ArchivedCopyRow]) -> Vec<String> {
    let mut mismatches = Vec::new();
    for r in rows {
        let Some(a) = archived
            .iter()
            .find(|a| a.bytes == r.bytes && a.system == r.system)
        else {
            continue;
        };
        if a.copied_bytes_per_rtt != r.copied_bytes_per_rtt {
            mismatches.push(format!(
                "{} {}: copied_bytes_per_rtt {} != archived {}",
                r.label, r.system, r.copied_bytes_per_rtt, a.copied_bytes_per_rtt
            ));
        }
        if a.copy_ops_per_rtt != r.copy_ops_per_rtt {
            mismatches.push(format!(
                "{} {}: copy_ops_per_rtt {} != archived {}",
                r.label, r.system, r.copy_ops_per_rtt, a.copy_ops_per_rtt
            ));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_table_covers_the_ladder() {
        for bytes in LADDER {
            assert!(baseline_copied_bytes(bytes, "grpc").is_some());
            assert!(baseline_copied_bytes(bytes, "shm").is_some());
        }
        assert_eq!(baseline_copied_bytes(12345, "grpc"), None);
        assert_eq!(baseline_copied_bytes(1 << 10, "native"), None);
    }

    #[test]
    fn archive_check_flags_only_copy_fields() {
        let row = DatapathRow {
            bytes: 1024,
            label: "1KB".into(),
            system: "grpc".into(),
            iterations: 8,
            copied_bytes_per_rtt: 2048,
            copy_ops_per_rtt: 2,
            baseline_copied_bytes_per_rtt: Some(7168),
            copy_reduction: Some(3.5),
            wall_ms_per_rtt: 0.1,
        };
        let mut archived = ArchivedCopyRow {
            bytes: 1024,
            system: "grpc".into(),
            copied_bytes_per_rtt: 2048,
            copy_ops_per_rtt: 2,
        };
        assert!(check_against_archive(&[row.clone()], &[archived.clone()]).is_empty());
        archived.copied_bytes_per_rtt = 1;
        assert_eq!(check_against_archive(&[row], &[archived]).len(), 1);
    }

    #[test]
    fn archive_round_trips_through_json() {
        let rows = vec![DatapathRow {
            bytes: 1024,
            label: "1KB".into(),
            system: "shm".into(),
            iterations: 8,
            copied_bytes_per_rtt: 1024,
            copy_ops_per_rtt: 1,
            baseline_copied_bytes_per_rtt: Some(6144),
            copy_reduction: Some(6.0),
            wall_ms_per_rtt: 0.05,
        }];
        // bf-lint: allow(panic): test-only serialization of in-memory rows.
        let json = serde_json::to_string_pretty(&rows).expect("serialize");
        // bf-lint: allow(panic): the document was produced two lines up.
        let doc = serde_json::from_str(&json).expect("parse");
        let archived = parse_archive(&doc).expect("shape");
        assert!(check_against_archive(&rows, &archived).is_empty());
    }
}
