//! The federated control-plane ladder: the placement benchmark over the
//! [`bf_sim::run_federation`] harness.
//!
//! The ladder holds the workload fixed (the production day: 1000 nodes,
//! 10k functions, churn, failures, one join/leave rebalance) and sweeps
//! the shard count — 1, 4, 16 — so the only thing that changes is how
//! the control plane is partitioned. Two smoke points (100 nodes at 1
//! and 16 shards) run the same comparison at CI size, so the contention
//! gate holds in the smoke subset too. Every row is deterministic down
//! to the trace digest and is CI-diffed against the archived
//! `experiments/BENCH_federation.json`.

use serde::Serialize;

use bf_sim::{run_federation, FederationConfig};

/// Ladder labels in sweep order.
pub const FEDERATION_LADDER: [&str; 5] = ["smoke-1", "smoke-16", "1-shard", "4-shard", "16-shard"];

/// The CI smoke subset: both 100-node points, so the smoke gate still
/// compares 1 shard against 16.
pub const FEDERATION_SMOKE: [&str; 2] = ["smoke-1", "smoke-16"];

/// Floor on the fraction of placements that avoid a cold reprogram
/// (landed configured or warm) — the allocation-quality gate.
pub const FEDERATION_QUALITY_FLOOR: f64 = 0.25;

/// Required max-lock-span improvement between the 1-shard baseline and
/// a point with [`FEDERATION_SPAN_RATIO`]x the shards, within one
/// workload size.
pub const FEDERATION_SPAN_DROP: u64 = 4;

/// Shard-count growth that triggers the contention gate (the ladder's
/// 1-shard -> 16-shard comparison).
pub const FEDERATION_SPAN_RATIO: u64 = 16;

/// Resolves a ladder label to its configuration.
///
/// # Panics
///
/// Panics on an unknown label (the ladder is a closed set).
pub fn federation_config(label: &str) -> FederationConfig {
    match label {
        "smoke-1" => FederationConfig::smoke(1),
        "smoke-16" => FederationConfig::smoke(16),
        "1-shard" => FederationConfig::ladder(1),
        "4-shard" => FederationConfig::ladder(4),
        "16-shard" => FederationConfig::ladder(16),
        // bf-lint: allow(panic): the ladder is a closed set; an unknown
        // label is a harness bug, never a runtime condition.
        other => panic!("unknown federation ladder point {other:?}"),
    }
}

/// One measured ladder point. Every field is deterministic.
#[derive(Debug, Clone, Serialize)]
pub struct FederationBenchRow {
    /// Ladder label.
    pub label: String,
    /// Registry shards.
    pub shards: u64,
    /// Cluster size.
    pub nodes: u64,
    /// Function catalog size.
    pub functions: u64,
    /// Successful placements across all phases.
    pub placed: u64,
    /// Placements onto an already-configured board.
    pub configured: u64,
    /// Placements served from a warm bitstream cache.
    pub warm: u64,
    /// Placements that forced a cold reprogram.
    pub cold: u64,
    /// Board reprogram operations.
    pub reconfigurations: u64,
    /// Reprograms satisfied from a board's warm cache.
    pub warm_reprograms: u64,
    /// Tenants migrated off failed devices.
    pub migrated: u64,
    /// Devices moved by the join+leave rebalance pair.
    pub rebalance_moves: u64,
    /// Max devices+bindings walked under one registry-lock acquisition,
    /// across all shards — the contention headline.
    pub max_lock_span: u64,
    /// Registry-lock acquisitions recorded across all shards.
    pub lock_acquisitions: u64,
    /// The byte-identical-replay certificate.
    pub trace_digest: String,
}

impl FederationBenchRow {
    /// Fraction of placements that avoided a cold reprogram.
    pub fn quality(&self) -> f64 {
        if self.placed == 0 {
            0.0
        } else {
            (self.configured + self.warm) as f64 / self.placed as f64
        }
    }
}

fn measure_one(label: &str) -> FederationBenchRow {
    let r = run_federation(&federation_config(label));
    FederationBenchRow {
        label: label.to_string(),
        shards: r.shards as u64,
        nodes: r.nodes as u64,
        functions: r.functions as u64,
        placed: r.placed,
        configured: r.configured,
        warm: r.warm,
        cold: r.cold,
        reconfigurations: r.reconfigurations,
        warm_reprograms: r.warm_reprograms,
        migrated: r.migrated,
        rebalance_moves: r.rebalance_moves,
        max_lock_span: r.max_lock_span,
        lock_acquisitions: r.lock_acquisitions,
        trace_digest: r.trace_digest,
    }
}

/// Runs the sweep over the given ladder labels.
pub fn federation_rows(labels: &[&str]) -> Vec<FederationBenchRow> {
    labels.iter().map(|l| measure_one(l)).collect()
}

/// Checks the invariants every run must satisfy regardless of the
/// archive: outcome conservation, fault/rebalance visibility, the
/// allocation-quality floor, and the sharded contention drop.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_federation_invariants(rows: &[FederationBenchRow]) -> Result<(), String> {
    for r in rows {
        if r.configured + r.warm + r.cold != r.placed {
            return Err(format!(
                "{}: outcomes {}+{}+{} != placed {}",
                r.label, r.configured, r.warm, r.cold, r.placed
            ));
        }
        if r.placed < r.functions {
            return Err(format!(
                "{}: storm under-placed ({} placed, {} functions)",
                r.label, r.placed, r.functions
            ));
        }
        if r.migrated == 0 {
            return Err(format!(
                "{}: failure battery invisible (0 migrated)",
                r.label
            ));
        }
        if r.rebalance_moves == 0 {
            return Err(format!("{}: join/leave rebalance moved nothing", r.label));
        }
        if r.quality() < FEDERATION_QUALITY_FLOOR {
            return Err(format!(
                "{}: allocation quality {:.1}% below the {:.0}% floor",
                r.label,
                r.quality() * 100.0,
                FEDERATION_QUALITY_FLOOR * 100.0
            ));
        }
    }
    // Contention gate: within one workload size, growing the shard
    // count FEDERATION_SPAN_RATIO times (the 1 -> 16 ladder step) must
    // cut the max per-lock span at least FEDERATION_SPAN_DROP times.
    for base in rows {
        for wide in rows {
            if base.nodes != wide.nodes
                || base.functions != wide.functions
                || wide.shards < base.shards * FEDERATION_SPAN_RATIO
            {
                continue;
            }
            if wide.max_lock_span * FEDERATION_SPAN_DROP > base.max_lock_span {
                return Err(format!(
                    "{} -> {}: max lock span {} -> {} misses the {}x drop",
                    base.label,
                    wide.label,
                    base.max_lock_span,
                    wide.max_lock_span,
                    FEDERATION_SPAN_DROP
                ));
            }
        }
    }
    Ok(())
}

/// Renders the sweep as an aligned text table.
pub fn render_federation(title: &str, rows: &[FederationBenchRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<9} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6} {:>6} {:>8} {:>8} {:>8} {:>9} {:>9} {:>17}\n",
        "point",
        "shards",
        "nodes",
        "fns",
        "placed",
        "config",
        "warm",
        "cold",
        "reprog",
        "migrate",
        "rebal",
        "maxspan",
        "acqs",
        "digest"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6} {:>6} {:>8} {:>8} {:>8} {:>9} {:>9} {:>17}\n",
            r.label,
            r.shards,
            r.nodes,
            r.functions,
            r.placed,
            r.configured,
            r.warm,
            r.cold,
            r.reconfigurations,
            r.migrated,
            r.rebalance_moves,
            r.max_lock_span,
            r.lock_acquisitions,
            r.trace_digest,
        ));
    }
    out
}

/// One archived row (every field is deterministic, so all are compared).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchivedFederationRow {
    /// Ladder label.
    pub label: String,
    /// Successful placements.
    pub placed: u64,
    /// Configured-board placements.
    pub configured: u64,
    /// Warm-cache placements.
    pub warm: u64,
    /// Cold placements.
    pub cold: u64,
    /// Board reprograms.
    pub reconfigurations: u64,
    /// Failure migrations.
    pub migrated: u64,
    /// Rebalance device moves.
    pub rebalance_moves: u64,
    /// Max per-lock span.
    pub max_lock_span: u64,
    /// The replay certificate.
    pub trace_digest: String,
}

/// Extracts the comparable fields from an archived
/// `BENCH_federation.json` document. Returns `None` when the document
/// does not have the expected shape.
pub fn parse_federation_archive(doc: &serde_json::Value) -> Option<Vec<ArchivedFederationRow>> {
    doc.as_array()?
        .iter()
        .map(|row| {
            let obj = row.as_object()?;
            Some(ArchivedFederationRow {
                label: obj.get("label")?.as_str()?.to_string(),
                placed: obj.get("placed")?.as_u64()?,
                configured: obj.get("configured")?.as_u64()?,
                warm: obj.get("warm")?.as_u64()?,
                cold: obj.get("cold")?.as_u64()?,
                reconfigurations: obj.get("reconfigurations")?.as_u64()?,
                migrated: obj.get("migrated")?.as_u64()?,
                rebalance_moves: obj.get("rebalance_moves")?.as_u64()?,
                max_lock_span: obj.get("max_lock_span")?.as_u64()?,
                trace_digest: obj.get("trace_digest")?.as_str()?.to_string(),
            })
        })
        .collect()
}

/// Compares `rows` against the matching rows of an archived run,
/// returning mismatch descriptions (empty when consistent). Rows
/// missing from the archive are ignored, so the `--smoke` subset checks
/// cleanly against a full-ladder archive.
pub fn check_federation_archive(
    rows: &[FederationBenchRow],
    archived: &[ArchivedFederationRow],
) -> Vec<String> {
    let mut mismatches = Vec::new();
    for r in rows {
        let Some(a) = archived.iter().find(|a| a.label == r.label) else {
            continue;
        };
        let mut diff = |field: &str, got: u64, want: u64| {
            if got != want {
                mismatches.push(format!("{}: {field} {got} != archived {want}", r.label));
            }
        };
        diff("placed", r.placed, a.placed);
        diff("configured", r.configured, a.configured);
        diff("warm", r.warm, a.warm);
        diff("cold", r.cold, a.cold);
        diff("reconfigurations", r.reconfigurations, a.reconfigurations);
        diff("migrated", r.migrated, a.migrated);
        diff("rebalance_moves", r.rebalance_moves, a.rebalance_moves);
        diff("max_lock_span", r.max_lock_span, a.max_lock_span);
        if r.trace_digest != a.trace_digest {
            mismatches.push(format!(
                "{}: trace_digest {} != archived {}",
                r.label, r.trace_digest, a.trace_digest
            ));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_labels_are_a_subset_of_the_ladder() {
        for label in FEDERATION_SMOKE {
            assert!(FEDERATION_LADDER.contains(&label));
        }
    }

    #[test]
    fn every_ladder_label_resolves() {
        for label in FEDERATION_LADDER {
            let cfg = federation_config(label);
            assert!(cfg.shards > 0 && cfg.nodes > 0);
        }
    }

    #[test]
    fn smoke_rows_satisfy_the_invariants_and_round_trip() {
        let rows = federation_rows(&FEDERATION_SMOKE);
        assert!(check_federation_invariants(&rows).is_ok(), "{rows:?}");
        let json = serde_json::to_string_pretty(&rows).expect("serialize");
        let doc = serde_json::from_str(&json).expect("parse");
        let archived = parse_federation_archive(&doc).expect("shape");
        assert!(check_federation_archive(&rows, &archived).is_empty());
        // A drifted archive is flagged.
        let mut drifted = archived;
        drifted[0].trace_digest = "0".repeat(16);
        assert_eq!(check_federation_archive(&rows, &drifted).len(), 1);
    }
}
