#![forbid(unsafe_code)]

//! # bf-bench — the experiment harness
//!
//! One function per paper figure/table, each returning structured rows
//! that the `src/bin/*` binaries print in the paper's layout and dump as
//! JSON artifacts under `target/experiments/`.
//!
//! | Paper artifact | Harness | Binary |
//! |---|---|---|
//! | Fig. 4(a) R/W RTT sweep | [`fig4a_rows`] | `fig4a` |
//! | Fig. 4(b) Sobel latency sweep | [`fig4b_rows`] | `fig4b` |
//! | Fig. 4(c) MM latency sweep | [`fig4c_rows`] | `fig4c` |
//! | Table I load matrix | [`table1_rows`] | `table1` |
//! | Table II Sobel per-function | [`table2_results`] | `table2` |
//! | Table III MM aggregates | [`table3_results`] | `table3` |
//! | Table IV AlexNet aggregates | [`table4_results`] | `table4` |
//! | Allocation-policy ablation | [`ablation_alloc`] | `ablation_alloc` |
//! | Data-path ablation | [`ablation_transport`] | `ablation_transport` |
//! | Task-granularity ablation | [`ablation_taskgrain`] | `ablation_taskgrain` |

mod cache;
mod datapath;
mod federation;
mod gateway;
mod scale;

pub use crate::cache::{
    cache_point, cache_rows, check_cache_archive, check_cache_invariants, parse_cache_archive,
    render_cache, ArchivedCacheRow, CacheBenchRow, CachePoint, CACHE_LADDER, CACHE_SEED,
    CACHE_SMOKE, CACHE_ZIPF_EXPONENT,
};
pub use crate::datapath::{
    baseline_copied_bytes, check_against_archive, datapath_rows, parse_archive, render_datapath,
    ArchivedCopyRow, DatapathRow, LADDER, SMOKE,
};
pub use crate::federation::{
    check_federation_archive, check_federation_invariants, federation_config, federation_rows,
    parse_federation_archive, render_federation, ArchivedFederationRow, FederationBenchRow,
    FEDERATION_LADDER, FEDERATION_QUALITY_FLOOR, FEDERATION_SMOKE, FEDERATION_SPAN_DROP,
    FEDERATION_SPAN_RATIO,
};
pub use crate::gateway::{
    check_batching_wins, check_gateway_archive, gateway_duration, gateway_rows,
    parse_gateway_archive, peak_throughput, render_gateway, ArchivedGatewayRow, GatewayMode,
    GatewayRow, GATEWAY_LADDER, GATEWAY_SMOKE,
};
pub use crate::scale::{
    check_scale_archive, check_scale_invariants, parse_scale_archive, render_scale, scale_config,
    scale_rows, ArchivedScaleRow, ScaleBenchRow, SCALE_LADDER, SCALE_SEED, SCALE_SMOKE,
};

use std::path::PathBuf;
use std::sync::Arc;

use bf_devmgr::{DeviceManager, DeviceManagerConfig};
use bf_fpga::{Board, BoardSpec, Payload};
use bf_model::{node_b, DataPathKind, VirtualClock, VirtualDuration};
use bf_ocl::{ArgValue, BitstreamCatalog, ClResult, Device, NativeBackend, NdRange};
use bf_remote::Router;
use bf_rpc::PathCosts;
use bf_serverless::{table1_rates, LoadLevel, UseCase};
use bf_sim::{run_scenario, Deployment, ScenarioConfig, ScenarioResult};
use bf_workloads::{mm, sobel, CnnNetwork};
use parking_lot::Mutex;
use serde::Serialize;

/// The three systems of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Direct PCIe access.
    Native,
    /// BlastFunction over the pure-gRPC data path.
    BlastFunction,
    /// BlastFunction over the shared-memory data path.
    BlastFunctionShm,
}

impl System {
    /// The legend label used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            System::Native => "Native",
            System::BlastFunction => "BlastFunction",
            System::BlastFunctionShm => "BlastFunction shm",
        }
    }

    /// All three systems in the paper's legend order.
    pub fn all() -> [System; 3] {
        [
            System::Native,
            System::BlastFunction,
            System::BlastFunctionShm,
        ]
    }
}

fn catalog() -> BitstreamCatalog {
    let mut catalog = BitstreamCatalog::new();
    catalog.register(sobel::bitstream());
    catalog.register(mm::bitstream());
    catalog
}

/// Builds a single-node deployment of `system` (the Fig. 4 testbed: one
/// worker node, one board, the function co-located).
pub fn fig4_device(system: System) -> (Device, VirtualClock) {
    let board = Arc::new(Mutex::new(Board::new(
        BoardSpec::de5a_net(),
        *node_b().pcie(),
    )));
    let clock = VirtualClock::new();
    match system {
        System::Native => (
            Device::new(Arc::new(NativeBackend::new(
                node_b(),
                board,
                catalog(),
                clock.clone(),
                "fig4",
            ))),
            clock,
        ),
        System::BlastFunction | System::BlastFunctionShm => {
            let manager = DeviceManager::new(
                DeviceManagerConfig::standalone("fpga-b"),
                node_b(),
                board,
                catalog(),
            );
            let mut router = Router::new();
            router.add_manager(manager);
            let costs = if system == System::BlastFunctionShm {
                PathCosts::local_shm()
            } else {
                PathCosts::local_grpc()
            };
            let device = router
                .connect(0, "fig4-fn", costs, clock.clone())
                // bf-lint: allow(panic): the router was just built with exactly
                // one manager at index 0 — connect cannot fail on this topology.
                .expect("connect");
            (device, clock)
        }
    }
}

/// A reusable single-node deployment of one system. Reuse across repeated
/// measurements (e.g. Criterion iterations) so threads and sessions are
/// not respawned per sample.
pub struct Fig4Rig {
    device: Device,
    clock: VirtualClock,
}

impl Fig4Rig {
    /// Deploys the rig for `system`.
    pub fn new(system: System) -> Self {
        let (device, clock) = fig4_device(system);
        Fig4Rig { device, clock }
    }

    /// Fig. 4(a)'s measured operation: synchronous write of `total/2`
    /// bytes followed by a synchronous read of `total/2` bytes.
    pub fn write_read_rtt(&self, total_bytes: u64) -> VirtualDuration {
        // bf-lint: allow(panic): the rig drives a fixed known-good deployment;
        // an OpenCL error here is a harness bug, never a runtime condition.
        self.try_write_read_rtt(total_bytes)
            .expect("fig4a op on known-good rig")
    }

    fn try_write_read_rtt(&self, total_bytes: u64) -> ClResult<VirtualDuration> {
        let half = (total_bytes / 2).max(1);
        let ctx = self.device.create_context()?;
        let buf = ctx.create_buffer(half)?;
        let queue = ctx.create_queue()?;
        let t0 = self.clock.now();
        queue.write(&buf, Payload::Synthetic(half))?;
        let _ = queue.read_payload(&buf)?;
        Ok(self.clock.now() - t0)
    }

    /// Fig. 4(b)'s measured operation (setup excluded from the RTT).
    pub fn sobel_rtt(&self, w: u32, h: u32) -> VirtualDuration {
        // bf-lint: allow(panic): the rig drives a fixed known-good deployment;
        // an OpenCL error here is a harness bug, never a runtime condition.
        self.try_sobel_rtt(w, h)
            .expect("fig4b op on known-good rig")
    }

    fn try_sobel_rtt(&self, w: u32, h: u32) -> ClResult<VirtualDuration> {
        let ctx = self.device.create_context()?;
        let program = ctx.build_program(sobel::SOBEL_BITSTREAM)?;
        let kernel = program.create_kernel(sobel::SOBEL_KERNEL)?;
        let bytes = sobel::frame_bytes(w, h);
        let input = ctx.create_buffer(bytes)?;
        let output = ctx.create_buffer(bytes)?;
        let queue = ctx.create_queue()?;
        kernel.set_arg_buffer(0, &input)?;
        kernel.set_arg_buffer(1, &output)?;
        kernel.set_arg(2, ArgValue::U32(w))?;
        kernel.set_arg(3, ArgValue::U32(h))?;
        let t0 = self.clock.now();
        queue.write_async(&input, 0, Payload::Synthetic(bytes))?;
        queue.launch(&kernel, NdRange::d2(w.into(), h.into()))?;
        let _ = queue.read_payload(&output)?;
        Ok(self.clock.now() - t0)
    }

    /// Fig. 4(c)'s measured operation (setup excluded from the RTT).
    pub fn mm_rtt(&self, n: u32) -> VirtualDuration {
        // bf-lint: allow(panic): the rig drives a fixed known-good deployment;
        // an OpenCL error here is a harness bug, never a runtime condition.
        self.try_mm_rtt(n).expect("fig4c op on known-good rig")
    }

    fn try_mm_rtt(&self, n: u32) -> ClResult<VirtualDuration> {
        let ctx = self.device.create_context()?;
        let program = ctx.build_program(mm::MM_BITSTREAM)?;
        let kernel = program.create_kernel(mm::MM_KERNEL)?;
        let bytes = mm::matrix_bytes(n);
        let a = ctx.create_buffer(bytes)?;
        let b = ctx.create_buffer(bytes)?;
        let c = ctx.create_buffer(bytes)?;
        let queue = ctx.create_queue()?;
        kernel.set_arg_buffer(0, &a)?;
        kernel.set_arg_buffer(1, &b)?;
        kernel.set_arg_buffer(2, &c)?;
        kernel.set_arg(3, ArgValue::U32(n))?;
        let t0 = self.clock.now();
        queue.write_async(&a, 0, Payload::Synthetic(bytes))?;
        queue.write_async(&b, 0, Payload::Synthetic(bytes))?;
        queue.launch(&kernel, NdRange::d2(n.into(), n.into()))?;
        let _ = queue.read_payload(&c)?;
        Ok(self.clock.now() - t0)
    }
}

/// Fig. 4(a)'s measured operation on a fresh deployment (one-shot; for
/// repeated sampling build a [`Fig4Rig`] instead).
pub fn write_read_rtt(system: System, total_bytes: u64) -> VirtualDuration {
    Fig4Rig::new(system).write_read_rtt(total_bytes)
}

/// Fig. 4(b)'s measured operation on a fresh deployment: one Sobel
/// request (pipelined write/kernel, synchronous read) on a `w × h` frame.
pub fn sobel_rtt(system: System, w: u32, h: u32) -> VirtualDuration {
    Fig4Rig::new(system).sobel_rtt(w, h)
}

/// Fig. 4(c)'s measured operation on a fresh deployment: one `n × n` MM
/// request.
pub fn mm_rtt(system: System, n: u32) -> VirtualDuration {
    Fig4Rig::new(system).mm_rtt(n)
}

/// One sweep point of a Fig. 4 series.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Sweep parameter (total bytes, pixels, or matrix dimension).
    pub x: u64,
    /// Human-readable sweep label.
    pub label: String,
    /// Native RTT (ms).
    pub native_ms: f64,
    /// BlastFunction (gRPC) RTT (ms).
    pub grpc_ms: f64,
    /// BlastFunction shm RTT (ms).
    pub shm_ms: f64,
}

impl SweepRow {
    /// gRPC slowdown over native.
    pub fn grpc_ratio(&self) -> f64 {
        self.grpc_ms / self.native_ms
    }

    /// shm overhead over native (ms).
    pub fn shm_overhead_ms(&self) -> f64 {
        self.shm_ms - self.native_ms
    }
}

/// Fig. 4(a): total transfer sizes from 1 KB to 2 GB.
pub fn fig4a_rows() -> Vec<SweepRow> {
    let sizes: Vec<u64> = vec![
        1 << 10,
        16 << 10,
        256 << 10,
        1 << 20,
        16 << 20,
        128 << 20,
        512 << 20,
        1 << 30,
        2 << 30,
    ];
    sizes
        .into_iter()
        .map(|total| SweepRow {
            x: total,
            label: human_bytes(total),
            native_ms: write_read_rtt(System::Native, total).as_millis_f64(),
            grpc_ms: write_read_rtt(System::BlastFunction, total).as_millis_f64(),
            shm_ms: write_read_rtt(System::BlastFunctionShm, total).as_millis_f64(),
        })
        .collect()
}

/// Fig. 4(b): image sizes from 10×10 to 1920×1080.
pub fn fig4b_rows() -> Vec<SweepRow> {
    let sizes: Vec<(u32, u32)> = vec![
        (10, 10),
        (100, 100),
        (320, 240),
        (640, 480),
        (800, 600),
        (1280, 720),
        (1600, 900),
        (1920, 1080),
    ];
    sizes
        .into_iter()
        .map(|(w, h)| SweepRow {
            x: u64::from(w) * u64::from(h),
            label: format!("{w}x{h}"),
            native_ms: sobel_rtt(System::Native, w, h).as_millis_f64(),
            grpc_ms: sobel_rtt(System::BlastFunction, w, h).as_millis_f64(),
            shm_ms: sobel_rtt(System::BlastFunctionShm, w, h).as_millis_f64(),
        })
        .collect()
}

/// Fig. 4(c): matrix dimensions from 16 to 4096.
pub fn fig4c_rows() -> Vec<SweepRow> {
    [16u32, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .map(|n| SweepRow {
            x: u64::from(n),
            label: format!("{n}x{n}"),
            native_ms: mm_rtt(System::Native, n).as_millis_f64(),
            grpc_ms: mm_rtt(System::BlastFunction, n).as_millis_f64(),
            shm_ms: mm_rtt(System::BlastFunctionShm, n).as_millis_f64(),
        })
        .collect()
}

/// Renders a Fig. 4 series as an aligned text table.
pub fn render_sweep(title: &str, rows: &[SweepRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<12} {:>14} {:>18} {:>18} {:>8} {:>12}\n",
        "size", "Native", "BlastFunction", "BlastFunction shm", "grpc/x", "shm ovh"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>12.3}ms {:>16.3}ms {:>16.3}ms {:>7.2}x {:>10.3}ms\n",
            r.label,
            r.native_ms,
            r.grpc_ms,
            r.shm_ms,
            r.grpc_ratio(),
            r.shm_overhead_ms()
        ));
    }
    out
}

/// One Table I row.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Use case label.
    pub use_case: String,
    /// Configuration label.
    pub configuration: String,
    /// Target rq/s per function (five entries).
    pub rates: [f64; 5],
}

/// Table I: the test-configuration matrix.
pub fn table1_rows() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for use_case in [UseCase::Sobel, UseCase::Mm, UseCase::AlexNet] {
        for level in [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High] {
            if let Some(rates) = table1_rates(use_case, level) {
                rows.push(Table1Row {
                    use_case: use_case.to_string(),
                    configuration: level.to_string(),
                    rates,
                });
            }
        }
    }
    rows
}

/// The default measurement duration for the table experiments.
pub fn table_duration() -> VirtualDuration {
    VirtualDuration::from_secs(60)
}

fn scenario(use_case: UseCase, level: LoadLevel, deployment: Deployment) -> ScenarioResult {
    run_scenario(&ScenarioConfig::new(use_case, level, deployment).with_duration(table_duration()))
}

/// Table II: Sobel per-function rows, BlastFunction (shm) then Native,
/// low/medium/high.
pub fn table2_results() -> Vec<ScenarioResult> {
    let mut out = Vec::new();
    for deployment in [
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        },
        Deployment::Native,
    ] {
        for level in [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High] {
            out.push(scenario(UseCase::Sobel, level, deployment));
        }
    }
    out
}

/// Table III: MM aggregates.
pub fn table3_results() -> Vec<ScenarioResult> {
    let mut out = Vec::new();
    for deployment in [
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        },
        Deployment::Native,
    ] {
        for level in [LoadLevel::Low, LoadLevel::Medium, LoadLevel::High] {
            out.push(scenario(UseCase::Mm, level, deployment));
        }
    }
    out
}

/// Table IV: AlexNet aggregates (medium and high only, as in the paper).
pub fn table4_results() -> Vec<ScenarioResult> {
    let mut out = Vec::new();
    for deployment in [
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        },
        Deployment::Native,
    ] {
        for level in [LoadLevel::Medium, LoadLevel::High] {
            out.push(scenario(UseCase::AlexNet, level, deployment));
        }
    }
    out
}

/// One ablation variant's aggregate outcome.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Aggregate utilization (%, max 300).
    pub utilization_pct: f64,
    /// Mean latency (ms).
    pub mean_latency_ms: f64,
    /// Processed rq/s.
    pub processed_rps: f64,
    /// Target rq/s.
    pub target_rps: f64,
}

impl From<(&str, &ScenarioResult)> for AblationRow {
    fn from((variant, r): (&str, &ScenarioResult)) -> Self {
        AblationRow {
            variant: variant.to_string(),
            utilization_pct: r.aggregate.utilization_pct,
            mean_latency_ms: r.aggregate.mean_latency_ms,
            processed_rps: r.aggregate.processed_rps,
            target_rps: r.aggregate.target_rps,
        }
    }
}

/// Allocation-policy ablation (Sobel, high load): the registry's
/// balanced placement vs a worst-case pile-up on the slow master node vs
/// round-robin that ignores node speed.
pub fn ablation_alloc() -> Vec<AblationRow> {
    let base = ScenarioConfig::new(
        UseCase::Sobel,
        LoadLevel::High,
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        },
    )
    .with_duration(table_duration());
    let variants: Vec<(&str, Vec<usize>)> = vec![
        // 0 = node A, 1 = B, 2 = C.
        ("registry (Algorithm 1)", vec![]),
        ("round-robin A,B,C", vec![0, 1, 2, 0, 1]),
        ("pile-up on node A", vec![0, 0, 0, 0, 0]),
        ("workers only (B,C)", vec![1, 2, 1, 2, 1]),
    ];
    variants
        .into_iter()
        .map(|(label, placement)| {
            let cfg = if placement.is_empty() {
                base.clone()
            } else {
                base.clone().with_placement(placement)
            };
            let result = run_scenario(&cfg);
            AblationRow::from((label, &result))
        })
        .collect()
}

/// Data-path ablation: shm vs gRPC for every use case at medium load.
pub fn ablation_transport() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for use_case in [UseCase::Sobel, UseCase::Mm, UseCase::AlexNet] {
        for (label, data_path) in [
            ("shm", DataPathKind::SharedMemory),
            ("grpc", DataPathKind::Grpc),
        ] {
            let result = scenario(
                use_case,
                LoadLevel::Medium,
                Deployment::BlastFunction { data_path },
            );
            rows.push(AblationRow::from((
                format!("{use_case} / {label}").as_str(),
                &result,
            )));
        }
    }
    rows
}

/// Task-granularity ablation: AlexNet with PipeCNN's per-layer syncs vs a
/// hypothetical single batched task per inference.
pub fn ablation_taskgrain() -> Vec<AblationRow> {
    let net = CnnNetwork::alexnet();
    let base = ScenarioConfig::new(
        UseCase::AlexNet,
        LoadLevel::Medium,
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        },
    )
    .with_duration(table_duration());
    let layered = run_scenario(&base);
    let batched = run_scenario(&base.clone().with_profile(net.request_profile_batched()));
    let native = run_scenario(
        &ScenarioConfig::new(UseCase::AlexNet, LoadLevel::Medium, Deployment::Native)
            .with_duration(table_duration()),
    );
    vec![
        AblationRow::from(("per-layer syncs (PipeCNN)", &layered)),
        AblationRow::from(("single batched task", &batched)),
        AblationRow::from(("native", &native)),
    ]
}

/// Space-sharing ablation (the paper's future work): AlexNet at high
/// load with 1 region (pure time-sharing), 2 regions (kernels 1.6× slower
/// each) and 4 regions (2.6× slower): does splitting the board into
/// smaller parallel accelerators beat pure time-multiplexing?
pub fn ablation_spacesharing() -> Vec<AblationRow> {
    let base = ScenarioConfig::new(
        UseCase::AlexNet,
        LoadLevel::High,
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        },
    )
    .with_duration(table_duration());
    [
        ("time-sharing (1 region)", 1u32, 1.0f64),
        ("space-sharing 2 regions", 2, 1.6),
        ("space-sharing 4 regions", 4, 2.6),
    ]
    .into_iter()
    .map(|(label, slots, slowdown)| {
        let result = run_scenario(&base.clone().with_space_sharing(slots, slowdown));
        AblationRow::from((label, &result))
    })
    .collect()
}

/// Renders ablation rows.
pub fn render_ablation(title: &str, rows: &[AblationRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<28} {:>12} {:>12} {:>12} {:>10}\n",
        "variant", "util (%)", "latency", "processed", "target"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>11.2}% {:>10.2}ms {:>7.2} rq/s {:>6.1} rq/s\n",
            r.variant, r.utilization_pct, r.mean_latency_ms, r.processed_rps, r.target_rps
        ));
    }
    out
}

/// Writes a JSON artifact under `target/experiments/<name>.json` so runs
/// are diffable; returns the path.
///
/// # Panics
///
/// Panics if the artifact cannot be written (CI environments should fail
/// loudly).
pub fn save_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let dir = PathBuf::from("target").join("experiments");
    // bf-lint: allow(panic): artifact writing is best-effort CI plumbing; a
    // full disk or unwritable target/ must abort the run loudly, not silently
    // drop the experiment record.
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    let path = dir.join(format!("{name}.json"));
    // bf-lint: allow(panic): serializing an in-memory row set is infallible.
    let json = serde_json::to_string_pretty(value).expect("serialize experiment");
    // bf-lint: allow(panic): same rationale as the directory creation above.
    std::fs::write(&path, json).expect("write experiment artifact");
    path
}

fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{}GB", bytes >> 30)
    } else if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_row_derivations() {
        let r = SweepRow {
            x: 1,
            label: "x".into(),
            native_ms: 2.0,
            grpc_ms: 8.0,
            shm_ms: 3.0,
        };
        assert_eq!(r.grpc_ratio(), 4.0);
        assert_eq!(r.shm_overhead_ms(), 1.0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2 << 10), "2KB");
        assert_eq!(human_bytes(3 << 20), "3MB");
        assert_eq!(human_bytes(2 << 30), "2GB");
    }

    #[test]
    fn table1_has_eight_configurations() {
        assert_eq!(table1_rows().len(), 8);
    }
}
