//! Gateway batching benchmark: open-loop arrival-rate sweep of the typed
//! invocation API, batched vs unbatched.
//!
//! Every request is a Table-II Sobel invocation (1920×1080 frame each
//! way) served by a profile-driven handler on node B: each dispatch pays
//! a fixed overhead (function host wrapper + the two control hops of the
//! shared-memory path) and each invocation in the batch pays the
//! profile's device service time. Coalescing amortizes the fixed part
//! over the batch, so the batched queue sustains a strictly higher
//! saturation throughput than the unbatched one — the effect this sweep
//! measures and CI pins.
//!
//! Everything here runs in virtual time, so every field of every row is
//! deterministic and the whole row set is CI-diffable against the
//! archived `experiments/BENCH_gateway.json`.

use serde::Serialize;
use std::sync::Arc;

use bf_model::{node_b, VirtualClock, VirtualDuration, VirtualTime};
use bf_rpc::PathCosts;
use bf_serverless::{
    run_open_loop, BatchHandler, Batcher, Completion, Gateway, HandlerError, Invocation, UseCase,
};
use bf_sim::request_profile;

/// The full arrival-rate ladder (rq/s). Unbatched Sobel saturates near
/// 52 rq/s and batched near 66 rq/s on node B, so the ladder brackets
/// both knees with headroom above.
pub const GATEWAY_LADDER: [f64; 8] = [10.0, 20.0, 35.0, 50.0, 65.0, 80.0, 100.0, 120.0];

/// The CI smoke subset. Runs the same virtual duration as the full
/// ladder, so its rows are directly comparable to the archive.
pub const GATEWAY_SMOKE: [f64; 4] = [20.0, 50.0, 80.0, 120.0];

/// Virtual measurement window per (mode, rate) point.
pub fn gateway_duration() -> VirtualDuration {
    VirtualDuration::from_secs(30)
}

/// The two admission/coalescing configurations under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayMode {
    /// One invocation per dispatch (the old closure-API behaviour).
    Unbatched,
    /// The default coalescing envelope (batch ≤ 8, 5 ms linger).
    Batched,
}

impl GatewayMode {
    /// Row tag used in tables and the JSON artifact.
    pub fn label(self) -> &'static str {
        match self {
            GatewayMode::Unbatched => "unbatched",
            GatewayMode::Batched => "batched",
        }
    }

    /// Both modes in presentation order.
    pub fn all() -> [GatewayMode; 2] {
        [GatewayMode::Unbatched, GatewayMode::Batched]
    }

    fn batcher(self) -> Batcher {
        match self {
            // Same queue capacity in both modes so admission control is
            // identical and only coalescing differs.
            GatewayMode::Unbatched => Batcher::unbatched(),
            GatewayMode::Batched => Batcher::new(),
        }
    }
}

/// A profile-driven batch handler: one fixed dispatch overhead per batch
/// plus the workload's device service time per invocation, both taken
/// from the calibrated cost models.
struct ProfileBatchHandler {
    dispatch_overhead: VirtualDuration,
    service_time: VirtualDuration,
}

impl ProfileBatchHandler {
    fn sobel_on_b() -> Self {
        let node = node_b();
        let costs = PathCosts::local_shm();
        ProfileBatchHandler {
            // Function host wrapper + submit/complete control hops, paid
            // once per dispatch regardless of batch size.
            dispatch_overhead: node.host_overhead() + costs.control_hop() * 2,
            service_time: request_profile(UseCase::Sobel).service_time(&node),
        }
    }
}

impl BatchHandler for ProfileBatchHandler {
    fn handle_batch(
        &self,
        start: VirtualTime,
        batch: &[Invocation],
    ) -> Vec<Result<Completion, HandlerError>> {
        let mut cursor = start + self.dispatch_overhead;
        batch
            .iter()
            .map(|_| {
                cursor += self.service_time;
                Ok(Completion::at(cursor))
            })
            .collect()
    }
}

/// One measured (mode, rate) point. All fields are virtual-time
/// deterministic.
#[derive(Debug, Clone, Serialize)]
pub struct GatewayRow {
    /// `"unbatched"` or `"batched"`.
    pub mode: String,
    /// Offered arrival rate (rq/s).
    pub rate: f64,
    /// Arrivals inside the window.
    pub offered: u64,
    /// Requests completed by the end of the window.
    pub processed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests failed in the handler.
    pub failed: u64,
    /// Mean end-to-end latency (ms) over completed requests.
    pub mean_latency_ms: f64,
    /// 99th-percentile end-to-end latency (ms).
    pub p99_latency_ms: f64,
    /// Completions per second over the window.
    pub achieved_rps: f64,
    /// Mean dispatched batch size.
    pub mean_batch_size: f64,
}

fn measure_one(mode: GatewayMode, rate: f64) -> GatewayRow {
    let gateway = Gateway::new().with_forward_latency(VirtualDuration::from_micros(300));
    gateway.deploy(
        "sobel",
        mode.batcher(),
        Arc::new(ProfileBatchHandler::sobel_on_b()),
    );
    let clock = VirtualClock::new();
    let result = run_open_loop(&gateway, "sobel", rate, gateway_duration(), &clock)
        // bf-lint: allow(panic): the function was deployed three lines up;
        // an error here is a harness bug, never a runtime condition.
        .expect("open-loop run on a just-deployed function");
    GatewayRow {
        mode: mode.label().to_string(),
        rate,
        offered: result.offered,
        processed: result.processed,
        shed: result.shed,
        failed: result.failed,
        mean_latency_ms: result.mean_latency.as_millis_f64(),
        p99_latency_ms: result.p99_latency.as_millis_f64(),
        achieved_rps: result.achieved_rps,
        mean_batch_size: result.mean_batch_size,
    }
}

/// Runs the arrival-rate sweep over both modes.
pub fn gateway_rows(rates: &[f64]) -> Vec<GatewayRow> {
    let mut rows = Vec::new();
    for mode in GatewayMode::all() {
        for &rate in rates {
            rows.push(measure_one(mode, rate));
        }
    }
    rows
}

/// The peak sustained throughput (max `achieved_rps`) of `mode` in `rows`.
pub fn peak_throughput(rows: &[GatewayRow], mode: GatewayMode) -> f64 {
    rows.iter()
        .filter(|r| r.mode == mode.label())
        .map(|r| r.achieved_rps)
        .fold(0.0, f64::max)
}

/// Checks the headline claim: the batched queue's peak throughput must be
/// strictly higher than the unbatched one's. Returns an error description
/// when it is not.
///
/// # Errors
///
/// Returns the two peak numbers when batched does not beat unbatched.
pub fn check_batching_wins(rows: &[GatewayRow]) -> Result<(), String> {
    let unbatched = peak_throughput(rows, GatewayMode::Unbatched);
    let batched = peak_throughput(rows, GatewayMode::Batched);
    if batched > unbatched {
        Ok(())
    } else {
        Err(format!(
            "batched peak {batched:.2} rq/s does not beat unbatched peak {unbatched:.2} rq/s"
        ))
    }
}

/// Renders the sweep as an aligned text table.
pub fn render_gateway(title: &str, rows: &[GatewayRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<10} {:>7} {:>8} {:>10} {:>6} {:>7} {:>10} {:>10} {:>10} {:>7}\n",
        "mode",
        "rate",
        "offered",
        "processed",
        "shed",
        "failed",
        "mean",
        "p99",
        "achieved",
        "batch"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>7.0} {:>8} {:>10} {:>6} {:>7} {:>8.2}ms {:>8.2}ms {:>10.2} {:>7.2}\n",
            r.mode,
            r.rate,
            r.offered,
            r.processed,
            r.shed,
            r.failed,
            r.mean_latency_ms,
            r.p99_latency_ms,
            r.achieved_rps,
            r.mean_batch_size,
        ));
    }
    out
}

/// One archived row (all fields are deterministic, so all are compared).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchivedGatewayRow {
    /// Mode tag.
    pub mode: String,
    /// Offered arrival rate (rq/s).
    pub rate: f64,
    /// Arrivals inside the window.
    pub offered: u64,
    /// Completions inside the window.
    pub processed: u64,
    /// Admission-control sheds.
    pub shed: u64,
    /// Handler failures.
    pub failed: u64,
    /// Completions per second.
    pub achieved_rps: f64,
    /// Mean dispatched batch size.
    pub mean_batch_size: f64,
}

/// Extracts the comparable fields from an archived `BENCH_gateway.json`
/// document. Returns `None` when the document does not have the expected
/// shape.
pub fn parse_gateway_archive(doc: &serde_json::Value) -> Option<Vec<ArchivedGatewayRow>> {
    doc.as_array()?
        .iter()
        .map(|row| {
            let obj = row.as_object()?;
            Some(ArchivedGatewayRow {
                mode: obj.get("mode")?.as_str()?.to_string(),
                rate: obj.get("rate")?.as_f64()?,
                offered: obj.get("offered")?.as_u64()?,
                processed: obj.get("processed")?.as_u64()?,
                shed: obj.get("shed")?.as_u64()?,
                failed: obj.get("failed")?.as_u64()?,
                achieved_rps: obj.get("achieved_rps")?.as_f64()?,
                mean_batch_size: obj.get("mean_batch_size")?.as_f64()?,
            })
        })
        .collect()
}

/// Compares `rows` against the matching rows of an archived run,
/// returning a list of mismatch descriptions (empty when consistent).
/// Rows missing from the archive are ignored, so the `--smoke` subset
/// checks cleanly against a full-ladder archive.
pub fn check_gateway_archive(rows: &[GatewayRow], archived: &[ArchivedGatewayRow]) -> Vec<String> {
    const EPS: f64 = 1e-6;
    let mut mismatches = Vec::new();
    for r in rows {
        let Some(a) = archived
            .iter()
            .find(|a| a.mode == r.mode && (a.rate - r.rate).abs() < EPS)
        else {
            continue;
        };
        let mut diff = |field: &str, got: f64, want: f64| {
            if (got - want).abs() > EPS {
                mismatches.push(format!(
                    "{} @ {:.0} rq/s: {field} {got} != archived {want}",
                    r.mode, r.rate
                ));
            }
        };
        diff("offered", r.offered as f64, a.offered as f64);
        diff("processed", r.processed as f64, a.processed as f64);
        diff("shed", r.shed as f64, a.shed as f64);
        diff("failed", r.failed as f64, a.failed as f64);
        diff("achieved_rps", r.achieved_rps, a.achieved_rps);
        diff("mean_batch_size", r.mean_batch_size, a.mean_batch_size);
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_rates_are_a_subset_of_the_ladder() {
        for rate in GATEWAY_SMOKE {
            assert!(GATEWAY_LADDER.contains(&rate));
        }
    }

    #[test]
    fn batched_sustains_more_than_unbatched_at_saturation() {
        // One saturating rate per mode is enough for the headline claim.
        let rows = vec![measure_one(GatewayMode::Unbatched, 120.0), {
            let r = measure_one(GatewayMode::Batched, 120.0);
            assert!(r.mean_batch_size > 1.5, "saturated batches coalesce: {r:?}");
            r
        }];
        assert!(check_batching_wins(&rows).is_ok(), "{rows:?}");
    }

    #[test]
    fn archive_round_trips_through_json() {
        let rows = gateway_rows(&[20.0]);
        let json = serde_json::to_string_pretty(&rows).expect("serialize");
        let doc = serde_json::from_str(&json).expect("parse");
        let archived = parse_gateway_archive(&doc).expect("shape");
        assert!(check_gateway_archive(&rows, &archived).is_empty());
        // A drifted archive is flagged.
        let mut drifted = archived;
        drifted[0].processed += 1;
        assert_eq!(check_gateway_archive(&rows, &drifted).len(), 1);
    }
}
