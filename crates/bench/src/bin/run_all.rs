//! Runs every figure, table and ablation in sequence, writing all JSON
//! artifacts (the data behind EXPERIMENTS.md).

use bf_bench::*;

fn main() {
    println!("=== Fig. 4(a) ===");
    let rows = fig4a_rows();
    print!("{}", render_sweep("R/W RTT vs total size", &rows));
    save_json("fig4a", &rows);

    println!("\n=== Fig. 4(b) ===");
    let rows = fig4b_rows();
    print!("{}", render_sweep("Sobel latency vs image size", &rows));
    save_json("fig4b", &rows);

    println!("\n=== Fig. 4(c) ===");
    let rows = fig4c_rows();
    print!("{}", render_sweep("MM latency vs matrix size", &rows));
    save_json("fig4c", &rows);

    println!("\n=== Table I ===");
    save_json("table1", &table1_rows());
    println!("(written)");

    println!("\n=== Table II (Sobel) ===");
    let results = table2_results();
    for r in &results {
        print!("{}", r.render_per_function());
    }
    save_json("table2", &results);

    println!("\n=== Table III (MM) ===");
    let results = table3_results();
    for r in &results {
        print!("{}", r.render_aggregate());
    }
    save_json("table3", &results);

    println!("\n=== Table IV (AlexNet) ===");
    let results = table4_results();
    for r in &results {
        print!("{}", r.render_aggregate());
    }
    save_json("table4", &results);

    println!("\n=== Ablations ===");
    let rows = ablation_alloc();
    print!("{}", render_ablation("allocation policy", &rows));
    save_json("ablation_alloc", &rows);
    let rows = ablation_transport();
    print!("{}", render_ablation("data path", &rows));
    save_json("ablation_transport", &rows);
    let rows = ablation_taskgrain();
    print!("{}", render_ablation("task granularity", &rows));
    save_json("ablation_taskgrain", &rows);
    let rows = ablation_spacesharing();
    print!("{}", render_ablation("space sharing", &rows));
    save_json("ablation_spacesharing", &rows);

    println!("\nAll artifacts in target/experiments/.");
}
