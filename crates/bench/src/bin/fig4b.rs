//! Regenerates Fig. 4(b): Sobel request latency vs image size.

use bf_bench::{fig4b_rows, render_sweep, save_json};

fn main() {
    let rows = fig4b_rows();
    print!(
        "{}",
        render_sweep("Fig. 4(b) — Sobel latency vs image size", &rows)
    );
    if let Some(last) = rows.last() {
        println!(
            "\nAt 1920x1080: native {:.2} ms (paper: 14.53 ms); shm overhead {:.2} ms (paper: ~2 ms).",
            last.native_ms,
            last.shm_overhead_ms()
        );
    }
    let path = save_json("fig4b", &rows);
    println!("JSON artifact: {}", path.display());
}
