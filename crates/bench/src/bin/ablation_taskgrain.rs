//! Ablation: PipeCNN's per-layer synchronization vs one batched task.

use bf_bench::{ablation_taskgrain, render_ablation, save_json};

fn main() {
    let rows = ablation_taskgrain();
    print!(
        "{}",
        render_ablation("Task-granularity ablation — AlexNet, medium load", &rows)
    );
    println!("\nBatching the layer launches into one task removes the per-layer");
    println!("control RTTs — the future-work direction Table IV motivates.");
    let path = save_json("ablation_taskgrain", &rows);
    println!("JSON artifact: {}", path.display());
}
