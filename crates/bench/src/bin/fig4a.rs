//! Regenerates Fig. 4(a): R/W round-trip time vs total transfer size.

use bf_bench::{fig4a_rows, render_sweep, save_json};

fn main() {
    let rows = fig4a_rows();
    print!(
        "{}",
        render_sweep(
            "Fig. 4(a) — synchronous write+read RTT vs total size",
            &rows
        )
    );
    if let Some(last) = rows.last() {
        println!(
            "\nAt 2 GB: gRPC is {:.1}x native (paper: ~4x); shm overhead {:.0} ms (paper: 155 ms).",
            last.grpc_ratio(),
            last.shm_overhead_ms()
        );
    }
    let path = save_json("fig4a", &rows);
    println!("JSON artifact: {}", path.display());
}
