//! Ablation: shared-memory vs pure-gRPC data path under real load.

use bf_bench::{ablation_transport, render_ablation, save_json};

fn main() {
    let rows = ablation_transport();
    print!(
        "{}",
        render_ablation("Data-path ablation — medium load, per use case", &rows)
    );
    let path = save_json("ablation_transport", &rows);
    println!("\nJSON artifact: {}", path.display());
}
