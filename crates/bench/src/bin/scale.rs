//! The production-day scale sweep: diurnal open-loop traffic with Zipf
//! function popularity over a 1000-node cluster, full fault battery,
//! everything in virtual time and fully deterministic.
//!
//! Usage:
//!
//! * `scale` — full ladder (small/medium/large), writes
//!   `target/experiments/BENCH_scale.json`.
//! * `scale --smoke` — CI subset (the small point; its row is directly
//!   comparable to the archive).
//! * `scale [--smoke] --check <archived.json>` — additionally compares
//!   every deterministic field — trace digest included — against an
//!   archived run and exits non-zero on drift.

use std::process::ExitCode;

use bf_bench::{
    check_scale_archive, check_scale_invariants, parse_scale_archive, render_scale, save_json,
    scale_rows, SCALE_LADDER, SCALE_SMOKE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1));

    let labels: &[&str] = if smoke { &SCALE_SMOKE } else { &SCALE_LADDER };
    let rows = scale_rows(labels);
    print!(
        "{}",
        render_scale(
            "Scale — production-day sweep (diurnal Zipf traffic, full fault battery)",
            &rows
        )
    );

    if !smoke {
        let path = save_json("BENCH_scale", &rows);
        println!("\nJSON artifact: {}", path.display());
    }

    if let Err(msg) = check_scale_invariants(&rows) {
        eprintln!("scale invariant violated: {msg}");
        return ExitCode::FAILURE;
    }

    if let Some(path) = check_path {
        // bf-lint: allow(panic): a missing or malformed archive must fail
        // the CI step loudly.
        let raw = std::fs::read_to_string(path).expect("read archived scale JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let doc = serde_json::from_str(&raw).expect("parse archived scale JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let archived = parse_scale_archive(&doc).expect("archived scale JSON shape");
        let mismatches = check_scale_archive(&rows, &archived);
        if !mismatches.is_empty() {
            eprintln!("scale sweep drifted from {path}:");
            for m in &mismatches {
                eprintln!("  {m}");
            }
            return ExitCode::FAILURE;
        }
        println!("scale sweep matches {path}");
    }
    ExitCode::SUCCESS
}
