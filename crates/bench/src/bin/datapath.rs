//! Measures host-side copy volume and wall-clock per EnqueueWrite→Read
//! round trip over both BlastFunction transports.
//!
//! Usage:
//!
//! * `datapath` — full 1 KB → 2 GB ladder, writes
//!   `target/experiments/BENCH_datapath.json`.
//! * `datapath --smoke` — CI subset (sizes ≤ 1 MB).
//! * `datapath [--smoke] --check <archived.json>` — additionally compares
//!   the deterministic copy-accounting fields against an archived run and
//!   exits non-zero on drift.

use std::process::ExitCode;

use bf_bench::{
    check_against_archive, datapath_rows, parse_archive, render_datapath, save_json, LADDER, SMOKE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1));

    let sizes: &[u64] = if smoke { &SMOKE } else { &LADDER };
    let rows = datapath_rows(sizes);
    print!(
        "{}",
        render_datapath(
            "Datapath — host bytes memcpy'd and wall-clock per write+read round trip",
            &rows
        )
    );

    if !smoke {
        let path = save_json("BENCH_datapath", &rows);
        println!("\nJSON artifact: {}", path.display());
    }

    if let Some(path) = check_path {
        // bf-lint: allow(panic): a missing or malformed archive must fail
        // the CI step loudly.
        let raw = std::fs::read_to_string(path).expect("read archived datapath JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let doc = serde_json::from_str(&raw).expect("parse archived datapath JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let archived = parse_archive(&doc).expect("archived datapath JSON shape");
        let mismatches = check_against_archive(&rows, &archived);
        if !mismatches.is_empty() {
            eprintln!("datapath copy accounting drifted from {path}:");
            for m in &mismatches {
                eprintln!("  {m}");
            }
            return ExitCode::FAILURE;
        }
        println!("copy accounting matches {path}");
    }
    ExitCode::SUCCESS
}
