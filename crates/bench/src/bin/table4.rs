//! Regenerates Table IV: PipeCNN (AlexNet) aggregate results.

use bf_bench::{save_json, table4_results};

fn main() {
    println!("Table IV — PipeCNN/AlexNet aggregates (utilization max 300%)\n");
    println!(
        "{:<16} {:<12} {:>12} {:>11} {:>12} {:>12}",
        "Type", "Config", "Utilization", "Latency", "Processed", "Target"
    );
    let results = table4_results();
    for result in &results {
        print!("{}", result.render_aggregate());
    }
    println!("\nThe BlastFunction latency gap is the per-layer control RTTs of");
    println!("PipeCNN's host loop (~30 synchronized kernel invocations/inference).");
    let path = save_json("table4", &results);
    println!("JSON artifact: {}", path.display());
}
