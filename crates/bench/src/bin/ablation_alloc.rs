//! Ablation: how much the registry's allocation policy matters.

use bf_bench::{ablation_alloc, render_ablation, save_json};

fn main() {
    let rows = ablation_alloc();
    print!(
        "{}",
        render_ablation(
            "Allocation-policy ablation — Sobel, high load, BlastFunction shm",
            &rows
        )
    );
    let path = save_json("ablation_alloc", &rows);
    println!("\nJSON artifact: {}", path.display());
}
