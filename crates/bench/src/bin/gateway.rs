//! Open-loop arrival-rate sweep of the gateway's batched vs unbatched
//! invocation queues (virtual time; fully deterministic).
//!
//! Usage:
//!
//! * `gateway` — full rate ladder, writes
//!   `target/experiments/BENCH_gateway.json`.
//! * `gateway --smoke` — CI subset (same virtual duration, so rows are
//!   directly comparable to the archive).
//! * `gateway [--smoke] --check <archived.json>` — additionally compares
//!   every deterministic field against an archived run, re-asserts that
//!   batched peak throughput strictly beats unbatched, and exits
//!   non-zero on drift.

use std::process::ExitCode;

use bf_bench::{
    check_batching_wins, check_gateway_archive, gateway_rows, parse_gateway_archive,
    render_gateway, save_json, GATEWAY_LADDER, GATEWAY_SMOKE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1));

    let rates: &[f64] = if smoke {
        &GATEWAY_SMOKE
    } else {
        &GATEWAY_LADDER
    };
    let rows = gateway_rows(rates);
    print!(
        "{}",
        render_gateway(
            "Gateway — open-loop Sobel sweep, batched vs unbatched invocation queues",
            &rows
        )
    );

    if !smoke {
        let path = save_json("BENCH_gateway", &rows);
        println!("\nJSON artifact: {}", path.display());
    }

    if let Err(msg) = check_batching_wins(&rows) {
        eprintln!("batching regression: {msg}");
        return ExitCode::FAILURE;
    }

    if let Some(path) = check_path {
        // bf-lint: allow(panic): a missing or malformed archive must fail
        // the CI step loudly.
        let raw = std::fs::read_to_string(path).expect("read archived gateway JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let doc = serde_json::from_str(&raw).expect("parse archived gateway JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let archived = parse_gateway_archive(&doc).expect("archived gateway JSON shape");
        let mismatches = check_gateway_archive(&rows, &archived);
        if !mismatches.is_empty() {
            eprintln!("gateway sweep drifted from {path}:");
            for m in &mismatches {
                eprintln!("  {m}");
            }
            return ExitCode::FAILURE;
        }
        println!("gateway sweep matches {path}");
    }
    ExitCode::SUCCESS
}
