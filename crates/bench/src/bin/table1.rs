//! Regenerates Table I: the test-configuration matrix.

use bf_bench::{save_json, table1_rows};

fn main() {
    println!("Table I — requests per second sent to each function\n");
    println!(
        "{:<10} {:<14} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Use-Case", "Configuration", "1st", "2nd", "3rd", "4th", "5th"
    );
    let rows = table1_rows();
    for row in &rows {
        println!(
            "{:<10} {:<14} {:>5} rq/s {:>4} rq/s {:>4} rq/s {:>4} rq/s {:>4} rq/s",
            row.use_case,
            row.configuration,
            row.rates[0],
            row.rates[1],
            row.rates[2],
            row.rates[3],
            row.rates[4]
        );
    }
    println!("\n(The Native scenario uses only the first 3 columns.)");
    let path = save_json("table1", &rows);
    println!("JSON artifact: {}", path.display());
}
