//! The federated control-plane ladder: the production-day placement
//! workload at 1, 4 and 16 registry shards, fully deterministic.
//!
//! Usage:
//!
//! * `federation` — full ladder (smoke points plus 1/4/16-shard
//!   production days), writes `target/experiments/BENCH_federation.json`.
//! * `federation --smoke` — CI subset (both 100-node points, so the
//!   1-vs-16-shard contention gate still runs).
//! * `federation [--smoke] --check <archived.json>` — additionally
//!   compares every deterministic field — trace digest included —
//!   against an archived run and exits non-zero on drift.

use std::process::ExitCode;

use bf_bench::{
    check_federation_archive, check_federation_invariants, federation_rows,
    parse_federation_archive, render_federation, save_json, FEDERATION_LADDER, FEDERATION_SMOKE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1));

    let labels: &[&str] = if smoke {
        &FEDERATION_SMOKE
    } else {
        &FEDERATION_LADDER
    };
    let rows = federation_rows(labels);
    print!(
        "{}",
        render_federation(
            "Federation — sharded control plane (placement storm, churn, failures, rebalance)",
            &rows
        )
    );

    if !smoke {
        let path = save_json("BENCH_federation", &rows);
        println!("\nJSON artifact: {}", path.display());
    }

    if let Err(msg) = check_federation_invariants(&rows) {
        eprintln!("federation invariant violated: {msg}");
        return ExitCode::FAILURE;
    }

    if let Some(path) = check_path {
        // bf-lint: allow(panic): a missing or malformed archive must fail
        // the CI step loudly.
        let raw = std::fs::read_to_string(path).expect("read archived federation JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let doc = serde_json::from_str(&raw).expect("parse archived federation JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let archived = parse_federation_archive(&doc).expect("archived federation JSON shape");
        let mismatches = check_federation_archive(&rows, &archived);
        if !mismatches.is_empty() {
            eprintln!("federation ladder drifted from {path}:");
            for m in &mismatches {
                eprintln!("  {m}");
            }
            return ExitCode::FAILURE;
        }
        println!("federation ladder matches {path}");
    }
    ExitCode::SUCCESS
}
