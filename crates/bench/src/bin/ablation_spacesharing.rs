//! Ablation: time-sharing vs space-sharing (the paper's future work).

use bf_bench::{ablation_spacesharing, render_ablation, save_json};

fn main() {
    let rows = ablation_spacesharing();
    print!(
        "{}",
        render_ablation(
            "Space-sharing ablation — AlexNet, high load, BlastFunction shm",
            &rows
        )
    );
    println!("\nSmaller parallel regions trade per-request latency (slower kernels)");
    println!("for parallel capacity; whether that wins depends on how much the");
    println!("workload queues — exactly the trade-off the paper defers to future work.");
    let path = save_json("ablation_spacesharing", &rows);
    println!("JSON artifact: {}", path.display());
}
