//! Content-addressed payload-cache sweep: wire bytes per request with
//! and without the Device Manager's cache under Zipf(1.2) payload reuse.
//!
//! Usage:
//!
//! * `cache` — full ladder (hot/churn/big), writes
//!   `target/experiments/BENCH_cache.json`.
//! * `cache --smoke` — CI subset (hot + churn; their rows are directly
//!   comparable to the archive).
//! * `cache [--smoke] --check <archived.json>` — additionally compares
//!   every deterministic field against an archived run and exits
//!   non-zero on drift.

use std::process::ExitCode;

use bf_bench::{
    cache_rows, check_cache_archive, check_cache_invariants, parse_cache_archive, render_cache,
    save_json, CACHE_LADDER, CACHE_SMOKE,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1));

    let labels: &[&str] = if smoke { &CACHE_SMOKE } else { &CACHE_LADDER };
    let rows = cache_rows(labels);
    print!(
        "{}",
        render_cache(
            "Cache — content-addressed payload cache (Zipf(1.2) reuse, gRPC path)",
            &rows
        )
    );

    if !smoke {
        let path = save_json("BENCH_cache", &rows);
        println!("\nJSON artifact: {}", path.display());
    }

    if let Err(msg) = check_cache_invariants(&rows) {
        eprintln!("cache invariant violated: {msg}");
        return ExitCode::FAILURE;
    }

    if let Some(path) = check_path {
        // bf-lint: allow(panic): a missing or malformed archive must fail
        // the CI step loudly.
        let raw = std::fs::read_to_string(path).expect("read archived cache JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let doc = serde_json::from_str(&raw).expect("parse archived cache JSON");
        // bf-lint: allow(panic): same rationale — drifted or malformed
        // archives must fail CI loudly.
        let archived = parse_cache_archive(&doc).expect("archived cache JSON shape");
        let mismatches = check_cache_archive(&rows, &archived);
        if !mismatches.is_empty() {
            eprintln!("cache sweep drifted from {path}:");
            for m in &mismatches {
                eprintln!("  {m}");
            }
            return ExitCode::FAILURE;
        }
        println!("cache sweep matches {path}");
    }
    ExitCode::SUCCESS
}
