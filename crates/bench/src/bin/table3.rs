//! Regenerates Table III: MM multi-function aggregate results.

use bf_bench::{save_json, table3_results};

fn main() {
    println!("Table III — MM aggregates (utilization max 300%)\n");
    println!(
        "{:<16} {:<12} {:>12} {:>11} {:>12} {:>12}",
        "Type", "Config", "Utilization", "Latency", "Processed", "Target"
    );
    let results = table3_results();
    for result in &results {
        print!("{}", result.render_aggregate());
    }
    let path = save_json("table3", &results);
    println!("\nJSON artifact: {}", path.display());
}
