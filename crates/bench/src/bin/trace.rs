//! Exports a Chrome-trace (Perfetto) timeline of one multi-tenant scenario:
//! every task every tenant ran on every board, on the virtual timeline.
//!
//! Open the resulting JSON in `chrome://tracing` or <https://ui.perfetto.dev>.

use bf_model::{DataPathKind, VirtualDuration};
use bf_serverless::{LoadLevel, UseCase};
use bf_sim::{run_scenario, Deployment, ScenarioConfig};

fn main() -> std::io::Result<()> {
    let cfg = ScenarioConfig::new(
        UseCase::Sobel,
        LoadLevel::High,
        Deployment::BlastFunction {
            data_path: DataPathKind::SharedMemory,
        },
    )
    .with_duration(VirtualDuration::from_secs(10));
    let result = run_scenario(&cfg);
    let dir = std::path::PathBuf::from("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("trace_sobel_high_bf.json");
    std::fs::write(&path, result.to_chrome_trace())?;
    println!(
        "Wrote {} spans across {} devices to {}",
        result.timeline.len(),
        result.device_utilization.len(),
        path.display()
    );
    println!("Open it in chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
