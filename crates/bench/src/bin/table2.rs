//! Regenerates Table II: Sobel multi-function results (per function).

use bf_bench::{save_json, table2_results};

fn main() {
    println!("Table II — Sobel multi-function results (utilization max 300% overall)\n");
    let results = table2_results();
    for result in &results {
        print!("{}", result.render_per_function());
        println!(
            "  -> aggregate: {:.2}% util, {:.2} ms, {:.2}/{:.0} rq/s (miss {:.2}%)\n",
            result.aggregate.utilization_pct,
            result.aggregate.mean_latency_ms,
            result.aggregate.processed_rps,
            result.aggregate.target_rps,
            result.aggregate.target_miss_pct()
        );
    }
    let path = save_json("table2", &results);
    println!("JSON artifact: {}", path.display());
}
