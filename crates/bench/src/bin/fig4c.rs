//! Regenerates Fig. 4(c): MM request latency vs matrix size.

use bf_bench::{fig4c_rows, render_sweep, save_json};

fn main() {
    let rows = fig4c_rows();
    print!(
        "{}",
        render_sweep("Fig. 4(c) — MM latency vs matrix size", &rows)
    );
    if let Some(last) = rows.last() {
        println!(
            "\nAt 4096: native {:.3} s (paper: 3.571 s); shm overhead {:.1} ms (paper: 17 ms, 0.27%).",
            last.native_ms / 1e3,
            last.shm_overhead_ms()
        );
    }
    let path = save_json("fig4c", &rows);
    println!("JSON artifact: {}", path.display());
}
