//! The production-day scale sweep: the trace-driven control-plane
//! benchmark over the [`bf_sim::run_scale`] harness.
//!
//! Three ladder points grow the cluster from the CI smoke size to the
//! full 1000-node / 10k-function production day, all with the complete
//! fault battery (node losses, slow consumers, a shed storm and a
//! stalled-watcher window). Every row is deterministic down to the
//! trace digest, so the whole row set is CI-diffable against the
//! archived `experiments/BENCH_scale.json` — the digest column doubles
//! as the byte-identical-replay certificate for each point.

use serde::Serialize;

use bf_sim::{run_scale, ScaleConfig};

/// Root seed of every ladder point.
pub const SCALE_SEED: u64 = 42;

/// Ladder labels in sweep order.
pub const SCALE_LADDER: [&str; 3] = ["small", "medium", "large"];

/// The CI smoke subset: the small point only, which still runs 100
/// nodes / 1k functions with the full fault battery.
pub const SCALE_SMOKE: [&str; 1] = ["small"];

/// Resolves a ladder label to its configuration. The `small` point is
/// [`ScaleConfig::smoke`] and the `large` point is
/// [`ScaleConfig::production_day`]; `medium` sits between them.
///
/// # Panics
///
/// Panics on an unknown label (the ladder is a closed set).
pub fn scale_config(label: &str) -> ScaleConfig {
    match label {
        "small" => ScaleConfig::smoke(SCALE_SEED),
        "medium" => ScaleConfig::production_day(SCALE_SEED)
            .with_nodes(300)
            .with_functions(3_000)
            .with_sessions(3_000)
            .with_day(bf_model::VirtualDuration::from_secs(30))
            .with_base_rps(400.0),
        "large" => ScaleConfig::production_day(SCALE_SEED),
        // bf-lint: allow(panic): the ladder is a closed set; an unknown
        // label is a harness bug, never a runtime condition.
        other => panic!("unknown scale ladder point {other:?}"),
    }
}

/// One measured ladder point. Every field is deterministic.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleBenchRow {
    /// Ladder label.
    pub label: String,
    /// Cluster size.
    pub nodes: u64,
    /// Function catalog size.
    pub functions: u64,
    /// Client sessions.
    pub sessions: u64,
    /// Arrivals inside the day.
    pub arrivals: u64,
    /// Completed requests.
    pub processed: u64,
    /// Requests shed at full node queues.
    pub shed: u64,
    /// Requests lost in flight to node deaths.
    pub failed_inflight: u64,
    /// Node-death events.
    pub node_losses: u64,
    /// Instances migrated off dead nodes.
    pub rerouted: u64,
    /// Slow-consumer forced disconnects.
    pub force_disconnects: u64,
    /// Payload-cache hits across admitted requests.
    pub cache_hits: u64,
    /// Payload-cache misses across admitted requests.
    pub cache_misses: u64,
    /// Payload-cache hit ratio over the day.
    pub cache_hit_ratio: f64,
    /// Wire bytes the payload cache elided.
    pub cache_bytes_saved: u64,
    /// Median latency (ms).
    pub latency_p50_ms: f64,
    /// 99th-percentile latency (ms).
    pub latency_p99_ms: f64,
    /// Completed poller polls.
    pub poller_polls: u64,
    /// Slots examined across all poller scans.
    pub poller_slots_scanned: u64,
    /// Watch events generated.
    pub watch_events: u64,
    /// Watch channel deliveries performed.
    pub watch_deliveries: u64,
    /// Watch events consumed by the harness.
    pub watch_seen: u64,
    /// Metric series registered.
    pub metrics_series: u64,
    /// Registry shards.
    pub metrics_shards: u64,
    /// Series behind the most loaded registry shard.
    pub metrics_max_shard: u64,
    /// The byte-identical-replay certificate.
    pub trace_digest: String,
}

fn measure_one(label: &str) -> ScaleBenchRow {
    let r = run_scale(&scale_config(label));
    ScaleBenchRow {
        label: label.to_string(),
        nodes: r.nodes,
        functions: r.functions,
        sessions: r.sessions,
        arrivals: r.arrivals,
        processed: r.processed,
        shed: r.shed,
        failed_inflight: r.failed_inflight,
        node_losses: r.node_losses,
        rerouted: r.rerouted,
        force_disconnects: r.force_disconnects,
        cache_hits: r.cache_hits,
        cache_misses: r.cache_misses,
        cache_hit_ratio: r.cache_hit_ratio,
        cache_bytes_saved: r.cache_bytes_saved,
        latency_p50_ms: r.latency_p50_ms,
        latency_p99_ms: r.latency_p99_ms,
        poller_polls: r.poller_polls,
        poller_slots_scanned: r.poller_slots_scanned,
        watch_events: r.watch_events,
        watch_deliveries: r.watch_deliveries,
        watch_seen: r.watch_seen,
        metrics_series: r.metrics_series,
        metrics_shards: r.metrics_shards,
        metrics_max_shard: r.metrics_max_shard,
        trace_digest: r.trace_digest,
    }
}

/// Runs the sweep over the given ladder labels.
pub fn scale_rows(labels: &[&str]) -> Vec<ScaleBenchRow> {
    labels.iter().map(|l| measure_one(l)).collect()
}

/// Checks the harness invariants every row must satisfy regardless of
/// the archive: request conservation and fault-battery visibility.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_scale_invariants(rows: &[ScaleBenchRow]) -> Result<(), String> {
    for r in rows {
        if r.arrivals != r.processed + r.shed + r.failed_inflight {
            return Err(format!(
                "{}: arrivals {} != processed {} + shed {} + failed_inflight {}",
                r.label, r.arrivals, r.processed, r.shed, r.failed_inflight
            ));
        }
        if r.node_losses == 0 || r.rerouted == 0 {
            return Err(format!(
                "{}: fault battery invisible (node_losses {}, rerouted {})",
                r.label, r.node_losses, r.rerouted
            ));
        }
        if r.watch_seen < r.functions {
            return Err(format!(
                "{}: watchers missed the deploy storm ({} seen, {} functions)",
                r.label, r.watch_seen, r.functions
            ));
        }
    }
    Ok(())
}

/// Renders the sweep as an aligned text table.
pub fn render_scale(title: &str, rows: &[ScaleBenchRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<8} {:>6} {:>6} {:>9} {:>9} {:>7} {:>7} {:>6} {:>6} {:>9} {:>13} {:>9} {:>10} {:>8} {:>17}\n",
        "point",
        "nodes",
        "fns",
        "arrivals",
        "processed",
        "shed",
        "failed",
        "p99",
        "hit%",
        "polls",
        "slots_scanned",
        "watch_ev",
        "deliveries",
        "maxshard",
        "digest"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>6} {:>6} {:>9} {:>9} {:>7} {:>7} {:>4.1}ms {:>5.1}% {:>9} {:>13} {:>9} {:>10} {:>8} {:>17}\n",
            r.label,
            r.nodes,
            r.functions,
            r.arrivals,
            r.processed,
            r.shed,
            r.failed_inflight,
            r.latency_p99_ms,
            r.cache_hit_ratio * 100.0,
            r.poller_polls,
            r.poller_slots_scanned,
            r.watch_events,
            r.watch_deliveries,
            r.metrics_max_shard,
            r.trace_digest,
        ));
    }
    out
}

/// One archived row (every field is deterministic, so all are compared).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchivedScaleRow {
    /// Ladder label.
    pub label: String,
    /// Arrivals inside the day.
    pub arrivals: u64,
    /// Completed requests.
    pub processed: u64,
    /// Sheds.
    pub shed: u64,
    /// In-flight losses.
    pub failed_inflight: u64,
    /// Node-death events.
    pub node_losses: u64,
    /// Migrated instances.
    pub rerouted: u64,
    /// Forced disconnects.
    pub force_disconnects: u64,
    /// Watch events generated.
    pub watch_events: u64,
    /// Watch events consumed.
    pub watch_seen: u64,
    /// Metric series registered.
    pub metrics_series: u64,
    /// The replay certificate.
    pub trace_digest: String,
}

/// Extracts the comparable fields from an archived `BENCH_scale.json`
/// document. Returns `None` when the document does not have the
/// expected shape.
pub fn parse_scale_archive(doc: &serde_json::Value) -> Option<Vec<ArchivedScaleRow>> {
    doc.as_array()?
        .iter()
        .map(|row| {
            let obj = row.as_object()?;
            Some(ArchivedScaleRow {
                label: obj.get("label")?.as_str()?.to_string(),
                arrivals: obj.get("arrivals")?.as_u64()?,
                processed: obj.get("processed")?.as_u64()?,
                shed: obj.get("shed")?.as_u64()?,
                failed_inflight: obj.get("failed_inflight")?.as_u64()?,
                node_losses: obj.get("node_losses")?.as_u64()?,
                rerouted: obj.get("rerouted")?.as_u64()?,
                force_disconnects: obj.get("force_disconnects")?.as_u64()?,
                watch_events: obj.get("watch_events")?.as_u64()?,
                watch_seen: obj.get("watch_seen")?.as_u64()?,
                metrics_series: obj.get("metrics_series")?.as_u64()?,
                trace_digest: obj.get("trace_digest")?.as_str()?.to_string(),
            })
        })
        .collect()
}

/// Compares `rows` against the matching rows of an archived run,
/// returning mismatch descriptions (empty when consistent). Rows
/// missing from the archive are ignored, so the `--smoke` subset checks
/// cleanly against a full-ladder archive.
pub fn check_scale_archive(rows: &[ScaleBenchRow], archived: &[ArchivedScaleRow]) -> Vec<String> {
    let mut mismatches = Vec::new();
    for r in rows {
        let Some(a) = archived.iter().find(|a| a.label == r.label) else {
            continue;
        };
        let mut diff = |field: &str, got: u64, want: u64| {
            if got != want {
                mismatches.push(format!("{}: {field} {got} != archived {want}", r.label));
            }
        };
        diff("arrivals", r.arrivals, a.arrivals);
        diff("processed", r.processed, a.processed);
        diff("shed", r.shed, a.shed);
        diff("failed_inflight", r.failed_inflight, a.failed_inflight);
        diff("node_losses", r.node_losses, a.node_losses);
        diff("rerouted", r.rerouted, a.rerouted);
        diff(
            "force_disconnects",
            r.force_disconnects,
            a.force_disconnects,
        );
        diff("watch_events", r.watch_events, a.watch_events);
        diff("watch_seen", r.watch_seen, a.watch_seen);
        diff("metrics_series", r.metrics_series, a.metrics_series);
        if r.trace_digest != a.trace_digest {
            mismatches.push(format!(
                "{}: trace_digest {} != archived {}",
                r.label, r.trace_digest, a.trace_digest
            ));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_labels_are_a_subset_of_the_ladder() {
        for label in SCALE_SMOKE {
            assert!(SCALE_LADDER.contains(&label));
        }
    }

    #[test]
    fn every_ladder_label_resolves() {
        for label in SCALE_LADDER {
            let cfg = scale_config(label);
            assert!(cfg.nodes > 0);
        }
    }

    #[test]
    fn smoke_row_satisfies_the_invariants_and_round_trips() {
        let rows = scale_rows(&SCALE_SMOKE);
        assert!(check_scale_invariants(&rows).is_ok(), "{rows:?}");
        let json = serde_json::to_string_pretty(&rows).expect("serialize");
        let doc = serde_json::from_str(&json).expect("parse");
        let archived = parse_scale_archive(&doc).expect("shape");
        assert!(check_scale_archive(&rows, &archived).is_empty());
        // A drifted archive is flagged.
        let mut drifted = archived;
        drifted[0].trace_digest = "0".repeat(16);
        assert_eq!(check_scale_archive(&rows, &drifted).len(), 1);
    }
}
