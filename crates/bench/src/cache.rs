//! Content-addressed payload-cache benchmark: wire bytes moved per
//! request with and without the Device Manager's cache.
//!
//! Each ladder point drives one manager over the gRPC data path with a
//! Zipf(1.2) request stream over a catalog of distinct payloads — the
//! serverless hot-set shape (a few popular function inputs dominate the
//! stream). With the cache off every request ships its payload inline;
//! with it on, a repeat of content the manager still holds travels as a
//! 16-byte (truncated SHA-256) digest reference and the host tier
//! resolves it locally, so
//! the wire carries payload bytes only for first occurrences and
//! post-eviction resends (the `CacheMiss` NACK path).
//!
//! Every CI-compared field is deterministic: the request stream is
//! seeded, the client session serializes operations, and the manager's
//! [`bf_cache::CacheStats`] counters account for every elided byte —
//! `wire_bytes = offered - bytes_saved` exactly. The `churn` point
//! deliberately overflows the host tier so the eviction and NACK-resend
//! machinery is exercised (and archived), not just the pure-hit path.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::Serialize;

use bf_cache::CacheStats;
use bf_devmgr::{DeviceManager, DeviceManagerConfig};
use bf_fpga::{Board, BoardSpec, Payload};
use bf_model::{node_b, VirtualClock};
use bf_ocl::{BitstreamCatalog, ClResult};
use bf_remote::Router;
use bf_rpc::PathCosts;
use bf_simkit::{SimRng, ZipfSampler};

/// Root seed of the request stream (one fresh stream per measured row).
pub const CACHE_SEED: u64 = 101;

/// Zipf exponent of the payload popularity distribution.
pub const CACHE_ZIPF_EXPONENT: f64 = 1.2;

/// Ladder labels in sweep order.
pub const CACHE_LADDER: [&str; 3] = ["hot", "churn", "big"];

/// The CI smoke subset (kept small so the gate stays cheap; `churn`
/// stays in so eviction/NACK-resend accounting is CI-pinned too).
pub const CACHE_SMOKE: [&str; 2] = ["hot", "churn"];

/// One ladder point's workload shape.
#[derive(Debug, Clone, Copy)]
pub struct CachePoint {
    /// Ladder label.
    pub label: &'static str,
    /// Size of every payload in the catalog.
    pub payload_bytes: u64,
    /// Distinct payload contents.
    pub catalog: usize,
    /// Requests drawn from the Zipf stream.
    pub requests: u32,
    /// Host-tier cache budget for the cache-enabled run.
    pub capacity: u64,
}

/// Resolves a ladder label to its workload shape.
///
/// # Panics
///
/// Panics on an unknown label (the ladder is a closed set).
pub fn cache_point(label: &str) -> CachePoint {
    match label {
        // Hot set fits entirely: after first occurrences, every request
        // is a digest hit.
        "hot" => CachePoint {
            label: "hot",
            payload_bytes: 64 << 10,
            catalog: 48,
            requests: 1_200,
            capacity: 64 * (64 << 10),
        },
        // Catalog is ~2.7x the cache budget: the Zipf head stays
        // resident, the tail churns through eviction and NACK resends.
        "churn" => CachePoint {
            label: "churn",
            payload_bytes: 64 << 10,
            catalog: 256,
            requests: 1_600,
            capacity: 96 * (64 << 10),
        },
        // Megabyte payloads: the regime where elided transfers dominate
        // end-to-end cost.
        "big" => CachePoint {
            label: "big",
            payload_bytes: 1 << 20,
            catalog: 24,
            requests: 300,
            capacity: 32 << 20,
        },
        // bf-lint: allow(panic): the ladder is a closed set; an unknown
        // label is a harness bug, never a runtime condition.
        other => panic!("unknown cache ladder point {other:?}"),
    }
}

/// One measured (point, system) row. Every field is deterministic: the
/// client session serializes operations, so hit/miss/eviction order is a
/// pure function of the seeded request stream.
#[derive(Debug, Clone, Serialize)]
pub struct CacheBenchRow {
    /// Ladder label.
    pub label: String,
    /// `"cache"` or `"nocache"`.
    pub system: String,
    /// Payload size.
    pub payload_bytes: u64,
    /// Distinct payload contents in the catalog.
    pub catalog: u64,
    /// Requests driven.
    pub requests: u64,
    /// Payload bytes the request stream asked to move.
    pub offered_bytes: u64,
    /// Payload bytes that actually crossed the wire inline.
    pub wire_bytes: u64,
    /// Wire payload bytes per request.
    pub wire_bytes_per_request: u64,
    /// Host-tier digest hits (requests served without wire payload).
    pub hits: u64,
    /// Host-tier misses (first occurrences plus post-eviction NACKs).
    pub misses: u64,
    /// Host-tier hit ratio.
    pub hit_ratio: f64,
    /// Host-tier evictions (the churn point must show some).
    pub evictions: u64,
    /// Device-tier hits (identical re-writes that skipped the DMA).
    pub device_hits: u64,
    /// `nocache / cache` wire-bytes-per-request reduction, on cache rows.
    pub reduction: Option<f64>,
}

/// Distinct, deterministic payload contents for catalog entry `i`.
fn catalog_payload(i: usize, bytes: u64) -> Payload {
    let fill: Vec<u8> = (0..bytes)
        .map(|j| ((i as u64).wrapping_mul(131).wrapping_add(j) % 251) as u8)
        .collect();
    fill.into()
}

fn drive(point: &CachePoint, with_cache: bool) -> ClResult<(u64, Option<CacheStats>)> {
    let board = Arc::new(Mutex::new(Board::new(
        BoardSpec::de5a_net(),
        *node_b().pcie(),
    )));
    let mut config = DeviceManagerConfig::standalone("fpga-b");
    if with_cache {
        config = config.with_payload_cache(point.capacity);
    }
    let manager = DeviceManager::new(config, node_b(), board, BitstreamCatalog::new());
    let mut router = Router::new();
    router.add_manager(manager);
    let clock = VirtualClock::new();
    let device = router.connect(0, "cache-fn", PathCosts::local_grpc(), clock)?;
    let ctx = device.create_context()?;
    let buf = ctx.create_buffer(point.payload_bytes)?;
    let queue = ctx.create_queue()?;

    let payloads: Vec<Payload> = (0..point.catalog)
        .map(|i| catalog_payload(i, point.payload_bytes))
        .collect();
    let mut rng = SimRng::seed_from_u64(CACHE_SEED);
    let zipf = ZipfSampler::new(point.catalog, CACHE_ZIPF_EXPONENT);

    let mut offered = 0u64;
    for _ in 0..point.requests {
        let i = zipf.sample(&mut rng);
        queue.write(&buf, payloads[i].clone())?;
        offered += point.payload_bytes;
    }
    Ok((offered, router.managers()[0].cache_stats()))
}

fn measure_one(point: &CachePoint, with_cache: bool) -> CacheBenchRow {
    // bf-lint: allow(panic): the rig drives a fixed known-good
    // deployment; an OpenCL error here is a harness bug.
    let (offered, stats) = drive(point, with_cache).expect("cache bench op on known-good rig");
    let stats = stats.unwrap_or_default();
    let wire = offered - stats.bytes_saved;
    let requests = u64::from(point.requests);
    CacheBenchRow {
        label: point.label.to_string(),
        system: if with_cache { "cache" } else { "nocache" }.to_string(),
        payload_bytes: point.payload_bytes,
        catalog: point.catalog as u64,
        requests,
        offered_bytes: offered,
        wire_bytes: wire,
        wire_bytes_per_request: wire / requests,
        hits: stats.hits,
        misses: stats.misses,
        hit_ratio: stats.hit_ratio(),
        evictions: stats.evictions,
        device_hits: stats.device_hits,
        reduction: None,
    }
}

/// Runs the sweep over the given ladder labels: a `nocache` baseline row
/// then a `cache` row per point, with the cache row's `reduction` filled
/// in from its baseline.
pub fn cache_rows(labels: &[&str]) -> Vec<CacheBenchRow> {
    let mut rows = Vec::new();
    for label in labels {
        let point = cache_point(label);
        let baseline = measure_one(&point, false);
        let mut cached = measure_one(&point, true);
        if cached.wire_bytes_per_request > 0 {
            cached.reduction =
                Some(baseline.wire_bytes_per_request as f64 / cached.wire_bytes_per_request as f64);
        }
        rows.push(baseline);
        rows.push(cached);
    }
    rows
}

/// Checks the invariants every run must satisfy regardless of the
/// archive: accounting conservation, the headline hot-set reduction
/// floor, and eviction-path visibility on the churn point.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_cache_invariants(rows: &[CacheBenchRow]) -> Result<(), String> {
    for r in rows {
        if r.wire_bytes > r.offered_bytes {
            return Err(format!(
                "{} {}: wire {} exceeds offered {}",
                r.label, r.system, r.wire_bytes, r.offered_bytes
            ));
        }
        match r.system.as_str() {
            "nocache" => {
                if r.wire_bytes != r.offered_bytes || r.hits != 0 {
                    return Err(format!(
                        "{} nocache: expected every byte on the wire (wire {}, offered {}, hits {})",
                        r.label, r.wire_bytes, r.offered_bytes, r.hits
                    ));
                }
            }
            "cache" => {
                // `reduction` is left unset when the cache elided every
                // wire byte (a perfect hit run): that is an infinite
                // reduction, not a failing zero.
                let reduction = if r.wire_bytes_per_request == 0 {
                    f64::INFINITY
                } else {
                    r.reduction.unwrap_or(0.0)
                };
                if reduction < 5.0 {
                    return Err(format!(
                        "{}: hot-set wire-bytes reduction {reduction:.2}x under the 5x floor",
                        r.label
                    ));
                }
                if r.hit_ratio <= 0.5 {
                    return Err(format!(
                        "{}: cache hit ratio {:.3} not hit-dominated",
                        r.label, r.hit_ratio
                    ));
                }
                if r.label == "churn" && r.evictions == 0 {
                    return Err("churn: eviction path never exercised".to_string());
                }
            }
            other => return Err(format!("unknown system tag {other:?}")),
        }
    }
    Ok(())
}

/// Renders the sweep as an aligned text table.
pub fn render_cache(title: &str, rows: &[CacheBenchRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<8} {:>8} {:>8} {:>8} {:>9} {:>13} {:>10} {:>7} {:>7} {:>9} {:>9} {:>10}\n",
        "point",
        "path",
        "payload",
        "requests",
        "offered",
        "wire/request",
        "hit ratio",
        "hits",
        "misses",
        "evicted",
        "dev hits",
        "reduction"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>8} {:>8} {:>8} {:>9} {:>13} {:>9.1}% {:>7} {:>7} {:>9} {:>9} {:>10}\n",
            r.label,
            r.system,
            r.payload_bytes,
            r.requests,
            r.offered_bytes,
            r.wire_bytes_per_request,
            r.hit_ratio * 100.0,
            r.hits,
            r.misses,
            r.evictions,
            r.device_hits,
            r.reduction
                .map_or_else(|| "-".to_string(), |f| format!("{f:.2}x")),
        ));
    }
    out
}

/// One archived row (every field is deterministic, so all are compared).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchivedCacheRow {
    /// Ladder label.
    pub label: String,
    /// System tag.
    pub system: String,
    /// Requests driven.
    pub requests: u64,
    /// Offered payload bytes.
    pub offered_bytes: u64,
    /// Inline wire bytes.
    pub wire_bytes: u64,
    /// Host-tier hits.
    pub hits: u64,
    /// Host-tier misses.
    pub misses: u64,
    /// Host-tier evictions.
    pub evictions: u64,
    /// Device-tier hits.
    pub device_hits: u64,
}

/// Extracts the comparable fields from an archived `BENCH_cache.json`
/// document. Returns `None` when the document does not have the expected
/// shape.
pub fn parse_cache_archive(doc: &serde_json::Value) -> Option<Vec<ArchivedCacheRow>> {
    doc.as_array()?
        .iter()
        .map(|row| {
            let obj = row.as_object()?;
            Some(ArchivedCacheRow {
                label: obj.get("label")?.as_str()?.to_string(),
                system: obj.get("system")?.as_str()?.to_string(),
                requests: obj.get("requests")?.as_u64()?,
                offered_bytes: obj.get("offered_bytes")?.as_u64()?,
                wire_bytes: obj.get("wire_bytes")?.as_u64()?,
                hits: obj.get("hits")?.as_u64()?,
                misses: obj.get("misses")?.as_u64()?,
                evictions: obj.get("evictions")?.as_u64()?,
                device_hits: obj.get("device_hits")?.as_u64()?,
            })
        })
        .collect()
}

/// Compares `rows` against the matching rows of an archived run,
/// returning mismatch descriptions (empty when consistent). Rows missing
/// from the archive are ignored, so the `--smoke` subset checks cleanly
/// against a full-ladder archive.
pub fn check_cache_archive(rows: &[CacheBenchRow], archived: &[ArchivedCacheRow]) -> Vec<String> {
    let mut mismatches = Vec::new();
    for r in rows {
        let Some(a) = archived
            .iter()
            .find(|a| a.label == r.label && a.system == r.system)
        else {
            continue;
        };
        let mut diff = |field: &str, got: u64, want: u64| {
            if got != want {
                mismatches.push(format!(
                    "{} {}: {field} {got} != archived {want}",
                    r.label, r.system
                ));
            }
        };
        diff("requests", r.requests, a.requests);
        diff("offered_bytes", r.offered_bytes, a.offered_bytes);
        diff("wire_bytes", r.wire_bytes, a.wire_bytes);
        diff("hits", r.hits, a.hits);
        diff("misses", r.misses, a.misses);
        diff("evictions", r.evictions, a.evictions);
        diff("device_hits", r.device_hits, a.device_hits);
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_labels_are_a_subset_of_the_ladder() {
        for label in CACHE_SMOKE {
            assert!(CACHE_LADDER.contains(&label));
        }
    }

    #[test]
    fn every_ladder_label_resolves() {
        for label in CACHE_LADDER {
            let p = cache_point(label);
            assert!(p.payload_bytes > 0 && p.catalog > 0 && p.requests > 0);
        }
    }

    #[test]
    fn catalog_payloads_are_distinct() {
        let a = catalog_payload(0, 64);
        let b = catalog_payload(1, 64);
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn hot_point_satisfies_the_invariants_and_round_trips() {
        let rows = cache_rows(&["hot"]);
        assert!(check_cache_invariants(&rows).is_ok(), "{rows:?}");
        // bf-lint: allow(panic): test-only serialization of in-memory rows.
        let json = serde_json::to_string_pretty(&rows).expect("serialize");
        // bf-lint: allow(panic): the document was produced two lines up.
        let doc = serde_json::from_str(&json).expect("parse");
        let archived = parse_cache_archive(&doc).expect("shape");
        assert!(check_cache_archive(&rows, &archived).is_empty());
        // A drifted archive is flagged.
        let mut drifted = archived;
        drifted[1].wire_bytes += 1;
        assert_eq!(check_cache_archive(&rows, &drifted).len(), 1);
    }

    #[test]
    fn identical_runs_agree_on_every_compared_field() {
        let a = cache_rows(&["hot"]);
        let b = cache_rows(&["hot"]);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.wire_bytes, y.wire_bytes, "{x:?} vs {y:?}");
            assert_eq!(x.hits, y.hits);
            assert_eq!(x.evictions, y.evictions);
            assert_eq!(x.device_hits, y.device_hits);
        }
    }
}
