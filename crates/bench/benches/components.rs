//! Criterion microbenches of the substrate hot paths: wire codec,
//! shared-memory segment, the allocation algorithm, and the DES engine.

use std::collections::HashMap;

use bf_model::{NodeId, VirtualDuration, VirtualTime};
use bf_registry::{allocate, AllocationPolicy, DeviceQuery, DeviceView};
use bf_rpc::{ClientId, DataRef, Request, RequestEnvelope, ShmSegment, WireDecode, WireEncode};
use bf_simkit::Engine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpc_codec");
    for payload in [64usize, 4096, 65536] {
        let env = RequestEnvelope {
            tag: 42,
            client: ClientId(7),
            sent_at: VirtualTime::from_nanos(123_456_789),
            body: Request::EnqueueWrite {
                queue: 3,
                buffer: 9,
                offset: 128,
                data: DataRef::Inline(vec![0xA5; payload].into()),
            },
        };
        group.bench_with_input(BenchmarkId::new("encode", payload), &env, |b, env| {
            b.iter(|| env.to_bytes())
        });
        let bytes = env.to_bytes();
        group.bench_with_input(BenchmarkId::new("decode", payload), &bytes, |b, bytes| {
            b.iter(|| RequestEnvelope::from_bytes(bytes.clone()).expect("decode"))
        });
    }
    group.finish();
}

fn bench_shm(c: &mut Criterion) {
    c.bench_function("shm_alloc_write_read_free_4k", |b| {
        let shm = ShmSegment::new(1 << 20);
        let data = vec![7u8; 4096];
        b.iter(|| {
            let region = shm.alloc(4096).expect("alloc");
            shm.write(region, &data).expect("write");
            let out = shm.read(region, 4096).expect("read");
            shm.free(region).expect("free");
            out
        })
    });
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_allocate");
    for devices in [3usize, 16, 64] {
        let views: Vec<DeviceView> = (0..devices)
            .map(|i| DeviceView {
                id: format!("fpga-{i}"),
                node: NodeId::new(format!("n{}", i % 3)),
                vendor: "Intel".to_string(),
                platform: "Intel(R) FPGA SDK for OpenCL(TM)".to_string(),
                bitstream: Some(if i % 2 == 0 { "sobel" } else { "mm" }.to_string()),
                connected: (0..i % 5)
                    .map(|j| (format!("f{i}-{j}"), Some("sobel".to_string())))
                    .collect::<HashMap<_, _>>(),
                utilization: (i as f64 * 0.13) % 0.9,
                mean_op_latency_ms: (i as f64 * 1.7) % 20.0,
                pending_reconfiguration: false,
                warm_bitstreams: Vec::new(),
            })
            .collect();
        let query = DeviceQuery::for_accelerator("sobel");
        let policy = AllocationPolicy::paper();
        group.bench_with_input(BenchmarkId::from_parameter(devices), &views, |b, views| {
            b.iter(|| allocate(&query, views, &policy).expect("allocates"))
        });
    }
    group.finish();
}

fn bench_des_engine(c: &mut Criterion) {
    c.bench_function("simkit_engine_100k_events", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            for i in 0..100_000u64 {
                engine.schedule_at(
                    VirtualTime::from_nanos(i * 7919 % 1_000_000),
                    |count: &mut u64, _: &mut Engine<u64>| *count += 1,
                );
            }
            let mut count = 0u64;
            engine.run(&mut count);
            assert_eq!(count, 100_000);
            count
        })
    });
    c.bench_function("simkit_engine_self_scheduling_chain", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            fn step(count: &mut u64, engine: &mut Engine<u64>) {
                *count += 1;
                if *count < 10_000 {
                    engine.schedule_in(VirtualDuration::from_nanos(100), step);
                }
            }
            engine.schedule_at(VirtualTime::ZERO, step);
            let mut count = 0u64;
            engine.run(&mut count);
            count
        })
    });
}

criterion_group!(
    components,
    bench_codec,
    bench_shm,
    bench_allocation,
    bench_des_engine
);
criterion_main!(components);
