//! Criterion benches over the Fig. 4 experiment harness: one benchmark
//! group per sub-figure, measuring the wall-clock cost of regenerating
//! each system's series point (the virtual-time results themselves are
//! printed by the `fig4a/b/c` binaries).

use bf_bench::{Fig4Rig, System};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig4a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_rw_rtt");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for system in System::all() {
        for total in [1u64 << 20, 1 << 30] {
            let rig = Fig4Rig::new(system);
            group.bench_with_input(
                BenchmarkId::new(system.label(), format!("{}MB", total >> 20)),
                &total,
                |b, &total| b.iter(|| rig.write_read_rtt(total)),
            );
        }
    }
    group.finish();
}

fn bench_fig4b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_sobel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for system in System::all() {
        let rig = Fig4Rig::new(system);
        group.bench_function(BenchmarkId::new(system.label(), "1920x1080"), |b| {
            b.iter(|| rig.sobel_rtt(1920, 1080))
        });
    }
    group.finish();
}

fn bench_fig4c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4c_mm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for system in System::all() {
        let rig = Fig4Rig::new(system);
        group.bench_function(BenchmarkId::new(system.label(), "1024"), |b| {
            b.iter(|| rig.mm_rtt(1024))
        });
    }
    group.finish();
}

criterion_group!(fig4, bench_fig4a, bench_fig4b, bench_fig4c);
criterion_main!(fig4);
