//! Criterion benches over the multi-tenant cluster scenarios (one per
//! paper table), measuring how fast the DES regenerates each table row
//! group. Short (5 s) measurement windows keep the benchmark itself quick;
//! the table binaries use the full 60 s windows.

use bf_model::{DataPathKind, VirtualDuration};
use bf_serverless::{LoadLevel, UseCase};
use bf_sim::{run_scenario, Deployment, ScenarioConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn short(use_case: UseCase, level: LoadLevel, deployment: Deployment) -> ScenarioConfig {
    ScenarioConfig::new(use_case, level, deployment).with_duration(VirtualDuration::from_secs(5))
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_sobel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (label, deployment) in [
        (
            "blastfunction",
            Deployment::BlastFunction {
                data_path: DataPathKind::SharedMemory,
            },
        ),
        ("native", Deployment::Native),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, "high"),
            &deployment,
            |b, &deployment| {
                b.iter(|| run_scenario(&short(UseCase::Sobel, LoadLevel::High, deployment)))
            },
        );
    }
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_mm");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (label, deployment) in [
        (
            "blastfunction",
            Deployment::BlastFunction {
                data_path: DataPathKind::SharedMemory,
            },
        ),
        ("native", Deployment::Native),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, "high"),
            &deployment,
            |b, &deployment| {
                b.iter(|| run_scenario(&short(UseCase::Mm, LoadLevel::High, deployment)))
            },
        );
    }
    group.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_alexnet");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (label, deployment) in [
        (
            "blastfunction",
            Deployment::BlastFunction {
                data_path: DataPathKind::SharedMemory,
            },
        ),
        ("native", Deployment::Native),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, "medium"),
            &deployment,
            |b, &deployment| {
                b.iter(|| run_scenario(&short(UseCase::AlexNet, LoadLevel::Medium, deployment)))
            },
        );
    }
    group.finish();
}

criterion_group!(tables, bench_table2, bench_table3, bench_table4);
criterion_main!(tables);
