//! The Device Manager service protocol.
//!
//! One message pair per OpenCL remoting operation, split into the paper's
//! two method groups (§III-B):
//!
//! * **context & information methods** — synchronous request/response
//!   (`Hello`, `CreateContext`, `BuildProgram`, `CreateKernel`,
//!   `CreateBuffer`, `CreateQueue`, `GetDeviceInfo`, `Reconfigure`, …);
//! * **command-queue methods** — asynchronous, correlated by *tag* (the
//!   client-side event pointer): `EnqueueWrite`, `EnqueueRead`,
//!   `EnqueueKernel`, `Flush`, `Finish`.
//!
//! Bulk payloads travel either inline (gRPC data path) or as offsets into a
//! shared-memory segment ([`DataRef::Shm`]).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use bf_model::VirtualTime;

use crate::codec::{
    get_u128_be, get_varint, put_u128_be, put_varint, CodecError, WireDecode, WireEncode,
};
use crate::payload::Payload;

/// Identifies one client (function instance) session on a Device Manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

/// How a bulk payload travels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataRef {
    /// Inline in the message (the gRPC data path). The payload is a
    /// refcounted buffer, so passing it down the datapath never copies.
    Inline(Payload),
    /// A region of the client's shared-memory segment.
    Shm {
        /// Byte offset inside the segment.
        offset: u64,
        /// Region length.
        len: u64,
    },
    /// Size-only placeholder for timing-only runs.
    Synthetic(u64),
    /// Content the receiver is believed to already hold, addressed by
    /// its content digest: zero payload bytes on the wire. A receiver
    /// without the content answers `ErrorCode::CacheMiss` and the sender
    /// retries inline.
    Digest {
        /// Content digest (`bf_cache::content_digest`): SHA-256
        /// truncated to 128 bits, carried as 16 fixed bytes. The
        /// receiver substitutes cached bytes for this reference, so the
        /// digest must be collision-resistant.
        digest: u128,
        /// Payload length in bytes.
        len: u64,
    },
}

impl DataRef {
    /// Payload size in bytes.
    pub fn len(&self) -> u64 {
        match self {
            DataRef::Inline(d) => d.len() as u64,
            DataRef::Shm { len, .. } | DataRef::Synthetic(len) | DataRef::Digest { len, .. } => {
                *len
            }
        }
    }

    /// Whether the payload is zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes another reference to the payload: a refcount bump for inline
    /// data; `Shm` / `Synthetic` references are plain metadata. Never a
    /// byte copy.
    pub fn share(&self) -> DataRef {
        self.clone()
    }
}

/// A kernel argument on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireArg {
    /// Remote buffer handle.
    Buffer(u64),
    /// 32-bit unsigned scalar.
    U32(u32),
    /// 32-bit signed scalar.
    I32(i32),
    /// 64-bit unsigned scalar.
    U64(u64),
    /// 32-bit float scalar.
    F32(f32),
}

/// Request bodies of the Device Manager service.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a session.
    Hello {
        /// Human-readable client (function instance) name.
        client_name: String,
        /// Whether the client can map the manager's shared-memory segment.
        shm: bool,
    },
    /// `clGetDeviceInfo`.
    GetDeviceInfo,
    /// `clCreateContext`.
    CreateContext,
    /// `clCreateProgramWithBinary` + `clBuildProgram`.
    BuildProgram {
        /// Bitstream id the client wants configured.
        bitstream: String,
    },
    /// `clCreateKernel`.
    CreateKernel {
        /// Remote program handle.
        program: u64,
        /// Kernel name.
        name: String,
    },
    /// `clSetKernelArg`.
    SetKernelArg {
        /// Remote kernel handle.
        kernel: u64,
        /// Argument index.
        index: u32,
        /// Argument value.
        arg: WireArg,
    },
    /// `clCreateBuffer`.
    CreateBuffer {
        /// Remote context handle.
        context: u64,
        /// Buffer length in bytes.
        len: u64,
    },
    /// `clReleaseMemObject`.
    ReleaseBuffer {
        /// Remote buffer handle.
        buffer: u64,
    },
    /// `clCreateCommandQueue`.
    CreateQueue {
        /// Remote context handle.
        context: u64,
    },
    /// `clEnqueueWriteBuffer` (command-queue method).
    EnqueueWrite {
        /// Remote queue handle.
        queue: u64,
        /// Remote buffer handle.
        buffer: u64,
        /// Destination offset.
        offset: u64,
        /// The payload.
        data: DataRef,
    },
    /// `clEnqueueReadBuffer` (command-queue method).
    EnqueueRead {
        /// Remote queue handle.
        queue: u64,
        /// Remote buffer handle.
        buffer: u64,
        /// Source offset.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// `clEnqueueNDRangeKernel` (command-queue method).
    EnqueueKernel {
        /// Remote queue handle.
        queue: u64,
        /// Remote kernel handle.
        kernel: u64,
        /// Global work size.
        work: [u64; 3],
    },
    /// `clFlush`: seals the current multi-operation task.
    Flush {
        /// Remote queue handle.
        queue: u64,
    },
    /// `clFinish`: flush + wait for the queue to drain.
    Finish {
        /// Remote queue handle.
        queue: u64,
    },
    /// Asks the manager to reprogram the board (validated by the registry).
    Reconfigure {
        /// Bitstream id to program.
        bitstream: String,
    },
    /// Closes the session, releasing every resource the client owns.
    Disconnect,
    /// `clEnqueueCopyBuffer` (command-queue method).
    EnqueueCopy {
        /// Remote queue handle.
        queue: u64,
        /// Source buffer handle.
        src: u64,
        /// Destination buffer handle.
        dst: u64,
        /// Source offset.
        src_offset: u64,
        /// Destination offset.
        dst_offset: u64,
        /// Bytes to copy.
        len: u64,
    },
}

impl Request {
    /// Whether this is a command-queue method (asynchronous, ordered,
    /// executed through the central task queue) as opposed to a context or
    /// information method (synchronous).
    pub fn is_command_queue_method(&self) -> bool {
        matches!(
            self,
            Request::EnqueueWrite { .. }
                | Request::EnqueueRead { .. }
                | Request::EnqueueKernel { .. }
                | Request::EnqueueCopy { .. }
                | Request::Flush { .. }
                | Request::Finish { .. }
        )
    }
}

/// Why a request failed, mirroring OpenCL error classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Stale/foreign handle.
    InvalidHandle,
    /// Client touched a resource it does not own.
    AccessDenied,
    /// Device memory exhausted.
    OutOfResources,
    /// Transfer out of buffer bounds.
    OutOfBounds,
    /// Bitstream/kernel resolution failed.
    BuildFailure,
    /// Kernel launch rejected.
    InvalidLaunch,
    /// Reconfiguration refused (e.g. not validated by the registry).
    ReconfigurationRefused,
    /// Internal manager failure.
    Internal,
    /// A `DataRef::Digest` named content the manager's cache does not
    /// hold: the sender must retry with the bytes inline.
    CacheMiss,
}

/// Response bodies of the Device Manager service.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Generic success for fire-and-forget methods.
    Ack,
    /// A freshly created remote handle.
    Handle {
        /// The handle value.
        id: u64,
    },
    /// Device information.
    DeviceInfo {
        /// Board name.
        name: String,
        /// Vendor string.
        vendor: String,
        /// Platform string.
        platform: String,
        /// DDR capacity.
        memory_bytes: u64,
        /// Hosting node id.
        node: String,
        /// Configured bitstream, if any.
        bitstream: Option<String>,
    },
    /// A command-queue method was accepted into the client's open task
    /// (the FIRST step of the event state machine).
    Enqueued,
    /// A command-queue operation finished on the device.
    Completed {
        /// Device-side start instant.
        started_at: VirtualTime,
        /// Device-side end instant.
        ended_at: VirtualTime,
        /// Read payload, for `EnqueueRead`.
        data: Option<DataRef>,
    },
    /// The request failed.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A tagged request as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Correlation tag — the pointer to the client-side event (Fig. 2).
    pub tag: u64,
    /// The session the request belongs to.
    pub client: ClientId,
    /// Virtual send instant at the client.
    pub sent_at: VirtualTime,
    /// The request body.
    pub body: Request,
}

/// A tagged response as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEnvelope {
    /// Correlation tag copied from the request.
    pub tag: u64,
    /// Virtual send instant at the manager.
    pub sent_at: VirtualTime,
    /// The response body.
    pub body: Response,
}

// ---- wire encodings -----------------------------------------------------

impl WireEncode for DataRef {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            DataRef::Inline(d) => {
                buf.put_u8(0);
                d.encode(buf);
            }
            DataRef::Shm { offset, len } => {
                buf.put_u8(1);
                put_varint(buf, *offset);
                put_varint(buf, *len);
            }
            DataRef::Synthetic(len) => {
                buf.put_u8(2);
                put_varint(buf, *len);
            }
            DataRef::Digest { digest, len } => {
                buf.put_u8(3);
                put_u128_be(buf, *digest);
                put_varint(buf, *len);
            }
        }
    }
}

impl WireDecode for DataRef {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if buf.remaining() == 0 {
            return Err(CodecError::UnexpectedEof);
        }
        match buf.get_u8() {
            0 => Ok(DataRef::Inline(Payload::decode(buf)?)),
            1 => Ok(DataRef::Shm {
                offset: get_varint(buf)?,
                len: get_varint(buf)?,
            }),
            2 => Ok(DataRef::Synthetic(get_varint(buf)?)),
            3 => Ok(DataRef::Digest {
                digest: get_u128_be(buf)?,
                len: get_varint(buf)?,
            }),
            value => Err(CodecError::BadDiscriminant {
                what: "DataRef",
                value,
            }),
        }
    }
}

impl WireEncode for WireArg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            WireArg::Buffer(v) => {
                buf.put_u8(0);
                put_varint(buf, *v);
            }
            WireArg::U32(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
            WireArg::I32(v) => {
                buf.put_u8(2);
                v.encode(buf);
            }
            WireArg::U64(v) => {
                buf.put_u8(3);
                v.encode(buf);
            }
            WireArg::F32(v) => {
                buf.put_u8(4);
                v.encode(buf);
            }
        }
    }
}

impl WireDecode for WireArg {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if buf.remaining() == 0 {
            return Err(CodecError::UnexpectedEof);
        }
        match buf.get_u8() {
            0 => Ok(WireArg::Buffer(get_varint(buf)?)),
            1 => Ok(WireArg::U32(u32::decode(buf)?)),
            2 => Ok(WireArg::I32(i32::decode(buf)?)),
            3 => Ok(WireArg::U64(u64::decode(buf)?)),
            4 => Ok(WireArg::F32(f32::decode(buf)?)),
            value => Err(CodecError::BadDiscriminant {
                what: "WireArg",
                value,
            }),
        }
    }
}

impl WireEncode for Request {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Request::Hello { client_name, shm } => {
                buf.put_u8(0);
                client_name.encode(buf);
                shm.encode(buf);
            }
            Request::GetDeviceInfo => buf.put_u8(1),
            Request::CreateContext => buf.put_u8(2),
            Request::BuildProgram { bitstream } => {
                buf.put_u8(3);
                bitstream.encode(buf);
            }
            Request::CreateKernel { program, name } => {
                buf.put_u8(4);
                put_varint(buf, *program);
                name.encode(buf);
            }
            Request::SetKernelArg { kernel, index, arg } => {
                buf.put_u8(5);
                put_varint(buf, *kernel);
                index.encode(buf);
                arg.encode(buf);
            }
            Request::CreateBuffer { context, len } => {
                buf.put_u8(6);
                put_varint(buf, *context);
                put_varint(buf, *len);
            }
            Request::ReleaseBuffer { buffer } => {
                buf.put_u8(7);
                put_varint(buf, *buffer);
            }
            Request::CreateQueue { context } => {
                buf.put_u8(8);
                put_varint(buf, *context);
            }
            Request::EnqueueWrite {
                queue,
                buffer,
                offset,
                data,
            } => {
                buf.put_u8(9);
                put_varint(buf, *queue);
                put_varint(buf, *buffer);
                put_varint(buf, *offset);
                data.encode(buf);
            }
            Request::EnqueueRead {
                queue,
                buffer,
                offset,
                len,
            } => {
                buf.put_u8(10);
                put_varint(buf, *queue);
                put_varint(buf, *buffer);
                put_varint(buf, *offset);
                put_varint(buf, *len);
            }
            Request::EnqueueKernel {
                queue,
                kernel,
                work,
            } => {
                buf.put_u8(11);
                put_varint(buf, *queue);
                put_varint(buf, *kernel);
                work.encode(buf);
            }
            Request::Flush { queue } => {
                buf.put_u8(12);
                put_varint(buf, *queue);
            }
            Request::Finish { queue } => {
                buf.put_u8(13);
                put_varint(buf, *queue);
            }
            Request::Reconfigure { bitstream } => {
                buf.put_u8(14);
                bitstream.encode(buf);
            }
            Request::Disconnect => buf.put_u8(15),
            Request::EnqueueCopy {
                queue,
                src,
                dst,
                src_offset,
                dst_offset,
                len,
            } => {
                buf.put_u8(16);
                put_varint(buf, *queue);
                put_varint(buf, *src);
                put_varint(buf, *dst);
                put_varint(buf, *src_offset);
                put_varint(buf, *dst_offset);
                put_varint(buf, *len);
            }
        }
    }
}

impl WireDecode for Request {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if buf.remaining() == 0 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(match buf.get_u8() {
            0 => Request::Hello {
                client_name: String::decode(buf)?,
                shm: bool::decode(buf)?,
            },
            1 => Request::GetDeviceInfo,
            2 => Request::CreateContext,
            3 => Request::BuildProgram {
                bitstream: String::decode(buf)?,
            },
            4 => Request::CreateKernel {
                program: get_varint(buf)?,
                name: String::decode(buf)?,
            },
            5 => Request::SetKernelArg {
                kernel: get_varint(buf)?,
                index: u32::decode(buf)?,
                arg: WireArg::decode(buf)?,
            },
            6 => Request::CreateBuffer {
                context: get_varint(buf)?,
                len: get_varint(buf)?,
            },
            7 => Request::ReleaseBuffer {
                buffer: get_varint(buf)?,
            },
            8 => Request::CreateQueue {
                context: get_varint(buf)?,
            },
            9 => Request::EnqueueWrite {
                queue: get_varint(buf)?,
                buffer: get_varint(buf)?,
                offset: get_varint(buf)?,
                data: DataRef::decode(buf)?,
            },
            10 => Request::EnqueueRead {
                queue: get_varint(buf)?,
                buffer: get_varint(buf)?,
                offset: get_varint(buf)?,
                len: get_varint(buf)?,
            },
            11 => Request::EnqueueKernel {
                queue: get_varint(buf)?,
                kernel: get_varint(buf)?,
                work: <[u64; 3]>::decode(buf)?,
            },
            12 => Request::Flush {
                queue: get_varint(buf)?,
            },
            13 => Request::Finish {
                queue: get_varint(buf)?,
            },
            14 => Request::Reconfigure {
                bitstream: String::decode(buf)?,
            },
            15 => Request::Disconnect,
            16 => Request::EnqueueCopy {
                queue: get_varint(buf)?,
                src: get_varint(buf)?,
                dst: get_varint(buf)?,
                src_offset: get_varint(buf)?,
                dst_offset: get_varint(buf)?,
                len: get_varint(buf)?,
            },
            value => {
                return Err(CodecError::BadDiscriminant {
                    what: "Request",
                    value,
                })
            }
        })
    }
}

impl WireEncode for ErrorCode {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            ErrorCode::InvalidHandle => 0,
            ErrorCode::AccessDenied => 1,
            ErrorCode::OutOfResources => 2,
            ErrorCode::OutOfBounds => 3,
            ErrorCode::BuildFailure => 4,
            ErrorCode::InvalidLaunch => 5,
            ErrorCode::ReconfigurationRefused => 6,
            ErrorCode::Internal => 7,
            ErrorCode::CacheMiss => 8,
        });
    }
}

impl WireDecode for ErrorCode {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if buf.remaining() == 0 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(match buf.get_u8() {
            0 => ErrorCode::InvalidHandle,
            1 => ErrorCode::AccessDenied,
            2 => ErrorCode::OutOfResources,
            3 => ErrorCode::OutOfBounds,
            4 => ErrorCode::BuildFailure,
            5 => ErrorCode::InvalidLaunch,
            6 => ErrorCode::ReconfigurationRefused,
            7 => ErrorCode::Internal,
            8 => ErrorCode::CacheMiss,
            value => {
                return Err(CodecError::BadDiscriminant {
                    what: "ErrorCode",
                    value,
                })
            }
        })
    }
}

impl WireEncode for Response {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Response::Ack => buf.put_u8(0),
            Response::Handle { id } => {
                buf.put_u8(1);
                put_varint(buf, *id);
            }
            Response::DeviceInfo {
                name,
                vendor,
                platform,
                memory_bytes,
                node,
                bitstream,
            } => {
                buf.put_u8(2);
                name.encode(buf);
                vendor.encode(buf);
                platform.encode(buf);
                put_varint(buf, *memory_bytes);
                node.encode(buf);
                bitstream.encode(buf);
            }
            Response::Enqueued => buf.put_u8(3),
            Response::Completed {
                started_at,
                ended_at,
                data,
            } => {
                buf.put_u8(4);
                put_varint(buf, started_at.as_nanos());
                put_varint(buf, ended_at.as_nanos());
                data.encode(buf);
            }
            Response::Error { code, message } => {
                buf.put_u8(5);
                code.encode(buf);
                message.encode(buf);
            }
        }
    }
}

impl WireDecode for Response {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if buf.remaining() == 0 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(match buf.get_u8() {
            0 => Response::Ack,
            1 => Response::Handle {
                id: get_varint(buf)?,
            },
            2 => Response::DeviceInfo {
                name: String::decode(buf)?,
                vendor: String::decode(buf)?,
                platform: String::decode(buf)?,
                memory_bytes: get_varint(buf)?,
                node: String::decode(buf)?,
                bitstream: Option::<String>::decode(buf)?,
            },
            3 => Response::Enqueued,
            4 => Response::Completed {
                started_at: VirtualTime::from_nanos(get_varint(buf)?),
                ended_at: VirtualTime::from_nanos(get_varint(buf)?),
                data: Option::<DataRef>::decode(buf)?,
            },
            5 => Response::Error {
                code: ErrorCode::decode(buf)?,
                message: String::decode(buf)?,
            },
            value => {
                return Err(CodecError::BadDiscriminant {
                    what: "Response",
                    value,
                })
            }
        })
    }
}

impl WireEncode for RequestEnvelope {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.tag);
        put_varint(buf, self.client.0);
        put_varint(buf, self.sent_at.as_nanos());
        self.body.encode(buf);
    }
}

impl WireDecode for RequestEnvelope {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(RequestEnvelope {
            tag: get_varint(buf)?,
            client: ClientId(get_varint(buf)?),
            sent_at: VirtualTime::from_nanos(get_varint(buf)?),
            body: Request::decode(buf)?,
        })
    }
}

impl WireEncode for ResponseEnvelope {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.tag);
        put_varint(buf, self.sent_at.as_nanos());
        self.body.encode(buf);
    }
}

impl WireDecode for ResponseEnvelope {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(ResponseEnvelope {
            tag: get_varint(buf)?,
            sent_at: VirtualTime::from_nanos(get_varint(buf)?),
            body: Response::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{WireDecode, WireEncode};

    fn round_trip_req(body: Request) {
        let env = RequestEnvelope {
            tag: 42,
            client: ClientId(7),
            sent_at: VirtualTime::from_nanos(1234),
            body,
        };
        let back = RequestEnvelope::from_bytes(env.to_bytes()).expect("decode");
        assert_eq!(back, env);
    }

    #[test]
    fn all_request_variants_round_trip() {
        round_trip_req(Request::Hello {
            client_name: "sobel-1".into(),
            shm: true,
        });
        round_trip_req(Request::GetDeviceInfo);
        round_trip_req(Request::CreateContext);
        round_trip_req(Request::BuildProgram {
            bitstream: "spector-sobel".into(),
        });
        round_trip_req(Request::CreateKernel {
            program: 3,
            name: "sobel".into(),
        });
        round_trip_req(Request::SetKernelArg {
            kernel: 2,
            index: 1,
            arg: WireArg::F32(1.5),
        });
        round_trip_req(Request::CreateBuffer {
            context: 1,
            len: 1 << 30,
        });
        round_trip_req(Request::ReleaseBuffer { buffer: 9 });
        round_trip_req(Request::CreateQueue { context: 1 });
        round_trip_req(Request::EnqueueWrite {
            queue: 1,
            buffer: 2,
            offset: 0,
            data: DataRef::Inline(vec![1, 2, 3].into()),
        });
        round_trip_req(Request::EnqueueWrite {
            queue: 1,
            buffer: 2,
            offset: 16,
            data: DataRef::Shm {
                offset: 4096,
                len: 1 << 20,
            },
        });
        round_trip_req(Request::EnqueueWrite {
            queue: 1,
            buffer: 2,
            offset: 32,
            data: DataRef::Digest {
                digest: 0xba78_16bf_8f01_cfea_4141_40de_5dae_2223,
                len: 1 << 20,
            },
        });
        round_trip_req(Request::EnqueueRead {
            queue: 1,
            buffer: 2,
            offset: 0,
            len: 64,
        });
        round_trip_req(Request::EnqueueKernel {
            queue: 1,
            kernel: 5,
            work: [1920, 1080, 1],
        });
        round_trip_req(Request::Flush { queue: 1 });
        round_trip_req(Request::Finish { queue: 1 });
        round_trip_req(Request::Reconfigure {
            bitstream: "spector-mm".into(),
        });
        round_trip_req(Request::Disconnect);
        round_trip_req(Request::EnqueueCopy {
            queue: 1,
            src: 2,
            dst: 3,
            src_offset: 4,
            dst_offset: 5,
            len: 1 << 20,
        });
    }

    #[test]
    fn all_response_variants_round_trip() {
        for body in [
            Response::Ack,
            Response::Handle { id: 11 },
            Response::DeviceInfo {
                name: "DE5a-Net".into(),
                vendor: "Intel".into(),
                platform: "Intel(R) FPGA SDK".into(),
                memory_bytes: 8 << 30,
                node: "B".into(),
                bitstream: Some("spector-sobel".into()),
            },
            Response::Enqueued,
            Response::Completed {
                started_at: VirtualTime::from_nanos(5),
                ended_at: VirtualTime::from_nanos(9),
                data: Some(DataRef::Synthetic(128)),
            },
            Response::Error {
                code: ErrorCode::AccessDenied,
                message: "not yours".into(),
            },
            Response::Error {
                code: ErrorCode::CacheMiss,
                message: "digest not resident".into(),
            },
        ] {
            let env = ResponseEnvelope {
                tag: 3,
                sent_at: VirtualTime::from_nanos(77),
                body,
            };
            let back = ResponseEnvelope::from_bytes(env.to_bytes()).expect("decode");
            assert_eq!(back, env);
        }
    }

    #[test]
    fn command_queue_classification_matches_the_paper() {
        assert!(Request::Flush { queue: 1 }.is_command_queue_method());
        assert!(Request::EnqueueKernel {
            queue: 1,
            kernel: 1,
            work: [1, 1, 1]
        }
        .is_command_queue_method());
        assert!(!Request::CreateContext.is_command_queue_method());
        assert!(!Request::Reconfigure {
            bitstream: "x".into()
        }
        .is_command_queue_method());
        assert!(!Request::GetDeviceInfo.is_command_queue_method());
    }

    #[test]
    fn inline_payload_dominates_encoded_len() {
        let small = Request::EnqueueWrite {
            queue: 1,
            buffer: 2,
            offset: 0,
            data: DataRef::Inline(vec![0; 16].into()),
        };
        let big = Request::EnqueueWrite {
            queue: 1,
            buffer: 2,
            offset: 0,
            data: DataRef::Inline(vec![0; 1 << 16].into()),
        };
        assert!(big.encoded_len() > small.encoded_len() + (1 << 15));
        // A shm reference stays tiny no matter the payload size.
        let shm = Request::EnqueueWrite {
            queue: 1,
            buffer: 2,
            offset: 0,
            data: DataRef::Shm {
                offset: 0,
                len: 1 << 30,
            },
        };
        assert!(shm.encoded_len() < 32);
    }
}
