//! Readiness multiplexing for bounded transport channels.
//!
//! The vendored channel substrate has no selector, so readiness is built
//! directly into the transport: every [`FrameRx`] registered with a
//! [`Poller`] shares one [`NotifyHub`] that senders bump on push and on
//! close. Each bump carries the source's slot index, which the hub
//! dedup-enqueues on a FIFO ready list — [`Poller::poll`] services the
//! list head and re-enqueues still-ready sources at the back, so scan
//! work is O(ready) instead of O(registered) while keeping deterministic
//! round-robin fairness (a flooding connection cannot shadow its
//! neighbours). When the list is empty the poller parks on the hub's
//! condvar, using a generation counter so a bump between scan and park
//! is never lost.
//!
//! This is what lets one dispatcher thread serve N connections: the Device
//! Manager's event loop multiplexes all session request streams, and the
//! Remote Library's reactor multiplexes all client completion streams.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::sync::{Condvar, MonoTime, Mutex};
use crate::transport::{waker_channel, FrameRx, TxHalf};

/// Shared wakeup rendezvous between one poller and its registered queues:
/// a generation counter plus the FIFO ready list of slot indices.
///
/// `poll_gen` counts notifications; [`Poller::poll`] snapshots it before
/// scanning and sleeps only while it is unchanged, so a push that lands
/// mid-scan wakes the next `wait` immediately instead of being lost. The
/// ready list is advisory — the poller re-checks real readiness on pop —
/// so a stale entry (drained source, reused slot) costs one skipped pop,
/// never a wrong event.
#[derive(Debug)]
pub(crate) struct NotifyHub {
    wakeup: Mutex<HubState>,
    cv: Condvar,
}

#[derive(Debug)]
struct HubState {
    poll_gen: u64,
    /// Slot indices with a pending readiness edge, FIFO.
    ready: VecDeque<usize>,
    /// Dedup flags: `queued[i]` iff `i` is on the ready list.
    queued: Vec<bool>,
}

impl NotifyHub {
    fn new() -> Arc<NotifyHub> {
        Arc::new(NotifyHub {
            wakeup: Mutex::new(HubState {
                poll_gen: 0,
                ready: VecDeque::new(),
                queued: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Records an event (frame pushed / sender closed) on slot `idx`,
    /// dedup-enqueues it on the ready list and wakes the poller.
    pub(crate) fn bump(&self, idx: usize) {
        // bf-flow: allow(hot_blocking): leaf lock (rank `wakeup`) held for
        // a few index writes; nothing else is ever acquired under it
        let mut s = self.wakeup.lock();
        s.poll_gen = s.poll_gen.wrapping_add(1);
        if s.queued.len() <= idx {
            // bf-flow: allow(hot_alloc): bounded by peak concurrent
            // registrations — slot indices are dense and reused
            s.queued.resize(idx + 1, false);
        }
        // bf-flow: allow(hot_panic): the resize above guarantees
        // `queued.len() > idx`
        if !s.queued[idx] {
            // bf-flow: allow(hot_panic): same resize invariant as above
            s.queued[idx] = true;
            // bf-flow: allow(hot_alloc): both sides are bounded by peak
            // concurrent registrations — dedup flags cap the deque
            s.ready.push_back(idx);
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Pops the next candidate slot index off the ready list.
    fn pop_ready(&self) -> Option<usize> {
        // bf-flow: allow(hot_blocking): leaf lock (rank `wakeup`), two
        // index writes, nothing acquired under it
        let mut s = self.wakeup.lock();
        let idx = s.ready.pop_front()?;
        // bf-flow: allow(hot_panic): every queued index was bounds-grown
        // by `bump` before being enqueued
        s.queued[idx] = false;
        Some(idx)
    }

    fn generation(&self) -> u64 {
        self.wakeup.lock().poll_gen
    }

    /// Parks until the generation moves past `seen` or `timeout` elapses.
    fn wait(&self, seen: u64, timeout: Option<Duration>) {
        let mut s = self.wakeup.lock();
        if s.poll_gen != seen {
            return;
        }
        match timeout {
            None => self.cv.wait(&mut s),
            Some(t) => {
                let _ = self.cv.wait_for(&mut s, t);
            }
        }
    }
}

/// Identifies one registered readiness source within its [`Poller`].
///
/// Tokens are dense indices and may be reused after [`Poller::deregister`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(usize);

/// Deterministic work counters for the poller hot path, used by the scale
/// harness to quantify scan cost: `slots_scanned / polls` is the average
/// number of slots the poller had to examine to produce one event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollerStats {
    /// Completed [`Poller::poll`] calls.
    pub polls: u64,
    /// Slots examined across all scan passes (the scan-loop trip count).
    pub slots_scanned: u64,
}

/// Outcome of one [`Poller::poll`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollEvent {
    /// The source behind `Token` has a pending frame or a closed peer.
    Ready(Token),
    /// The timeout elapsed with nothing ready.
    TimedOut,
}

struct Slot {
    rx: FrameRx,
    /// Waker slots drain their nudge frames during the scan: the readiness
    /// edge is the event, the frame payload is meaningless.
    waker: bool,
}

/// Single-threaded readiness selector over registered [`FrameRx`] taps.
///
/// Not `Sync`: one dispatcher thread owns it. Other threads interact only
/// through the transport (pushing frames) or a [`Waker`].
pub struct Poller {
    hub: Arc<NotifyHub>,
    slots: Vec<Option<Slot>>,
    stats: PollerStats,
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

impl Poller {
    /// An empty poller with its own notification hub.
    pub fn new() -> Poller {
        Poller {
            hub: NotifyHub::new(),
            slots: Vec::new(),
            stats: PollerStats::default(),
        }
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> PollerStats {
        self.stats
    }

    /// Registers a receive tap; its queue will wake this poller on every
    /// push and on sender close.
    pub fn register(&mut self, rx: FrameRx) -> Token {
        let token = self.claim_slot(Slot { rx, waker: false });
        self.watch_and_prime(token);
        token
    }

    /// Removes a source. Its token may be reassigned by later
    /// registrations.
    pub fn deregister(&mut self, token: Token) {
        if let Some(slot) = self.slots.get_mut(token.0).and_then(Option::take) {
            slot.rx.clear_watch();
        }
    }

    /// Creates a self-wakeup handle: `wake()` from any thread makes the
    /// next (or current) `poll` return `Ready` with the returned token.
    /// Dropping the last clone of the `Waker` leaves the token permanently
    /// ready with `Closed` — a natural shutdown edge.
    pub fn add_waker(&mut self) -> (Token, Waker) {
        let (tx, rx) = waker_channel();
        let token = self.claim_slot(Slot { rx, waker: true });
        self.watch_and_prime(token);
        (token, Waker { tx })
    }

    /// Hooks a freshly claimed slot's queue to the hub under its index and
    /// primes the ready list with it: frames pushed before registration
    /// never bumped, and a pop of a not-ready slot is a cheap skip.
    fn watch_and_prime(&mut self, token: Token) {
        if let Some(slot) = self.slots.get(token.0).and_then(Option::as_ref) {
            slot.rx.set_watch(self.hub.clone(), token.0);
        }
        self.hub.bump(token.0);
    }

    /// Number of registered sources (including wakers).
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Whether no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until a source is ready or `timeout` elapses (`None` waits
    /// indefinitely). Readiness means a pending frame or a closed sender
    /// side; consecutive calls rotate across ready sources round-robin.
    // bf-flow: entry(poller)
    pub fn poll(&mut self, timeout: Option<Duration>) -> PollEvent {
        self.stats.polls += 1;
        let deadline = timeout.map(MonoTime::after);
        loop {
            let seen = self.hub.generation();
            if let Some(token) = self.scan() {
                return PollEvent::Ready(token);
            }
            let remaining = match deadline {
                None => None,
                Some(d) => {
                    if d.has_passed() {
                        return PollEvent::TimedOut;
                    }
                    Some(d.remaining())
                }
            };
            // bf-flow: allow(hot_blocking): THE designed park point — every
            // event loop sleeps here, woken by the notify hub's generation
            // counter; no lock is held across the wait
            self.hub.wait(seen, remaining);
        }
    }

    /// Services the head of the hub's ready list, re-checking real
    /// readiness on every pop (stale entries are skipped). A source that
    /// is still ready after service re-enters at the back of the list, so
    /// persistently-ready sources rotate round-robin and cannot starve
    /// their neighbours. Work is O(ready), not O(registered).
    fn scan(&mut self) -> Option<Token> {
        while let Some(i) = self.hub.pop_ready() {
            self.stats.slots_scanned += 1;
            let Some(slot) = self.slots.get(i).and_then(Option::as_ref) else {
                continue;
            };
            if !slot.rx.ready() {
                continue;
            }
            if slot.waker {
                slot.rx.drain();
            }
            if slot.rx.ready() {
                // Still ready (more frames, or a closed sender): back of
                // the list, behind every other pending source.
                self.hub.bump(i);
            }
            return Some(Token(i));
        }
        None
    }

    /// Reuses the first vacated slot, growing the vec only when every slot
    /// is occupied — the vec's length tracks peak concurrent registrations.
    fn claim_slot(&mut self, slot: Slot) -> Token {
        if let Some((i, vacant)) = self.slots.iter_mut().enumerate().find(|(_, c)| c.is_none()) {
            *vacant = Some(slot);
            Token(i)
        } else {
            // bf-flow: allow(hot_alloc): grows to peak concurrent
            // registrations; deregistered slots are reused before growing
            self.slots.push(Some(slot));
            Token(self.slots.len() - 1)
        }
    }
}

/// Cross-thread wakeup handle for a [`Poller`] (see [`Poller::add_waker`]).
#[derive(Debug, Clone)]
pub struct Waker {
    tx: TxHalf,
}

impl Waker {
    /// Makes the poller return `Ready` for the waker's token. Coalesces:
    /// concurrent wakes produce at least one `Ready`, not one each.
    pub fn wake(&self) {
        // Full means a wake is already pending; Closed means the poller is
        // gone. Both are fine to ignore.
        let _ = self.tx.try_push(Bytes::new());
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use bf_model::VirtualTime;

    use super::*;
    use crate::proto::{Response, ResponseEnvelope};
    use crate::transport::duplex_with_depth;

    fn resp(tag: u64) -> ResponseEnvelope {
        ResponseEnvelope {
            tag,
            sent_at: VirtualTime::ZERO,
            body: Response::Ack,
        }
    }

    #[test]
    fn poll_times_out_when_nothing_is_ready() {
        let (client, _server) = duplex_with_depth(4);
        let mut poller = Poller::new();
        poller.register(client.completions());
        assert_eq!(
            poller.poll(Some(Duration::from_millis(5))),
            PollEvent::TimedOut
        );
    }

    #[test]
    fn push_makes_the_source_ready() {
        let (client, server) = duplex_with_depth(4);
        let mut poller = Poller::new();
        let token = poller.register(client.completions());
        server.send(&resp(1)).expect("send");
        assert_eq!(poller.poll(None), PollEvent::Ready(token));
        assert!(client.try_recv().expect("frame").is_some());
    }

    #[test]
    fn sender_close_is_a_readiness_edge() {
        let (client, server) = duplex_with_depth(4);
        let mut poller = Poller::new();
        let token = poller.register(client.completions());
        let pusher = std::thread::spawn(move || drop(server));
        assert_eq!(poller.poll(None), PollEvent::Ready(token));
        pusher.join().expect("join");
        assert!(client.try_recv().is_err());
    }

    #[test]
    fn waker_wakes_a_blocked_poll_from_another_thread() {
        let mut poller = Poller::new();
        let (token, waker) = poller.add_waker();
        // Keep a clone alive so dropping the thread's copy is not a close.
        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            remote.wake();
        });
        assert_eq!(poller.poll(None), PollEvent::Ready(token));
        t.join().expect("join");
        // The nudge frame was drained during the scan: the next poll with a
        // timeout goes back to sleep.
        assert_eq!(
            poller.poll(Some(Duration::from_millis(5))),
            PollEvent::TimedOut
        );
    }

    #[test]
    fn dropping_the_waker_leaves_its_token_permanently_ready() {
        let mut poller = Poller::new();
        let (token, waker) = poller.add_waker();
        drop(waker);
        assert_eq!(poller.poll(None), PollEvent::Ready(token));
        assert_eq!(poller.poll(None), PollEvent::Ready(token));
        poller.deregister(token);
        assert!(poller.is_empty());
    }

    #[test]
    fn scan_rotates_round_robin_between_ready_sources() {
        let (client_a, server_a) = duplex_with_depth(64);
        let (client_b, server_b) = duplex_with_depth(64);
        let mut poller = Poller::new();
        let tok_a = poller.register(client_a.completions());
        let tok_b = poller.register(client_b.completions());
        for tag in 0..8 {
            server_a.send(&resp(tag)).expect("send a");
            server_b.send(&resp(tag)).expect("send b");
        }
        // Both stay ready throughout (one frame consumed per event), so the
        // rotation must alternate strictly.
        let mut order = Vec::new();
        for _ in 0..8 {
            match poller.poll(None) {
                PollEvent::Ready(tok) => {
                    order.push(tok);
                    let ch = if tok == tok_a { &client_a } else { &client_b };
                    ch.try_recv().expect("frame");
                }
                PollEvent::TimedOut => panic!("sources are ready"),
            }
        }
        let a_count = order.iter().filter(|t| **t == tok_a).count();
        let b_count = order.iter().filter(|t| **t == tok_b).count();
        assert_eq!((a_count, b_count), (4, 4), "strict alternation: {order:?}");
        for pair in order.chunks(2) {
            assert_ne!(pair[0], pair[1], "no source serviced twice in a row");
        }
    }

    #[test]
    fn deregistered_sources_are_ignored() {
        let (client, server) = duplex_with_depth(4);
        let mut poller = Poller::new();
        let token = poller.register(client.completions());
        server.send(&resp(1)).expect("send");
        poller.deregister(token);
        assert_eq!(
            poller.poll(Some(Duration::from_millis(5))),
            PollEvent::TimedOut
        );
    }
}
