//! A compact binary wire codec — the stand-in for protobuf.
//!
//! Messages are encoded into real bytes so that the serialization cost
//! model can be driven by actual encoded sizes, and so codec bugs surface
//! as decode failures rather than silent divergence. The format is a
//! simple tag-free positional encoding with varint-style length prefixes
//! for variable-size fields.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the field was complete.
    UnexpectedEof,
    /// A discriminant byte did not match any variant.
    BadDiscriminant {
        /// Type being decoded.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Trailing garbage followed a complete message.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadDiscriminant { what, value } => {
                write!(f, "invalid discriminant {value} while decoding {what}")
            }
            CodecError::BadUtf8 => write!(f, "string field held invalid UTF-8"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl Error for CodecError {}

/// Serializes a value into the wire format.
pub trait WireEncode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Length of the encoding in bytes.
    fn encoded_len(&self) -> u64 {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.len() as u64
    }
}

/// Deserializes a value from the wire format.
pub trait WireDecode: Sized {
    /// Consumes the encoding of `Self` from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on malformed input.
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError>;

    /// Decodes a complete message, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on malformed input or trailing garbage.
    fn from_bytes(mut bytes: Bytes) -> Result<Self, CodecError> {
        let v = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(CodecError::TrailingBytes(bytes.len()));
        }
        Ok(v)
    }
}

// ---- primitive helpers -------------------------------------------------

pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

// bf-taint: source(wire)
pub(crate) fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if buf.remaining() == 0 {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(CodecError::BadDiscriminant {
                what: "varint",
                value: byte,
            });
        }
    }
}

impl WireEncode for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self);
    }
}

impl WireDecode for u64 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        get_varint(buf)
    }
}

/// Appends a fixed-width 16-byte big-endian `u128` (content digests —
/// the full width always travels, so varint framing would only cost).
pub(crate) fn put_u128_be(buf: &mut BytesMut, v: u128) {
    buf.put_u64((v >> 64) as u64);
    buf.put_u64(v as u64);
}

/// Consumes a fixed-width 16-byte big-endian `u128`.
// bf-taint: source(wire)
pub(crate) fn get_u128_be(buf: &mut Bytes) -> Result<u128, CodecError> {
    if buf.remaining() < 16 {
        return Err(CodecError::UnexpectedEof);
    }
    let hi = buf.get_u64();
    let lo = buf.get_u64();
    Ok((u128::from(hi) << 64) | u128::from(lo))
}

impl WireEncode for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, u64::from(*self));
    }
}

impl WireDecode for u32 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok(get_varint(buf)? as u32)
    }
}

impl WireEncode for i32 {
    fn encode(&self, buf: &mut BytesMut) {
        // zigzag
        put_varint(buf, ((*self << 1) ^ (*self >> 31)) as u32 as u64);
    }
}

impl WireDecode for i32 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let raw = get_varint(buf)? as u32;
        Ok(((raw >> 1) as i32) ^ -((raw & 1) as i32))
    }
}

impl WireEncode for f32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f32_le(*self);
    }
}

impl WireDecode for f32 {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if buf.remaining() < 4 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(buf.get_f32_le())
    }
}

impl WireEncode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}

impl WireDecode for bool {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if buf.remaining() == 0 {
            return Err(CodecError::UnexpectedEof);
        }
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(CodecError::BadDiscriminant {
                what: "bool",
                value,
            }),
        }
    }
}

impl WireEncode for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
}

impl WireDecode for String {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let len = get_varint(buf)? as usize;
        if buf.remaining() < len {
            return Err(CodecError::UnexpectedEof);
        }
        // bf-taint: sanitized(the remaining() guard above proves the declared len fits the received buffer)
        let raw = buf.split_to(len);
        // Validate on the borrowed slice first so invalid UTF-8 never
        // pays for an intermediate Vec.
        match std::str::from_utf8(raw.as_ref()) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(CodecError::BadUtf8),
        }
    }
}

impl WireEncode for Vec<u8> {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        bf_metrics::record_memcpy(self.len() as u64);
        buf.put_slice(self);
    }
}

impl WireDecode for Vec<u8> {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        let len = get_varint(buf)? as usize;
        if buf.remaining() < len {
            return Err(CodecError::UnexpectedEof);
        }
        bf_metrics::record_memcpy(len as u64);
        // bf-lint: allow(payload_copy): the legacy owned-Vec decode path —
        // zero-copy consumers decode `Payload` instead; this copy is counted.
        // bf-taint: sanitized(the remaining() guard above proves the declared len fits the received buffer)
        Ok(buf.split_to(len).to_vec())
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        if buf.remaining() == 0 {
            return Err(CodecError::UnexpectedEof);
        }
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            value => Err(CodecError::BadDiscriminant {
                what: "option",
                value,
            }),
        }
    }
}

impl WireEncode for [u64; 3] {
    fn encode(&self, buf: &mut BytesMut) {
        for v in self {
            put_varint(buf, *v);
        }
    }
}

impl WireDecode for [u64; 3] {
    fn decode(buf: &mut Bytes) -> Result<Self, CodecError> {
        Ok([get_varint(buf)?, get_varint(buf)?, get_varint(buf)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u64);
        round_trip(u64::MAX);
        round_trip(300u32);
        round_trip(-12345i32);
        round_trip(i32::MIN);
        round_trip(3.5f32);
        round_trip(true);
        round_trip("héllo wörld".to_string());
        round_trip(vec![0u8, 1, 255]);
        round_trip(Some("x".to_string()));
        round_trip(Option::<u64>::None);
        round_trip([1u64, 2, 3]);
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        assert_eq!(5u64.encoded_len(), 1);
        assert_eq!(300u64.encoded_len(), 2);
        assert_eq!(u64::MAX.encoded_len(), 10);
    }

    #[test]
    fn truncated_input_is_an_eof() {
        let bytes = "a long string".to_string().to_bytes();
        let truncated = bytes.slice(0..bytes.len() - 2);
        assert_eq!(
            String::from_bytes(truncated),
            Err(CodecError::UnexpectedEof)
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = BytesMut::new();
        7u64.encode(&mut buf);
        buf.put_u8(9);
        assert_eq!(
            u64::from_bytes(buf.freeze()),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn bad_bool_discriminant() {
        let bytes = Bytes::from_static(&[7]);
        assert!(matches!(
            bool::from_bytes(bytes),
            Err(CodecError::BadDiscriminant { .. })
        ));
    }
}
