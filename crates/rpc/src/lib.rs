#![forbid(unsafe_code)]

//! # bf-rpc — the API-remoting transport substrate
//!
//! BlastFunction remotes the OpenCL host API over gRPC for control and
//! either gRPC or POSIX shared memory for bulk data. This crate is the
//! from-scratch stand-in for that plumbing:
//!
//! * [`codec`] — a protobuf-like binary wire format ([`WireEncode`] /
//!   [`WireDecode`]); every message really is encoded to bytes so encoded
//!   sizes drive the serialization cost model;
//! * the protocol module — the Device Manager service messages: tagged
//!   [`RequestEnvelope`] / [`ResponseEnvelope`] pairs covering every
//!   remoted OpenCL call, with the paper's split between synchronous
//!   *context & information methods* and asynchronous *command-queue
//!   methods*;
//! * [`ShmSegment`] — the shared-memory data path (single retained copy);
//! * [`duplex`] — an in-process connection whose response stream is the
//!   Remote Library's completion queue (Fig. 2).
//!
//! ```
//! use bf_model::VirtualTime;
//! use bf_rpc::{duplex, ClientId, Request, RequestEnvelope};
//!
//! # fn main() -> Result<(), bf_rpc::TransportError> {
//! let (client, server) = duplex();
//! client.send(&RequestEnvelope {
//!     tag: 1,
//!     client: ClientId(7),
//!     sent_at: VirtualTime::ZERO,
//!     body: Request::GetDeviceInfo,
//! })?;
//! let seen = server.recv()?;
//! assert_eq!(seen.body, Request::GetDeviceInfo);
//! # Ok(())
//! # }
//! ```

pub mod codec;
mod costs;
mod proto;
mod shm;
mod transport;

pub use codec::{CodecError, WireDecode, WireEncode};
pub use costs::PathCosts;
pub use proto::{
    ClientId, DataRef, ErrorCode, Request, RequestEnvelope, Response, ResponseEnvelope, WireArg,
};
pub use shm::{ShmError, ShmSegment};
pub use transport::{duplex, ClientChannel, ServerChannel, TransportError};

#[cfg(test)]
mod proptests {
    use bf_model::VirtualTime;
    use proptest::prelude::*;

    use super::*;
    use crate::codec::{WireDecode, WireEncode};

    fn arb_dataref() -> impl Strategy<Value = DataRef> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..128).prop_map(DataRef::Inline),
            (any::<u64>(), any::<u64>()).prop_map(|(offset, len)| DataRef::Shm { offset, len }),
            any::<u64>().prop_map(DataRef::Synthetic),
        ]
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            (".*", any::<bool>())
                .prop_map(|(client_name, shm)| Request::Hello { client_name, shm }),
            Just(Request::GetDeviceInfo),
            Just(Request::CreateContext),
            ".*".prop_map(|bitstream| Request::BuildProgram { bitstream }),
            (any::<u64>(), ".*")
                .prop_map(|(program, name)| Request::CreateKernel { program, name }),
            (any::<u64>(), any::<u64>())
                .prop_map(|(context, len)| Request::CreateBuffer { context, len }),
            (any::<u64>(), any::<u64>(), any::<u64>(), arb_dataref()).prop_map(
                |(queue, buffer, offset, data)| Request::EnqueueWrite {
                    queue,
                    buffer,
                    offset,
                    data
                }
            ),
            (any::<u64>(), any::<u64>(), any::<[u64; 3]>()).prop_map(|(queue, kernel, work)| {
                Request::EnqueueKernel {
                    queue,
                    kernel,
                    work,
                }
            }),
            any::<u64>().prop_map(|queue| Request::Flush { queue }),
            any::<u64>().prop_map(|queue| Request::Finish { queue }),
            Just(Request::Disconnect),
        ]
    }

    proptest! {
        /// Every request envelope decodes back to itself.
        #[test]
        fn request_envelopes_round_trip(
            tag in any::<u64>(),
            client in any::<u64>(),
            at in any::<u64>(),
            body in arb_request(),
        ) {
            let env = RequestEnvelope {
                tag,
                client: ClientId(client),
                sent_at: VirtualTime::from_nanos(at),
                body,
            };
            let decoded = RequestEnvelope::from_bytes(env.to_bytes()).expect("decode");
            prop_assert_eq!(decoded, env);
        }

        /// Decoding arbitrary garbage never panics.
        #[test]
        fn decoder_is_total(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = RequestEnvelope::from_bytes(bytes::Bytes::from(garbage.clone()));
            let _ = ResponseEnvelope::from_bytes(bytes::Bytes::from(garbage));
        }

        /// Shm allocation never hands out overlapping regions.
        #[test]
        fn shm_regions_never_overlap(sizes in proptest::collection::vec(1u64..512, 1..32)) {
            let shm = ShmSegment::new(1 << 16);
            let mut regions: Vec<(u64, u64)> = Vec::new();
            for len in sizes {
                if let Ok(offset) = shm.alloc(len) {
                    for (o, l) in &regions {
                        let disjoint = offset + len <= *o || o + l <= offset;
                        prop_assert!(disjoint, "[{offset},+{len}) overlaps [{o},+{l})");
                    }
                    regions.push((offset, len));
                }
            }
        }
    }
}
